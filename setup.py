"""Legacy entry point for environments without the wheel package."""

from setuptools import setup

setup()
