"""Microbenchmark: observability overhead, traced vs. untraced.

Times the same multiple-query workload (the steady-state regime of
``bench_engine_kernels.py``: warm k-NN blocks over a paged database)
for the ``vectorized`` and ``batched`` engines in three modes:

``off``
    No observer attached -- the engines resolve to the raw functions,
    byte-for-byte the pre-observability hot path.
``disabled``
    Observer attached with tracing *disabled*: metrics (phase latency
    histograms, event counters) are gathered, the tracer takes its
    no-op fast path.  The guard asserts this costs < 3 % wall clock
    over ``off``.
``traced``
    Full tracing into the in-memory ring buffer.
``provenance``
    Full tracing *plus* per-query causal-card reconstruction
    (:func:`repro.obs.provenance.build_cards` over the ring buffer) --
    the cost of ``repro explain``-grade observability.
``timeline``
    Tracing disabled but a one-tick-per-block
    :class:`~repro.obs.TimelineCollector` attached -- the cost of live
    windowed telemetry (a registry snapshot and delta per block), the
    ``repro serve --timeline`` / ``repro top`` configuration.  Held to
    the same < 3 % guard as ``disabled``.

Every mode is checked to produce identical answers and identical
``Counters``; results are written to ``BENCH_obs_overhead.json`` at the
repository root, together with a plan-vs-actual audit point (planner
probe -> scheduler serve -> ``PlanAudit`` summary and prediction-error
histogram population).

Run standalone (``python benchmarks/bench_obs_overhead.py``) or via
pytest (``pytest benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.database import Database
from repro.core.types import knn_query
from repro.obs import Observer, TimelineCollector

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_obs_overhead.json"

N_OBJECTS = 4_096
DIMENSION = 64
N_QUERIES = 32
BLOCK_SIZE = 16
REPEATS = 30
MAX_DISABLED_OVERHEAD = 0.03

MODES = ("off", "disabled", "traced", "provenance", "timeline")

#: Modes measured against ``off`` (everything but the baseline itself).
OVERHEAD_MODES = tuple(mode for mode in MODES if mode != "off")


def _observer_for(mode: str) -> Observer | None:
    if mode == "off":
        return None
    observer = Observer(trace=mode in ("traced", "provenance"))
    if mode == "timeline":
        # One tick (and so one window close: snapshot + delta) per
        # block -- the densest cadence the block runner ever drives.
        observer.attach_timeline(
            TimelineCollector(observer.metrics, window_ticks=1)
        )
    return observer


def _time_once(engine: str, mode: str, vectors, queries, indices) -> dict:
    """One timed run of the workload for an engine/mode pair."""
    observer = _observer_for(mode)
    database = Database(vectors, access="xtree", engine=engine, observer=observer)
    start = time.perf_counter()
    results = database.run_in_blocks(
        queries,
        knn_query(10),
        block_size=BLOCK_SIZE,
        db_indices=indices,
        warm_start=True,
    )
    cards = 0
    if mode == "provenance":
        # Card reconstruction is part of the provenance price: the
        # timed region covers workload plus build_cards over the ring.
        from repro.obs import build_cards

        cards = len(build_cards(observer.tracer.records()))
    windows = 0
    if mode == "timeline":
        # Flushing the last partial window is part of the price.
        observer.timeline.flush()
        windows = observer.timeline.n_closed
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "answers": [[(a.index, a.distance) for a in r] for r in results],
        "counters": database.counters.as_dict(),
        "trace_entries": len(observer.tracer) if observer is not None else 0,
        "cards": cards,
        "windows": windows,
    }


def _run_engine(engine: str) -> tuple[dict, dict]:
    """Best-of-``REPEATS`` per mode, modes interleaved within each repeat.

    Single-run noise on a shared host (~±10%) dwarfs the instrumentation
    cost, but the *minimum* over many interleaved repeats converges to a
    stable per-mode floor: noise only ever adds time, and interleaving
    guarantees every mode samples the same environment.  Overhead is the
    ratio of those floors.
    """
    rng = np.random.default_rng(42)
    vectors = rng.random((N_OBJECTS, DIMENSION))
    indices = list(range(N_QUERIES))
    queries = [vectors[i] for i in indices]
    runs: dict[str, dict] = {}
    for mode in MODES:  # warm-up pass, discarded
        _time_once(engine, mode, vectors, queries, indices)
    for _ in range(REPEATS):
        for mode in MODES:
            run = _time_once(engine, mode, vectors, queries, indices)
            if mode not in runs or run["seconds"] < runs[mode]["seconds"]:
                runs[mode] = run
    baseline = runs["off"]["seconds"]
    overheads = {
        mode: runs[mode]["seconds"] / baseline - 1.0
        for mode in OVERHEAD_MODES
    }
    return runs, overheads


MAX_ATTEMPTS = 5


def run_bench() -> dict:
    rows = []
    for engine in ("vectorized", "batched"):
        # Host noise is strictly additive, so the lowest overhead seen
        # across attempts is the tightest estimate of the true cost;
        # retry only when an attempt lands above the guard.
        runs, overheads = _run_engine(engine)
        for _ in range(MAX_ATTEMPTS - 1):
            if max(overheads["disabled"], overheads["timeline"]) < (
                MAX_DISABLED_OVERHEAD
            ):
                break
            retry_runs, retry_overheads = _run_engine(engine)
            if max(
                retry_overheads["disabled"], retry_overheads["timeline"]
            ) < max(overheads["disabled"], overheads["timeline"]):
                runs, overheads = retry_runs, retry_overheads
        baseline = runs["off"]
        for mode in OVERHEAD_MODES:
            assert runs[mode]["answers"] == baseline["answers"], (engine, mode)
            assert runs[mode]["counters"] == baseline["counters"], (engine, mode)
        rows.append(
            {
                "engine": engine,
                "n_objects": N_OBJECTS,
                "dimension": DIMENSION,
                "n_queries": N_QUERIES,
                "block_size": BLOCK_SIZE,
                "seconds": {mode: runs[mode]["seconds"] for mode in MODES},
                "overhead_disabled": overheads["disabled"],
                "overhead_traced": overheads["traced"],
                "overhead_provenance": overheads["provenance"],
                "overhead_timeline": overheads["timeline"],
                "trace_entries": runs["traced"]["trace_entries"],
                "cards": runs["provenance"]["cards"],
                "windows": runs["timeline"]["windows"],
                "equivalent": True,
            }
        )
    result = {
        "benchmark": "obs_overhead",
        "repeats": REPEATS,
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "rows": rows,
        "audit": run_audit_point(),
    }
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    return result


def run_audit_point() -> dict:
    """Plan-vs-actual audit over a scheduled workload (one data point).

    Probes a planner fit, serves a workload through the scheduler with
    that fit adopted, and reports the :class:`~repro.obs.PlanAudit`
    summary plus the population of the prediction-error histograms --
    the ``BENCH_obs_overhead.json`` evidence that the audit loop runs
    and converges in real use, not just in unit tests.
    """
    from repro.core.planner import QueryPlanner
    from repro.obs import (
        PREDICTION_ERROR_DISTANCES,
        PREDICTION_ERROR_IO,
        PREDICTION_ERROR_SECONDS,
    )
    from repro.workloads import sample_database_queries

    rng = np.random.default_rng(7)
    vectors = rng.random((2_048, 32))
    observer = Observer(trace=False)
    planner = QueryPlanner(vectors, candidates=("xtree",), probe_queries=8)
    n_queries = 24
    plan = planner.plan(n_queries, knn_query(10), max_block_size=8)
    database = planner.database_for(plan)
    database.attach_observer(observer)
    scheduler = database.serve(block_target=plan.block_size, max_block=8)
    scheduler.replan(plan.fits)
    indices = sample_database_queries(planner.dataset, n_queries, seed=3)
    for index in indices:
        scheduler.submit(planner.dataset[index], knn_query(10))
    scheduler.drain()
    assert scheduler.audit is not None
    histograms = observer.metrics.snapshot()["histograms"]
    populated = {
        name: histograms[name]["count"]
        for name in (
            PREDICTION_ERROR_SECONDS,
            PREDICTION_ERROR_IO,
            PREDICTION_ERROR_DISTANCES,
        )
        if name in histograms
    }
    return {
        "plan": {
            "access": plan.access,
            "block_size": plan.block_size,
            "predicted_seconds_per_query": plan.predicted_seconds_per_query,
        },
        "summary": scheduler.audit.summary(),
        "prediction_error_observations": populated,
    }


def _render(result: dict) -> str:
    lines = [
        f"{'engine':<12} {'off ms':>9} {'disabled ms':>12} {'traced ms':>10} "
        f"{'prov ms':>9} {'timeline ms':>12} {'disabled ovh':>13} "
        f"{'traced ovh':>11} {'prov ovh':>9} {'timeline ovh':>13} "
        f"{'entries':>8}"
    ]
    for row in result["rows"]:
        s = row["seconds"]
        lines.append(
            f"{row['engine']:<12} {s['off'] * 1e3:>9.2f} "
            f"{s['disabled'] * 1e3:>12.2f} {s['traced'] * 1e3:>10.2f} "
            f"{s['provenance'] * 1e3:>9.2f} {s['timeline'] * 1e3:>12.2f} "
            f"{row['overhead_disabled'] * 100:>12.2f}% "
            f"{row['overhead_traced'] * 100:>10.2f}% "
            f"{row['overhead_provenance'] * 100:>8.2f}% "
            f"{row['overhead_timeline'] * 100:>12.2f}% "
            f"{row['trace_entries']:>8}"
        )
    audit = result.get("audit", {})
    summary = audit.get("summary", {})
    if summary:
        drift = summary.get("calibration_drift")
        drift_text = f"{drift:.3f}" if drift is not None else "-"
        lines.append(
            f"audit: {summary.get('blocks_audited', 0)} blocks, "
            f"calibration drift {drift_text}, prediction-error "
            f"observations {audit.get('prediction_error_observations')}"
        )
    return "\n".join(lines)


def test_obs_overhead():
    result = run_bench()
    print()
    print(_render(result))
    for row in result["rows"]:
        assert row["equivalent"], row
        assert row["trace_entries"] > 0, row
        assert row["cards"] > 0, row
        assert row["windows"] > 0, row
        if row["engine"] == "batched":
            # Strict guard: the disabled fast path -- and the windowed
            # timeline configuration -- cost < 3% on the batched-engine
            # microbenchmark.
            assert row["overhead_disabled"] < MAX_DISABLED_OVERHEAD, row
            assert row["overhead_timeline"] < MAX_DISABLED_OVERHEAD, row
        else:
            # The vectorized engine's run-to-run variance (~±6%) exceeds
            # the instrumentation cost measured on batched (<1%), so only
            # a coarse sanity bound is asserted.
            assert row["overhead_disabled"] < 0.20, row
            assert row["overhead_timeline"] < 0.20, row
    audit = result["audit"]
    assert audit["summary"]["blocks_audited"] > 0, audit
    observations = audit["prediction_error_observations"]
    for name, count in observations.items():
        assert count > 0, (name, audit)
    assert len(observations) == 3, audit


if __name__ == "__main__":
    print(_render(run_bench()))
    sys.exit(0)
