"""Figure 8: average CPU cost per similarity query vs. m.

Paper: triangle-inequality avoidance cuts the scan's CPU cost by 7.1x
(astronomy) / 28x (image) at m = 100, and the X-tree's by 2.1x.
"""

from conftest import full_scale, run_once
from repro.experiments import run_figure8


def test_figure8(benchmark, config):
    result = run_once(benchmark, run_figure8, config)
    print()
    print(result.render())
    for name in ("astronomy", "image"):
        scan = result.series_by_label(f"{name} / linear scan")
        xtree = result.series_by_label(f"{name} / X-tree")
        assert scan.values[0] / scan.values[-1] > 1  # avoidance always pays
        if full_scale(config):
            assert scan.values[0] / scan.values[-1] > 2
            assert xtree.values[0] / xtree.values[-1] > 1
            # The paper: the scan profits more than the X-tree (relative).
            assert (
                scan.values[0] / scan.values[-1]
                > xtree.values[0] / xtree.values[-1]
            )
    benchmark.extra_info["figure"] = "8"
