"""Microbenchmark: page-processing engines across page and batch sizes.

Times one page x query-batch evaluation for the three engines
(``reference``, ``vectorized``, ``batched``) over a grid of page sizes,
batch sizes, metrics and scenarios, verifies that answers and counters
are identical across engines for every configuration, and writes the
measurements to ``BENCH_engine_kernels.json`` at the repository root so
successive PRs have a perf trajectory.

Scenarios
---------
``knn_cold``
    Fresh k-NN batch: radii are infinite, every candidate reaches the
    answer heaps, so the (identical, per-candidate) insertion cost
    dominates all engines.  This is only the *first* page of a query's
    life.
``knn_warm``
    The steady state: answer lists pre-saturated from a 4096-object
    sample, so radii are tight, the offer prefilter rejects almost every
    candidate, and the Lemma-1/2 avoidance machinery runs with finite
    radii -- the cost profile of every page after the first.
``knn_warm_kernel``
    As ``knn_warm`` with avoidance disabled: isolates the distance
    kernels themselves (m strided einsum kernels for ``vectorized``
    vs. one fused GEMM for ``batched``), which is what the batched
    engine exists to accelerate.
``range_avoidance``
    Selective range queries with finite radii from the start.

The dimensionality is 64, the paper's colour-histogram dimensionality
(Sec. 6 evaluates 20-d and 64-d; the kernels are memory-bound below
~32-d where per-call dispatch overhead, identical across engines,
dominates the timings).

Run standalone (``python benchmarks/bench_engine_kernels.py``) or via
pytest (``pytest benchmarks/bench_engine_kernels.py``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.answers import AnswerList
from repro.core.engine import (
    PendingQuery,
    process_page_batched,
    process_page_reference,
    process_page_vectorized,
)
from repro.core.types import knn_query, range_query
from repro.data import VectorDataset
from repro.metric.distances import QuadraticFormDistance, get_distance
from repro.metric.space import MetricSpace
from repro.storage.page import Page

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_engine_kernels.json"

ENGINES = {
    "reference": process_page_reference,
    "vectorized": process_page_vectorized,
    "batched": process_page_batched,
}

PAGE_SIZES = (256, 1024, 2048)
BATCH_SIZES = (8, 32)
DIMENSION = 64
WARM_OBJECTS = 4096
REPEATS = 5

#: scenario name -> (query type factory, pre-saturate answers, avoidance)
SCENARIOS = {
    "knn_cold": (lambda: knn_query(10), False, True),
    "knn_warm": (lambda: knn_query(10), True, True),
    "knn_warm_kernel": (lambda: knn_query(10), True, False),
    "range_avoidance": (
        lambda: range_query(0.45 * float(np.sqrt(DIMENSION / 12))),
        False,
        True,
    ),
}


def _metric(name: str):
    if name == "quadratic_form":
        return QuadraticFormDistance.color_histogram(DIMENSION)
    return get_distance(name)


def _run_config(metric_name: str, n_objects: int, m: int, scenario: str):
    """Time every engine on one configuration; check equivalence."""
    make_qtype, saturate, use_avoidance = SCENARIOS[scenario]
    rng = np.random.default_rng(hash((metric_name, n_objects, m)) % 2**32)
    vectors = rng.random((n_objects, DIMENSION))
    queries = rng.random((m, DIMENSION))
    warm = rng.random((WARM_OBJECTS, DIMENSION)) if saturate else None
    metric = _metric(metric_name)
    qtypes = [make_qtype() for _ in range(m)]
    matrix = np.zeros((m, m))
    for i in range(m):
        for j in range(m):
            matrix[i, j] = metric.one(queries[i], queries[j])
    dataset = VectorDataset(vectors)
    page = Page(page_id=0, indices=np.arange(n_objects))
    # Warm candidates use indices disjoint from the page so answer sets
    # stay comparable across engines.
    warm_indices = np.arange(10**6, 10**6 + WARM_OBJECTS)
    warm_distances = (
        [metric.many(warm, queries[i]) for i in range(m)] if saturate else None
    )

    def make_batch():
        batch = []
        for i in range(m):
            answers = AnswerList(qtypes[i])
            if saturate:
                answers.offer_many(warm_indices, warm_distances[i])
            batch.append(
                PendingQuery(
                    key=i,
                    obj=queries[i],
                    qtype=qtypes[i],
                    answers=answers,
                    slot=i,
                )
            )
        return batch

    seconds: dict[str, float] = {}
    checks: dict[str, tuple] = {}
    for name, process in ENGINES.items():
        best = float("inf")
        for _ in range(REPEATS):
            space = MetricSpace(metric)
            batch = make_batch()
            start = time.perf_counter()
            process(
                page,
                batch,
                dataset,
                space,
                matrix,
                space.counters,
                use_avoidance=use_avoidance,
            )
            best = min(best, time.perf_counter() - start)
        seconds[name] = best
        checks[name] = (
            space.counters.as_dict(),
            [
                frozenset(a.index for a in pending.answers.materialize())
                for pending in batch
            ],
        )
    reference = checks["reference"]
    equivalent = all(checks[name] == reference for name in ENGINES)
    return {
        "metric": metric_name,
        "page_size": n_objects,
        "batch_size": m,
        "scenario": scenario,
        "use_avoidance": use_avoidance,
        "dimension": DIMENSION,
        "seconds": seconds,
        "speedup_batched_vs_vectorized": seconds["vectorized"]
        / seconds["batched"],
        "speedup_batched_vs_reference": seconds["reference"]
        / seconds["batched"],
        "engines_equivalent": equivalent,
    }


def run_bench() -> dict:
    rows = []
    for metric_name in ("euclidean", "quadratic_form"):
        for n_objects in PAGE_SIZES:
            for m in BATCH_SIZES:
                for scenario in SCENARIOS:
                    rows.append(
                        _run_config(metric_name, n_objects, m, scenario)
                    )
    result = {
        "benchmark": "engine_kernels",
        "dimension": DIMENSION,
        "repeats": REPEATS,
        "rows": rows,
    }
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    return result


def _render(result: dict) -> str:
    lines = [
        f"{'metric':<15} {'page':>5} {'batch':>5} {'scenario':<16} "
        f"{'ref ms':>9} {'vec ms':>9} {'bat ms':>9} {'bat/vec':>8}"
    ]
    for row in result["rows"]:
        s = row["seconds"]
        lines.append(
            f"{row['metric']:<15} {row['page_size']:>5} {row['batch_size']:>5} "
            f"{row['scenario']:<16} {s['reference'] * 1e3:>9.3f} "
            f"{s['vectorized'] * 1e3:>9.3f} {s['batched'] * 1e3:>9.3f} "
            f"{row['speedup_batched_vs_vectorized']:>7.1f}x"
        )
    return "\n".join(lines)


def test_engine_kernels():
    result = run_bench()
    print()
    print(_render(result))
    for row in result["rows"]:
        assert row["engines_equivalent"], row
    # Acceptance: on Euclidean pages of >= 256 objects with batch size
    # >= 8, the fused kernel reaches >= 3x over the vectorized engine in
    # the kernel-bound steady state (knn_warm_kernel), and is never
    # slower in any steady-state scenario.
    kernel_rows = [
        row
        for row in result["rows"]
        if row["metric"] == "euclidean"
        and row["page_size"] >= 256
        and row["batch_size"] >= 8
        and row["scenario"] == "knn_warm_kernel"
    ]
    assert kernel_rows
    best = max(r["speedup_batched_vs_vectorized"] for r in kernel_rows)
    assert best >= 3.0, kernel_rows
    for row in result["rows"]:
        if row["metric"] == "euclidean" and row["scenario"] in (
            "knn_warm",
            "knn_warm_kernel",
        ):
            assert row["speedup_batched_vs_vectorized"] >= 1.0, row


if __name__ == "__main__":
    result = run_bench()
    print(_render(result))
    sys.exit(0)
