"""Scheduler-throughput benchmark: the query service under client load.

Drives a deterministic multi-client k-NN trace through
:class:`~repro.service.QueryScheduler` (dynamic batching, FIFO driver)
for both block orderings and measures wall-clock seconds plus the run's
deterministic cost counters.  Every ticket's answers are asserted
byte-identical to the plain ``run_in_blocks`` path over the same
workload -- the service layer batches and streams, it never changes
answers.

Results are written to ``BENCH_service.json`` at the repository root;
``repro bench --import-bench BENCH_service.json`` folds them into the
baseline store so the CI regression check guards scheduler throughput.

Run standalone (``python benchmarks/bench_service.py``) or via pytest
(``pytest benchmarks/bench_service.py``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.core.database import Database
from repro.core.types import knn_query
from repro.service import ORDER_AFFINITY, ORDER_FIFO
from repro.workloads import make_gaussian_mixture, sample_database_queries

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_service.json"

N_OBJECTS = 4_096
DIMENSION = 16
N_CLIENTS = 8
QUERIES_PER_CLIENT = 8
K = 10
BLOCK_TARGET = 8
REPEATS = 5

_COUNTER_FIELDS = (
    "page_reads",
    "distance_calculations",
    "avoidance_tries",
    "avoided_calculations",
    "queries_completed",
)


def _workload():
    dataset = make_gaussian_mixture(
        n=N_OBJECTS, dimension=DIMENSION, n_clusters=16, cluster_std=0.05, seed=0
    )
    indices = sample_database_queries(
        dataset, N_CLIENTS * QUERIES_PER_CLIENT, seed=1
    )
    return dataset, indices


def _client_trace(dataset, indices):
    """Round-robin arrivals: client c submits its next query each round."""
    trace = []
    position = 0
    for _ in range(QUERIES_PER_CLIENT):
        for client in range(N_CLIENTS):
            trace.append((client, dataset[indices[position]], knn_query(K)))
            position += 1
    return trace


def _time_once(order: str, dataset, indices) -> dict:
    database = Database(dataset, access="xtree", block_size=2048)
    scheduler = database.serve(
        block_target=BLOCK_TARGET, max_block=4 * BLOCK_TARGET, order=order
    )
    trace = _client_trace(dataset, indices)
    start = time.perf_counter()
    tickets = scheduler.serve(trace)
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "answers": [
            [(a.index, a.distance) for a in t.answers] for t in tickets
        ],
        "counters": {
            name: getattr(database.counters, name) for name in _COUNTER_FIELDS
        },
    }


def _reference_answers(dataset, indices) -> list[list[tuple[int, float]]]:
    """Per-query exact answers via the plain block path."""
    database = Database(dataset, access="xtree", block_size=2048)
    results = database.run_in_blocks(
        [dataset[i] for i in indices], knn_query(K), block_size=BLOCK_TARGET
    )
    return [[(a.index, a.distance) for a in r] for r in results]


def run_bench() -> dict:
    dataset, indices = _workload()
    reference = _reference_answers(dataset, indices)
    rows = []
    for order in (ORDER_FIFO, ORDER_AFFINITY):
        best: dict | None = None
        for _ in range(REPEATS):
            run = _time_once(order, dataset, indices)
            if best is None or run["seconds"] < best["seconds"]:
                best = run
        assert best is not None
        # Answers are exact per query, independent of block order.
        assert best["answers"] == reference, order
        n_queries = len(indices)
        rows.append(
            {
                "order": order,
                "n_objects": N_OBJECTS,
                "dimension": DIMENSION,
                "n_clients": N_CLIENTS,
                "n_queries": n_queries,
                "block_target": BLOCK_TARGET,
                "seconds": best["seconds"],
                "queries_per_second": n_queries / best["seconds"],
                "counters": best["counters"],
                "equivalent": True,
            }
        )
    result = {
        "benchmark": "service",
        "repeats": REPEATS,
        "rows": rows,
    }
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    return result


def _render(result: dict) -> str:
    lines = [
        f"{'order':<10} {'seconds':>9} {'q/s':>8} {'page reads':>11} "
        f"{'dist calcs':>11} {'avoided':>9}"
    ]
    for row in result["rows"]:
        c = row["counters"]
        lines.append(
            f"{row['order']:<10} {row['seconds']:>9.3f} "
            f"{row['queries_per_second']:>8.1f} {c['page_reads']:>11,} "
            f"{c['distance_calculations']:>11,} "
            f"{c['avoided_calculations']:>9,}"
        )
    return "\n".join(lines)


def test_service_throughput():
    result = run_bench()
    print()
    print(_render(result))
    for row in result["rows"]:
        assert row["equivalent"], row
        assert row["counters"]["queries_completed"] >= row["n_queries"], row


if __name__ == "__main__":
    print(_render(run_bench()))
    sys.exit(0)
