"""Figure 12: overall speed-up (parallel multiple vs. sequential single).

Paper: combining both techniques with 16 servers yields speed-ups in
the order of 100 (index) to 300 (scan).
"""

from conftest import run_once
from repro.experiments import run_figure12


def test_figure12(benchmark, config):
    result = run_once(benchmark, run_figure12, config)
    print()
    print(result.render())
    for series in result.series:
        assert all(v > 1 for v in series.values)
    # The combined effect on the scan reaches two orders of magnitude.
    astro_scan = result.series_by_label("astronomy / linear scan")
    assert max(astro_scan.values) > 20
    benchmark.extra_info["figure"] = "12"
