"""Figure 11: parallel vs. sequential multiple queries (speed-up vs. s).

Paper: super-linear speed-ups on the astronomy database (X-tree 17.9x
at s = 16); sub-linear and eventually *decreasing* speed-ups on the
small image database, caused by the O(m^2) matrix/avoidance overheads.

Alongside the modelled cost (the figure itself), this module also runs
one parallel multiple query on real worker processes
(``backend="process"``) and reports measured wall-clock next to the
modelled elapsed seconds -- answers and counters are asserted identical
between the two backends.
"""

import numpy as np

from conftest import full_scale, run_once
from repro.experiments import run_figure11
from repro.core.types import knn_query
from repro.parallel import ParallelDatabase


def test_figure11(benchmark, config):
    result = run_once(benchmark, run_figure11, config)
    print()
    print(result.render())
    for series in result.series:
        # Parallelisation always helps over one server.
        assert max(series.values) > 1.0
    if full_scale(config):
        # The image database's speed-up degrades at the largest s
        # relative to its peak (the paper's headline parallel
        # observation).
        image_xtree = result.series_by_label("image / X-tree")
        assert image_xtree.values[-1] < max(image_xtree.values)
    benchmark.extra_info["figure"] = "11"


def test_figure11_measured_wall_clock(benchmark):
    """Measured multi-core wall-clock vs. modelled elapsed seconds.

    Runs the same parallel multiple query through the cost model and
    through real worker processes; answers must agree exactly, and the
    measured per-server wall-clock is reported next to the modelled
    elapsed time.  No speed-up is asserted: measured scaling depends on
    the machine's core count, while the modelled figure is
    hardware-independent.
    """
    rng = np.random.default_rng(11)
    vectors = rng.random((4000, 8))
    queries = [vectors[i] for i in range(24)]
    indices = list(range(24))

    def run():
        with ParallelDatabase(
            vectors, n_servers=4, access="scan", block_size=4096
        ) as parallel:
            modelled = parallel.multiple_similarity_query(
                queries, knn_query(5), db_indices=indices, backend="model"
            )
            measured = parallel.multiple_similarity_query(
                queries, knn_query(5), db_indices=indices, backend="process"
            )
        return modelled, measured

    modelled, measured = run_once(benchmark, run)
    for a, b in zip(modelled.answers, measured.answers):
        assert [x.index for x in a] == [x.index for x in b]
    benchmark.extra_info["figure"] = "11"
    benchmark.extra_info["modelled_elapsed_seconds"] = modelled.elapsed_seconds
    benchmark.extra_info["measured_wall_seconds"] = measured.elapsed_wall_seconds
    print()
    print(
        f"modelled elapsed: {modelled.elapsed_seconds:.4f}s, "
        f"measured wall-clock (4 workers): {measured.elapsed_wall_seconds:.4f}s"
    )
