"""Figure 11: parallel vs. sequential multiple queries (speed-up vs. s).

Paper: super-linear speed-ups on the astronomy database (X-tree 17.9x
at s = 16); sub-linear and eventually *decreasing* speed-ups on the
small image database, caused by the O(m^2) matrix/avoidance overheads.
"""

from conftest import full_scale, run_once
from repro.experiments import run_figure11


def test_figure11(benchmark, config):
    result = run_once(benchmark, run_figure11, config)
    print()
    print(result.render())
    for series in result.series:
        # Parallelisation always helps over one server.
        assert max(series.values) > 1.0
    if full_scale(config):
        # The image database's speed-up degrades at the largest s
        # relative to its peak (the paper's headline parallel
        # observation).
        image_xtree = result.series_by_label("image / X-tree")
        assert image_xtree.values[-1] < max(image_xtree.values)
    benchmark.extra_info["figure"] = "11"
