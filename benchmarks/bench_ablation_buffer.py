"""Ablation: LRU buffer size (paper setting: 10 % of the index)."""

from repro import Database
from repro.core.types import knn_query
from repro.experiments.runner import dataset_k, get_dataset, workload_queries


def test_buffer_ablation(benchmark, config):
    dataset = get_dataset("astronomy", config)
    indices = workload_queries("astronomy", config)
    queries = [dataset[i] for i in indices]
    qtype = knn_query(dataset_k("astronomy", config))
    m = config.m_values[len(config.m_values) // 2]

    def run_all():
        results = {}
        for fraction in (0.0, 0.1, 0.5):
            database = Database(dataset, access="xtree", buffer_fraction=fraction)
            with database.measure() as handle:
                database.run_in_blocks(
                    queries,
                    qtype,
                    block_size=m,
                    db_indices=indices,
                    warm_start=True,
                )
            results[fraction] = handle
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\nBuffer-size ablation (astronomy / X-tree, m = %d):" % m)
    for fraction, handle in results.items():
        print(
            f"  buffer={fraction:4.1f}: io={handle.io_seconds:7.3f}s "
            f"hits={handle.counters.buffer_hits:>7,} "
            f"reads={handle.counters.page_reads:>7,}"
        )
    assert results[0.5].io_seconds <= results[0.0].io_seconds
    assert results[0.5].counters.buffer_hits >= results[0.0].counters.buffer_hits
