"""Ablation: data declustering strategies (the paper's future work).

Sec. 7 names "the effects of various data declustering strategies" as an
open question; this benchmark answers it for the four implemented
strategies at a fixed server count.
"""

from repro.core.types import knn_query
from repro.experiments.runner import dataset_k, get_dataset, workload_queries
from repro.parallel import ParallelDatabase


def test_declustering_ablation(benchmark, config):
    dataset = get_dataset("astronomy", config)
    n_servers = max(config.server_counts[1], 2)
    n_queries = config.parallel_base_m * n_servers
    indices = workload_queries("astronomy", config, n_queries=n_queries)
    queries = [dataset[i] for i in indices]
    qtype = knn_query(dataset_k("astronomy", config))

    def run_all():
        results = {}
        for strategy in ("round_robin", "random", "hash", "range"):
            cluster = ParallelDatabase(
                dataset, n_servers=n_servers, access="scan", decluster=strategy
            )
            run = cluster.multiple_similarity_query(
                queries, qtype, db_indices=indices
            )
            results[strategy] = run
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print(f"\nDeclustering strategies (astronomy / scan, s={n_servers}):")
    for strategy, run in results.items():
        skew = run.elapsed_seconds / (run.aggregate_seconds / n_servers)
        print(
            f"  {strategy:>12}: elapsed={run.elapsed_seconds:7.3f}s "
            f"aggregate={run.aggregate_seconds:7.3f}s load-skew={skew:5.2f}"
        )
    # Balanced strategies must not be slower than contiguous ranges.
    assert (
        results["round_robin"].elapsed_seconds
        <= results["range"].elapsed_seconds * 1.25
    )
