"""Ablation: the triangle-inequality avoidance (Sec. 5.2).

Dimensions ablated on the scan at the largest block size:

* avoidance off vs. Lemma 1 only vs. Lemma 2 only vs. both;
* the pivot cap (how many known queries each decision may consult).
"""

from repro.core.multi_query import run_in_blocks
from repro.core.types import knn_query
from repro.experiments.runner import build_database, dataset_k, workload_queries


def _run(database, queries, indices, qtype, **kwargs):
    database.cold()
    with database.measure() as handle:
        run_in_blocks(
            database,
            queries,
            qtype,
            block_size=len(queries),
            db_indices=indices,
            **kwargs,
        )
    return handle


def test_avoidance_ablation(benchmark, config):
    database = build_database("astronomy", "scan", config)
    indices = workload_queries("astronomy", config)
    queries = [database.dataset[i] for i in indices]
    qtype = knn_query(dataset_k("astronomy", config))

    def run_all():
        results = {}
        results["off"] = _run(database, queries, indices, qtype, use_avoidance=False)
        results["both"] = _run(database, queries, indices, qtype)
        results["cap8"] = _run(database, queries, indices, qtype, max_pivots=8)
        results["unbounded"] = _run(database, queries, indices, qtype, max_pivots=0)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\nAvoidance ablation (astronomy / scan, m = %d):" % len(queries))
    for label, handle in results.items():
        counters = handle.counters
        print(
            f"  {label:>10}: cpu={handle.cpu_seconds:7.3f}s "
            f"dists={counters.distance_calculations:>9,} "
            f"avoided={counters.avoided_calculations:>9,} "
            f"tries={counters.avoidance_tries:>10,}"
        )
    assert results["both"].cpu_seconds < results["off"].cpu_seconds
    assert (
        results["both"].counters.distance_calculations
        < results["off"].counters.distance_calculations
    )
    # More pivots avoid at least as many calculations.
    assert (
        results["unbounded"].counters.distance_calculations
        <= results["cap8"].counters.distance_calculations
    )


def test_lemma_ablation(benchmark, config):
    database = build_database("astronomy", "scan", config)
    indices = workload_queries("astronomy", config)
    queries = [database.dataset[i] for i in indices]
    qtype = knn_query(dataset_k("astronomy", config))

    def run_all():
        results = {}
        for label, (l1, l2) in {
            "lemma1": (True, False),
            "lemma2": (False, True),
            "both": (True, True),
        }.items():
            database.cold()
            processor = database.processor(seed_from_queries=True)
            processor.use_lemma1 = l1
            processor.use_lemma2 = l2
            with database.measure() as handle:
                processor.query_all(queries, [qtype] * len(queries), db_indices=indices)
            results[label] = handle
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\nLemma ablation (astronomy / scan):")
    for label, handle in results.items():
        print(
            f"  {label:>7}: avoided={handle.counters.avoided_calculations:>9,} "
            f"dists={handle.counters.distance_calculations:>9,}"
        )
    both = results["both"].counters.avoided_calculations
    assert both >= results["lemma1"].counters.avoided_calculations
    assert both >= results["lemma2"].counters.avoided_calculations
    assert both > 0
