"""Figure 9: average total query cost vs. m and the scan/X-tree crossover.

Paper: the scan overtakes the X-tree at m >= 10 (astronomy) and
m >= 100 (image); at m = 100 the scan is CPU-bound.
"""

from conftest import full_scale, run_once
from repro.experiments import run_figure9


def test_figure9(benchmark, config):
    result = run_once(benchmark, run_figure9, config)
    print()
    print(result.render())
    for name in ("astronomy", "image"):
        scan = result.series_by_label(f"{name} / linear scan")
        xtree = result.series_by_label(f"{name} / X-tree")
        # Batching monotonically reduces the scan's total cost.
        assert scan.values[-1] < scan.values[0]
        if full_scale(config):
            # Single query: the index wins; largest m: scan wins or ties.
            assert xtree.values[0] < scan.values[0]
            assert scan.values[-1] <= xtree.values[-1] * 1.5
    benchmark.extra_info["figure"] = "9"
