"""Fault-injection overhead and recovery-exactness benchmark.

Measures four scenarios over the same multiple-query k-NN workload:

* ``no_faults`` -- plain database, the reference run;
* ``empty_plan`` -- fault gate attached but an empty plan: the cost of
  merely consulting the injector (must be counter-neutral and cheap);
* ``one_crash`` -- a model-backend parallel run where one server
  crashes mid-block and the block is re-dispatched to a survivor;
* ``straggler`` -- injected latency pushes one server past the block
  deadline; the straggler's block is likewise re-dispatched.

Every fault scenario's answers AND deterministic cost counters are
asserted byte-identical to its fault-free twin -- recovery may cost
wall-clock time but never changes results (docs/robustness.md).  The
committed baseline entries make ``repro bench --check`` fail if
overhead ever creeps into the faults-disabled path.

Results are written to ``BENCH_faults.json`` at the repository root;
``repro bench --import-bench BENCH_faults.json`` folds them into the
baseline store.  Run standalone or via pytest.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.core.database import Database
from repro.core.types import knn_query
from repro.faults import (
    KIND_LATENCY,
    KIND_SERVER_CRASH,
    FaultPlan,
    RetryPolicy,
    SiteSpec,
)
from repro.parallel import ParallelDatabase
from repro.workloads import make_gaussian_mixture, sample_database_queries

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_faults.json"

N_OBJECTS = 2_048
DIMENSION = 8
N_QUERIES = 12
K = 10
BLOCK_SIZE = 2048
N_SERVERS = 3
ACCESS = "xtree"
REPEATS = 3

_COUNTER_FIELDS = (
    "page_reads",
    "distance_calculations",
    "avoidance_tries",
    "avoided_calculations",
    "queries_completed",
)

CRASH_PLAN = FaultPlan(
    seed=5,
    sites=(
        SiteSpec(
            pattern="server:1",
            kinds=(KIND_SERVER_CRASH,),
            at_ops=(3, 7),
            max_faults=2,
        ),
    ),
    retry=RetryPolicy(max_retries=3),
)

STRAGGLER_PLAN = FaultPlan(
    seed=4,
    sites=(
        SiteSpec(
            pattern="server:2",
            kinds=(KIND_LATENCY,),
            probability=0.5,
            latency_ticks=4,
            max_faults=6,
        ),
    ),
    retry=RetryPolicy(max_retries=4, deadline_ticks=6),
)


def _workload():
    dataset = make_gaussian_mixture(
        n=N_OBJECTS, dimension=DIMENSION, n_clusters=12, cluster_std=0.05, seed=0
    )
    indices = sample_database_queries(dataset, N_QUERIES, seed=1)
    queries = [dataset[i] for i in indices]
    return dataset, queries


def _single_run(dataset, queries, fault_plan):
    database = Database(
        dataset, access=ACCESS, block_size=BLOCK_SIZE, fault_plan=fault_plan
    )
    start = time.perf_counter()
    answers = database.session().run(queries, knn_query(K))
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "answers": [[(a.index, a.distance) for a in per] for per in answers],
        "counters": {
            name: getattr(database.counters, name) for name in _COUNTER_FIELDS
        },
        "summary": (
            database.fault_injector.summary()
            if database.fault_injector is not None
            else None
        ),
    }


def _parallel_run(dataset, queries, fault_plan):
    database = ParallelDatabase(
        dataset,
        n_servers=N_SERVERS,
        access=ACCESS,
        block_size=BLOCK_SIZE,
        fault_plan=fault_plan,
    )
    start = time.perf_counter()
    run = database.multiple_similarity_query(queries, knn_query(K))
    seconds = time.perf_counter() - start
    counters: dict[str, int] = {name: 0 for name in _COUNTER_FIELDS}
    per_server = []
    for server_run in run.per_server:
        fields = {
            name: getattr(server_run.counters, name) for name in _COUNTER_FIELDS
        }
        per_server.append(fields)
        for name in _COUNTER_FIELDS:
            counters[name] += fields[name]
    return {
        "seconds": seconds,
        "answers": [[(a.index, a.distance) for a in per] for per in run.answers],
        "counters": counters,
        "per_server": per_server,
        "summary": (
            database.fault_injector.summary()
            if database.fault_injector is not None
            else None
        ),
    }


def _best_of(fn, *args):
    best = None
    for _ in range(REPEATS):
        run = fn(*args)
        if best is None or run["seconds"] < best["seconds"]:
            best = run
    assert best is not None
    return best


def _row(scenario, run, reference=None):
    if reference is not None:
        assert run["answers"] == reference["answers"], scenario
        assert run["counters"] == reference["counters"], scenario
        if "per_server" in run and "per_server" in reference:
            assert run["per_server"] == reference["per_server"], scenario
    summary = run.get("summary") or {}
    return {
        "scenario": scenario,
        "seconds": run["seconds"],
        "counters": run["counters"],
        "injected": summary.get("injected_total", 0),
        "retries": summary.get("retries", 0),
        "redispatches": summary.get("redispatches", 0),
        "exact": reference is not None,
    }


def run_bench() -> dict:
    dataset, queries = _workload()

    clean_single = _best_of(_single_run, dataset, queries, None)
    empty_plan = _best_of(
        _single_run, dataset, queries, FaultPlan(seed=0, sites=())
    )
    clean_parallel = _best_of(_parallel_run, dataset, queries, None)
    one_crash = _best_of(_parallel_run, dataset, queries, CRASH_PLAN)
    straggler = _best_of(_parallel_run, dataset, queries, STRAGGLER_PLAN)

    assert one_crash["summary"]["redispatches"] >= 1
    assert straggler["summary"]["redispatches"] >= 1
    assert empty_plan["summary"]["injected_total"] == 0

    rows = [
        _row("no_faults", clean_single),
        _row("empty_plan", empty_plan, reference=clean_single),
        _row("one_crash", one_crash, reference=clean_parallel),
        _row("straggler", straggler, reference=clean_parallel),
    ]
    result = {
        "benchmark": "faults",
        "n_objects": N_OBJECTS,
        "n_queries": N_QUERIES,
        "access": ACCESS,
        "n_servers": N_SERVERS,
        "repeats": REPEATS,
        "rows": rows,
    }
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    return result


def _render(result: dict) -> str:
    lines = [
        f"{'scenario':<12} {'seconds':>9} {'page reads':>11} "
        f"{'dist calcs':>11} {'injected':>9} {'redisp':>7} {'exact':>6}"
    ]
    for row in result["rows"]:
        c = row["counters"]
        lines.append(
            f"{row['scenario']:<12} {row['seconds']:>9.4f} "
            f"{c['page_reads']:>11,} {c['distance_calculations']:>11,} "
            f"{row['injected']:>9} {row['redispatches']:>7} "
            f"{'yes' if row['exact'] else '-':>6}"
        )
    return "\n".join(lines)


def test_fault_overhead():
    result = run_bench()
    print()
    print(_render(result))
    for row in result["rows"]:
        if row["scenario"] != "no_faults":
            assert row["exact"], row


if __name__ == "__main__":
    print(_render(run_bench()))
    sys.exit(0)
