"""Ablation: eager vs. lazy query-distance matrix (paper Sec. 7 future work).

The paper charges (m-1)m/2 pair distances per block upfront and names
reducing this overhead as future work.  Lazy filling computes a pair
only when it is first consulted as an avoidance pivot, which matters
most at parallel block sizes where the quadratic term caps the speed-up.
"""

from repro.core.types import knn_query
from repro.experiments.runner import build_database, dataset_k, workload_queries


def test_matrix_mode_ablation(benchmark, config):
    database = build_database("astronomy", "scan", config)
    indices = workload_queries("astronomy", config)
    queries = [database.dataset[i] for i in indices]
    qtype = knn_query(dataset_k("astronomy", config))

    def run_all():
        results = {}
        for mode in ("eager", "lazy"):
            database.cold()
            processor = database.processor(matrix_mode=mode)
            with database.measure() as handle:
                answers = processor.query_all(queries, [qtype] * len(queries))
            results[mode] = (handle, answers)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\nQuery-distance matrix mode (astronomy / scan, m = %d):" % len(queries))
    for mode, (handle, _) in results.items():
        counters = handle.counters
        print(
            f"  {mode:>5}: matrix-dists={counters.query_matrix_distance_calculations:>7,} "
            f"cpu={handle.cpu_seconds:7.3f}s total={handle.total_seconds:7.3f}s"
        )
    eager_handle, eager_answers = results["eager"]
    lazy_handle, lazy_answers = results["lazy"]
    # Identical answers, never more matrix work.
    assert [
        [a.index for a in ans] for ans in eager_answers
    ] == [[a.index for a in ans] for ans in lazy_answers]
    assert (
        lazy_handle.counters.query_matrix_distance_calculations
        <= eager_handle.counters.query_matrix_distance_calculations
    )
