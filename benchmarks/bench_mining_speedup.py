"""The paper's motivating claim: whole mining algorithms get cheaper.

Sec. 3.3: the transformation to ExploreNeighborhoodsMultiple is purely
syntactic, so DBSCAN, k-NN classification and manual exploration produce
identical output -- at a fraction of the modelled cost.
"""

from conftest import run_once
from repro.experiments import run_mining_speedup


def test_mining_speedup(benchmark, config):
    result = run_once(benchmark, run_mining_speedup, config)
    print()
    print(result.render())
    for series in result.series:
        single, multiple, speedup = series.values
        assert multiple < single  # batching always pays end to end
        assert speedup > 1
