"""Ablation: the incremental optimisations of the multiple query.

Measures, on the X-tree workload: plain batching, + matrix radius
seeding, + warm start -- each never changes answers, only cost.
Also demonstrates the Sec. 5.1 incremental-buffer effect in a dynamic
ExploreNeighborhoods run (persistent vs. per-iteration processor).
"""

from repro import Database
from repro.core.types import knn_query, range_query
from repro.experiments.runner import build_database, dataset_k, workload_queries
from repro.mining import explore_neighborhoods_multiple
from repro.workloads import make_gaussian_mixture


def test_incremental_optimisations(benchmark, config):
    database = build_database("astronomy", "xtree", config)
    indices = workload_queries("astronomy", config)
    queries = [database.dataset[i] for i in indices]
    qtype = knn_query(dataset_k("astronomy", config))

    def run_all():
        variants = {
            "plain": dict(),
            "+seeding": dict(db_indices=indices),
            "+warm start": dict(db_indices=indices, warm_start=True),
        }
        results = {}
        for label, kwargs in variants.items():
            database.cold()
            with database.measure() as handle:
                database.run_in_blocks(
                    queries, qtype, block_size=len(queries), **kwargs
                )
            results[label] = handle
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\nIncremental optimisations (astronomy / X-tree):")
    for label, handle in results.items():
        print(
            f"  {label:>12}: io={handle.io_seconds:7.3f}s "
            f"cpu={handle.cpu_seconds:7.3f}s total={handle.total_seconds:7.3f}s"
        )
    assert (
        results["+warm start"].cpu_seconds <= results["plain"].cpu_seconds * 1.05
    )


def test_incremental_buffer_in_mining(benchmark):
    dataset = make_gaussian_mixture(
        n=6000, dimension=8, n_clusters=8, cluster_std=0.02, seed=3
    )

    def run_both():
        results = {}
        for label, persistent in (("persistent", True), ("fresh", False)):
            database = Database(dataset, access="xtree", buffer_fraction=0.0)
            processor = database.processor() if persistent else None
            with database.measure() as handle:
                explore_neighborhoods_multiple(
                    database,
                    [0],
                    range_query(0.06),
                    batch_size=16,
                    max_iterations=150,
                    processor=processor,
                )
            results[label] = handle
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print("\nIncremental buffer in ExploreNeighborhoodsMultiple:")
    for label, handle in results.items():
        print(
            f"  {label:>10}: pages={handle.counters.page_reads:>6} "
            f"total={handle.total_seconds:7.3f}s"
        )
    assert (
        results["persistent"].counters.page_reads
        <= results["fresh"].counters.page_reads
    )
