"""Figure 7: average I/O cost per similarity query vs. m.

Paper: the X-tree beats the scan by 4.5x / 3.1x for single queries; at
m = 100 the scan's I/O drops by a factor of ~m and the X-tree's by
8.7x / 15x.
"""

from conftest import run_once
from repro.experiments import run_figure7


def test_figure7(benchmark, config):
    result = run_once(benchmark, run_figure7, config)
    print()
    print(result.render())
    m_lo, m_hi = config.m_values[0], config.m_values[-1]
    for name in ("astronomy", "image"):
        scan = result.series_by_label(f"{name} / linear scan")
        xtree = result.series_by_label(f"{name} / X-tree")
        # Scan I/O reduction is essentially the block size.
        assert scan.values[0] / scan.values[-1] > 0.8 * m_hi / m_lo
        # The X-tree profits less but clearly profits.
        assert xtree.values[0] / xtree.values[-1] > 2
    benchmark.extra_info["figure"] = "7"
