"""Sec. 6.2 micro-measurement: distance calculation vs. comparison.

Paper (300 MHz Pentium II, C++): 4.3 us per 20-d Euclidean distance,
12.7 us per 64-d distance, 0.082 us per triangle-inequality evaluation
-- ratios 52x and 155x.  Here the same two operations are timed in this
implementation (numpy-amortised per element).
"""

from conftest import run_once
from repro.experiments import run_sec62_microtimings


def test_sec62_microtimings(benchmark):
    result = run_once(benchmark, run_sec62_microtimings)
    print()
    print(result.render())
    measured = result.series_by_label("measured (vectorised, per element)")
    dist20, dist64, comparison = measured.values
    assert dist64 > dist20 > comparison
    assert dist20 / comparison > 5
    benchmark.extra_info["figure"] = "sec 6.2"
