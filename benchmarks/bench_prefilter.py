"""Sketch pre-filter benchmark: page-candidate reduction and identity.

A clustered 10k-object workload stored in cluster order is queried with
cluster-local range-query blocks over the sequential scan -- the access
method with no page pruning of its own, so the sketch tier is the only
thing standing between a block and every data page.  Four signals:

* **identity** -- the exact pre-filter's answers AND deterministic cost
  counters are asserted byte-identical to the unfiltered reference run
  (with and without the avoidance logic), the tier's core guarantee;
* **candidate reduction** -- pages the engines actually evaluated,
  unfiltered vs. filtered; the clustered workload must show at least a
  2x reduction, asserted deterministically;
* **wall clock** -- best-of-N seconds per mode, recorded (not asserted;
  the committed baseline guards it via ``repro bench --check``);
* **measured recall** -- the approximate mode (explicit
  ``recall_target`` opt-in) reports how much of the exact answer set it
  retained, plus how many pages it skipped before reading them.

Results are written to ``BENCH_prefilter.json`` at the repository root;
``repro bench --import-bench BENCH_prefilter.json`` folds them into the
baseline store.  Run standalone or via pytest.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.database import Database
from repro.core.types import range_query
from repro.data import VectorDataset
from repro.prefilter import PrefilterConfig, measure_recall
from repro.workloads import make_gaussian_mixture

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_prefilter.json"

N_OBJECTS = 10_000
DIMENSION = 12
N_CLUSTERS = 20
CLUSTER_STD = 0.02
QUERY_BLOCKS = 5
BLOCK_QUERIES = 8
EPS = 0.15
DISK_BLOCK = 2048
ACCESS = "scan"
RECALL_TARGET = 0.7
REPEATS = 3

_COUNTER_FIELDS = (
    "page_reads",
    "distance_calculations",
    "avoidance_tries",
    "avoided_calculations",
    "queries_completed",
)


def _workload():
    """Cluster-ordered dataset plus cluster-local query blocks.

    The mixture generator assigns clusters in random index order; the
    points are re-sorted by label so data pages are cluster-coherent --
    the storage layout a clustering-friendly bulk load produces, and the
    one where page-level pruning has something to prune.
    """
    mixture = make_gaussian_mixture(
        n=N_OBJECTS,
        dimension=DIMENSION,
        n_clusters=N_CLUSTERS,
        cluster_std=CLUSTER_STD,
        seed=0,
    )
    order = np.argsort(mixture.labels, kind="stable")
    dataset = VectorDataset(mixture.vectors[order], labels=mixture.labels[order])
    rng = np.random.default_rng(1)
    clusters = rng.choice(N_CLUSTERS, size=QUERY_BLOCKS, replace=False)
    indices: list[int] = []
    for cluster in clusters:
        members = np.flatnonzero(dataset.labels == cluster)
        picks = rng.choice(members, size=BLOCK_QUERIES, replace=False)
        indices.extend(int(i) for i in picks)
    queries = [dataset[i] for i in indices]
    return dataset, indices, queries


def _run(dataset, indices, queries, prefilter, use_avoidance=True):
    database = Database(
        dataset, access=ACCESS, block_size=DISK_BLOCK, prefilter=prefilter
    )
    start = time.perf_counter()
    with database.measure() as run:
        answers = database.run_in_blocks(
            queries,
            range_query(EPS),
            block_size=BLOCK_QUERIES,
            use_avoidance=use_avoidance,
            db_indices=indices,
        )
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "answers": [[(a.index, a.distance) for a in per] for per in answers],
        "raw_answers": answers,
        "counters": {
            name: getattr(run.counters, name) for name in _COUNTER_FIELDS
        },
        "prefilter": (
            database.prefilter.stats.snapshot()
            if database.prefilter is not None
            else None
        ),
    }


def _best_of(fn, *args, **kwargs):
    best = None
    for _ in range(REPEATS):
        run = fn(*args, **kwargs)
        if best is None or run["seconds"] < best["seconds"]:
            best = run
    assert best is not None
    return best


def _row(mode, run, reference=None, recall=None):
    if reference is not None:
        assert run["answers"] == reference["answers"], mode
        assert run["counters"] == reference["counters"], mode
    stats = run.get("prefilter") or {}
    delivered = int(stats.get("pages_delivered", 0))
    pruned = int(stats.get("pages_pruned", 0))
    skipped = int(stats.get("pages_skipped", 0))
    evaluated = delivered - pruned - skipped
    reduction = delivered / evaluated if delivered and evaluated else None
    return {
        "mode": mode,
        "seconds": run["seconds"],
        "counters": run["counters"],
        "pages_delivered": delivered,
        "pages_pruned": pruned,
        "pages_skipped": skipped,
        "candidate_reduction": reduction,
        "measured_recall": recall,
        "exact": reference is not None,
    }


def run_bench() -> dict:
    dataset, indices, queries = _workload()

    off = _best_of(_run, dataset, indices, queries, None)
    exact = _best_of(_run, dataset, indices, queries, PrefilterConfig())
    off_noavoid = _best_of(
        _run, dataset, indices, queries, None, use_avoidance=False
    )
    exact_noavoid = _best_of(
        _run, dataset, indices, queries, PrefilterConfig(), use_avoidance=False
    )
    approx = _best_of(
        _run,
        dataset,
        indices,
        queries,
        PrefilterConfig(recall_target=RECALL_TARGET),
    )
    recall = measure_recall(off["raw_answers"], approx["raw_answers"])

    rows = [
        _row("off", off),
        _row("exact", exact, reference=off),
        _row("off_noavoid", off_noavoid),
        _row("exact_noavoid", exact_noavoid, reference=off_noavoid),
        _row(f"approx_{RECALL_TARGET}", approx, recall=recall),
    ]

    # The headline claim: >= 2x page-candidate reduction on the
    # clustered workload, deterministic under the fixed seeds.
    for row in rows:
        if row["exact"]:
            assert row["candidate_reduction"] is not None, row["mode"]
            assert row["candidate_reduction"] >= 2.0, row
    approx_row = rows[-1]
    assert approx_row["pages_skipped"] > 0, approx_row
    assert 0.0 <= recall <= 1.0, recall

    result = {
        "benchmark": "prefilter",
        "n_objects": N_OBJECTS,
        "n_queries": len(queries),
        "access": ACCESS,
        "eps": EPS,
        "recall_target": RECALL_TARGET,
        "repeats": REPEATS,
        "speedup_exact": off["seconds"] / exact["seconds"],
        "rows": rows,
    }
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    return result


def _render(result: dict) -> str:
    lines = [
        f"{'mode':<14} {'seconds':>9} {'dist calcs':>11} {'delivered':>10} "
        f"{'pruned':>7} {'skipped':>8} {'reduction':>10} {'recall':>7}"
    ]
    for row in result["rows"]:
        reduction = (
            f"{row['candidate_reduction']:.1f}x"
            if row["candidate_reduction"]
            else "-"
        )
        recall = (
            f"{row['measured_recall']:.4f}"
            if row["measured_recall"] is not None
            else "-"
        )
        lines.append(
            f"{row['mode']:<14} {row['seconds']:>9.4f} "
            f"{row['counters']['distance_calculations']:>11,} "
            f"{row['pages_delivered']:>10} {row['pages_pruned']:>7} "
            f"{row['pages_skipped']:>8} {reduction:>10} {recall:>7}"
        )
    lines.append(
        f"exact-mode wall clock: {result['speedup_exact']:.2f}x the "
        "unfiltered run"
    )
    return "\n".join(lines)


def test_prefilter_bench():
    result = run_bench()
    print()
    print(_render(result))
    for row in result["rows"]:
        if row["mode"].startswith("exact"):
            assert row["exact"], row


if __name__ == "__main__":
    print(_render(run_bench()))
    sys.exit(0)
