"""Network front-end benchmark: the wire path vs. the in-process path.

Replays one seeded open-loop trace (:mod:`repro.workloads.loadgen`)
twice over the same database:

* **in-process** -- straight through :class:`QueryScheduler`, the
  reference run;
* **wire** -- over a real socket through :class:`~repro.net.QueryServer`
  with the pump disabled, so scheduling is request-driven and must
  reproduce the in-process flush grouping exactly.

Both rows record wall-clock seconds, client-observed latency
percentiles, and the served database's deterministic cost counters.
The counters must be *identical* across rows (the byte-identity
guarantee has a cost-accounting face too), and every wire answer is
asserted equal to its in-process twin.

Results are written to ``BENCH_net.json`` at the repository root;
``repro bench --import-bench BENCH_net.json`` folds them into the
baseline store so the CI regression check guards the socket overhead.

Run standalone (``python benchmarks/bench_net.py``) or via pytest
(``pytest benchmarks/bench_net.py``).
"""

from __future__ import annotations

import asyncio
import json
import sys
from pathlib import Path

from repro.core.database import Database
from repro.net import QueryServer
from repro.workloads.loadgen import (
    compare_answers,
    record_trace,
    replay_in_process,
    replay_over_wire,
    trace_dataset,
)

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_net.json"

N_OBJECTS = 4_096
N_QUERIES = 256
N_CLIENTS = 8
RATE = 2_000.0
K = 10
REPEATS = 3

_COUNTER_FIELDS = (
    "page_reads",
    "distance_calculations",
    "avoidance_tries",
    "avoided_calculations",
    "queries_completed",
)


def _trace():
    return record_trace(
        N_QUERIES,
        rate=RATE,
        n_clients=N_CLIENTS,
        objects=N_OBJECTS,
        k=K,
        mix=True,
        seed=7,
    )


def _counters(database) -> dict[str, int]:
    return {
        name: getattr(database.counters, name) for name in _COUNTER_FIELDS
    }


def _run_in_process(trace) -> dict:
    database = Database(trace_dataset(trace), access="xtree", block_size=2048)
    answers, report = replay_in_process(trace, database=database)
    return {
        "answers": answers,
        "report": report,
        "counters": _counters(database),
    }


def _run_wire(trace) -> dict:
    async def run():
        database = Database(
            trace_dataset(trace), access="xtree", block_size=2048
        )
        scheduler = database.serve(block_target=8, max_block=32, order="fifo")
        server = QueryServer(scheduler, poll_interval=0)
        await server.start()
        host, port = server.address
        # One connection keeps server-side arrival order identical to
        # the trace order, so the flush grouping -- and with it every
        # deterministic cost counter -- matches the in-process run
        # exactly.  (With many connections the kernel may interleave
        # frames differently; answers stay byte-identical either way,
        # but block composition and sharing counters can shift.)
        answers, report = await replay_over_wire(
            trace, host, port, speed=0.0, stream=False, max_connections=1
        )
        await server.shutdown()
        return {
            "answers": answers,
            "report": report,
            "counters": _counters(database),
        }

    return asyncio.run(run())


def _row(run: dict) -> dict:
    report = run["report"]
    return {
        **report.as_dict(),
        "seconds": report.wall_seconds,
        "counters": run["counters"],
    }


def run_bench() -> dict:
    trace = _trace()
    reference = _run_in_process(trace)

    best_inproc = reference
    for _ in range(REPEATS - 1):
        run = _run_in_process(trace)
        if run["report"].wall_seconds < best_inproc["report"].wall_seconds:
            best_inproc = run

    best_wire: dict | None = None
    for _ in range(REPEATS):
        run = _run_wire(trace)
        # Byte-identity and counter-identity hold for every repeat, not
        # just the fastest one.
        assert (
            compare_answers(run["answers"], reference["answers"]) == []
        ), "wire answers diverge from the in-process reference"
        assert run["counters"] == reference["counters"], (
            run["counters"],
            reference["counters"],
        )
        assert run["report"].shed == 0 and run["report"].degraded == 0
        if (
            best_wire is None
            or run["report"].wall_seconds < best_wire["report"].wall_seconds
        ):
            best_wire = run
    assert best_wire is not None

    result = {
        "benchmark": "net",
        "repeats": REPEATS,
        "n_objects": N_OBJECTS,
        "n_queries": N_QUERIES,
        "n_clients": N_CLIENTS,
        "offered_rate": RATE,
        "identical_to_in_process": True,
        "rows": [_row(best_inproc), _row(best_wire)],
    }
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    return result


def _render(result: dict) -> str:
    lines = [
        f"{'mode':<12} {'seconds':>9} {'q/s':>9} {'p50 ms':>9} "
        f"{'p99 ms':>9} {'shed':>6} {'degraded':>9}"
    ]
    for row in result["rows"]:
        lines.append(
            f"{row['mode']:<12} {row['seconds']:>9.3f} "
            f"{row['queries_per_second']:>9.1f} "
            f"{row['latency_p50_ms']:>9.3f} {row['latency_p99_ms']:>9.3f} "
            f"{row['shed']:>6} {row['degraded']:>9}"
        )
    lines.append("wire answers byte-identical to in-process: yes")
    return "\n".join(lines)


def test_net_overhead():
    result = run_bench()
    print()
    print(_render(result))
    assert result["identical_to_in_process"]
    for row in result["rows"]:
        assert row["completed"] == N_QUERIES, row
        assert row["shed"] == 0 and row["degraded"] == 0, row


if __name__ == "__main__":
    print(_render(run_bench()))
    sys.exit(0)
