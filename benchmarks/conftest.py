"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table/figure of the paper's evaluation
through the harness in :mod:`repro.experiments`.  The heavy sweeps are
cached inside the harness, so the Figure 7-10 benchmarks share one
computation.

Set ``REPRO_BENCH_SMALL=1`` to run the whole suite on the seconds-scale
preset (used by CI smoke runs); the default preset reproduces the
numbers recorded in EXPERIMENTS.md.
"""

import os

import pytest

from repro.experiments import ExperimentConfig


@pytest.fixture(scope="session")
def config():
    if os.environ.get("REPRO_BENCH_SMALL"):
        return ExperimentConfig.small()
    return ExperimentConfig.default()


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def full_scale(config):
    """Whether paper-shape assertions are meaningful at this scale.

    The small CI preset (thousands of objects, a handful of pages)
    cannot reproduce crossovers that depend on index selectivity; the
    benchmarks still run end to end but only assert the shapes at the
    default scale.
    """
    return config.astronomy_n >= 20_000
