"""Sec. 6 robustness claim: per-query cost is quite robust to k."""

from conftest import run_once
from repro.experiments import run_k_robustness


def test_k_robustness(benchmark, config):
    result = run_once(benchmark, run_k_robustness, config)
    print()
    print(result.render())
    for series in result.series:
        # Cost varies far less than k itself (k sweeps over 50x).
        k_spread = config.k_values[-1] / config.k_values[0]
        cost_spread = max(series.values) / min(series.values)
        assert cost_spread < k_spread / 2
    benchmark.extra_info["figure"] = "sec 6 (k)"
