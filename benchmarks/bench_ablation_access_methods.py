"""Ablation: access methods under the same multiple-query workload.

Adds the M-tree (metric index) and the VA-file (approximation scan) to
the paper's scan/X-tree comparison.

Observed at the default scale: the M-tree's I/O is dominated by
*directory* reads, not data pages.  Its data pages are read once for
the whole batch (the multiple-query sharing works), but a 40 k-object
M-tree has ~86 internal nodes, every driver's descent touches most of
them (weak ball pruning at 20 dimensions), and the paper's buffer
setting -- 10 % of the index, ~31 blocks -- thrashes on them.  The
X-tree avoids this with a one-node directory (315-entry MBR fanout).
A directory-pinning buffer policy would close most of the gap; it is
left at the paper's plain-LRU setting for comparability.
"""

from repro import Database
from repro.core.types import knn_query
from repro.experiments.runner import dataset_k, get_dataset, workload_queries


def test_access_method_ablation(benchmark, config):
    dataset = get_dataset("astronomy", config)
    indices = workload_queries("astronomy", config)
    qtype = knn_query(dataset_k("astronomy", config))
    queries = [dataset[i] for i in indices]

    def run_all():
        results = {}
        for access in ("scan", "xtree", "vafile", "mtree"):
            database = Database(dataset, access=access)
            with database.measure() as handle:
                database.run_in_blocks(
                    queries,
                    qtype,
                    block_size=len(queries),
                    db_indices=indices,
                    warm_start=access != "scan",
                )
            results[access] = handle
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\nAccess methods (astronomy, m = %d):" % len(queries))
    for access, handle in results.items():
        print(
            f"  {access:>7}: io={handle.io_seconds:7.3f}s "
            f"cpu={handle.cpu_seconds:7.3f}s total={handle.total_seconds:7.3f}s"
        )
    for handle in results.values():
        assert handle.total_seconds > 0
