"""Figure 10: speed-up of the multiple similarity query w.r.t. m.

Paper at m = 100: scan 28x / 68x, X-tree 7.2x / 12.1x; the clustered
image database always gains more.
"""

from conftest import run_once
from repro.experiments import run_figure10


def test_figure10(benchmark, config):
    result = run_once(benchmark, run_figure10, config)
    print()
    print(result.render())
    astro_scan = result.series_by_label("astronomy / linear scan")
    astro_xtree = result.series_by_label("astronomy / X-tree")
    image_scan = result.series_by_label("image / linear scan")
    image_xtree = result.series_by_label("image / X-tree")
    # Everyone gains and the gain grows with m.
    for series in result.series:
        assert series.values == sorted(series.values)
        assert series.values[-1] > 2
    # The paper's orderings: scan gains more than the X-tree, the image
    # database more than the astronomy database.
    assert astro_scan.values[-1] > astro_xtree.values[-1]
    assert image_scan.values[-1] > astro_scan.values[-1]
    assert image_xtree.values[-1] > astro_xtree.values[-1]
    benchmark.extra_info["figure"] = "10"
