"""Optimizer-v2 benchmark: identity sweep plus mixed-workload throughput.

Two guarantees of the cost-based batch optimizer are measured:

* **Identity** -- v2 forced to a single partition (``share_bound=inf``)
  must produce answers *and* deterministic cost counters byte-identical
  to the v1 scheduler, across every access method x engine cell.  Any
  planning work that leaked a distance calculation or page read into
  the execution path would fail this sweep.
* **Throughput** -- on a mixed range/k-NN multi-client trace at
  n >= 10^4, v2 (sharing-aware partitioning, per-partition engine and
  access-method selection on a probed cost surface) must beat the v1
  single-knee configuration by >= 1.2x wall-clock.

Results are written to ``BENCH_optimizer.json`` at the repository root;
``repro bench --import-bench BENCH_optimizer.json`` folds them into the
baseline store so the CI regression check guards optimizer throughput.

Run standalone (``python benchmarks/bench_optimizer.py``) or via pytest
(``pytest benchmarks/bench_optimizer.py``).
"""

from __future__ import annotations

import json
import math
import sys
import time
from pathlib import Path

from repro.core.database import Database
from repro.core.planner import QueryPlanner
from repro.core.types import knn_query, range_query
from repro.service import OPTIMIZER_V1, OPTIMIZER_V2, knee_block_size
from repro.workloads import make_gaussian_mixture, sample_database_queries

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_optimizer.json"

DIMENSION = 16
K = 10

# Identity sweep: small database, every access method x engine cell.
N_IDENTITY = 1_500
IDENTITY_CLIENTS = 4
IDENTITY_QUERIES_PER_CLIENT = 3
ACCESS_METHODS = ("scan", "xtree", "mtree", "rstar", "vafile")
ENGINES = ("reference", "vectorized", "batched")

# Throughput headline: mixed trace at n >= 10^4, one cluster per
# client (the paper's mining drivers issue spatially local streams).
N_THROUGHPUT = 12_000
CLIENTS = 8
QUERIES_PER_CLIENT = 12
BLOCK_TARGET = 8
MAX_BLOCK = 32
REPEATS = 5
MIN_SPEEDUP = 1.2


def _mixed_qtypes(n: int) -> list:
    """Alternating k-NN and diverse-radius range queries (CLI ``--mix``)."""
    qtypes = []
    for position in range(n):
        if position % 2:
            qtypes.append(knn_query(K))
        else:
            qtypes.append(range_query(0.12 * (1 + (position // 2) % 3)))
    return qtypes


def _trace(dataset, indices, n_clients: int):
    """Round-robin arrivals: client c submits its next query each round."""
    qtypes = _mixed_qtypes(len(indices))
    trace = []
    for position, index in enumerate(indices):
        trace.append((position % n_clients, dataset[index], qtypes[position]))
    return trace


def _clustered_trace(dataset, n_clients: int, queries_per_client: int):
    """Round-robin arrivals with per-client locality: client c queries
    its own cluster, so FIFO admission interleaves far-apart queries
    while affinity partitioning can regroup them."""
    labels = dataset.labels
    per_client = {
        c: [i for i in range(len(labels)) if labels[i] == c][:queries_per_client]
        for c in range(n_clients)
    }
    qtypes = _mixed_qtypes(n_clients * queries_per_client)
    trace = []
    position = 0
    for round_ in range(queries_per_client):
        for client in range(n_clients):
            trace.append(
                (client, dataset[per_client[client][round_]], qtypes[position])
            )
            position += 1
    return trace


def _run_scheduler(
    dataset,
    trace,
    access: str,
    engine: str,
    optimizer: str,
    share_bound: float | None = None,
    planner=None,
    block_target: int = BLOCK_TARGET,
):
    database = Database(dataset, access=access, engine=engine, block_size=2048)
    scheduler = database.serve(
        block_target=block_target,
        max_block=MAX_BLOCK,
        optimizer=optimizer,
        share_bound=share_bound,
        planner=planner,
    )
    start = time.perf_counter()
    tickets = scheduler.serve(trace)
    seconds = time.perf_counter() - start
    answers = [
        [(a.index, float(a.distance)) for a in t.answers] for t in tickets
    ]
    return {
        "seconds": seconds,
        "answers": answers,
        "counters": database.counters.as_dict(),
        "scheduler": scheduler,
    }


def run_identity_sweep() -> list[dict]:
    """v1 vs v2-forced-single-partition across every access x engine."""
    dataset = make_gaussian_mixture(
        n=N_IDENTITY, dimension=DIMENSION, n_clusters=12, cluster_std=0.05, seed=0
    )
    indices = sample_database_queries(
        dataset, IDENTITY_CLIENTS * IDENTITY_QUERIES_PER_CLIENT, seed=1
    )
    trace = _trace(dataset, indices, IDENTITY_CLIENTS)
    cells = []
    for access in ACCESS_METHODS:
        for engine in ENGINES:
            v1 = _run_scheduler(dataset, trace, access, engine, OPTIMIZER_V1)
            v2 = _run_scheduler(
                dataset,
                trace,
                access,
                engine,
                OPTIMIZER_V2,
                share_bound=math.inf,
            )
            cells.append(
                {
                    "access": access,
                    "engine": engine,
                    "answers_identical": v1["answers"] == v2["answers"],
                    "counters_identical": v1["counters"] == v2["counters"],
                }
            )
    return cells


def _v1_knee_target(planner: QueryPlanner) -> int:
    """The v1 single-knee block target from the probed k-NN fits."""
    fits = planner.fit_surface(knn_query(K))
    own = [f for f in fits if f.engine is None]
    best = min(
        own or fits, key=lambda f: f.per_query(MAX_BLOCK)
    )
    return knee_block_size(best, MAX_BLOCK)


def run_throughput() -> dict:
    dataset = make_gaussian_mixture(
        n=N_THROUGHPUT,
        dimension=DIMENSION,
        n_clusters=30,
        cluster_std=0.03,
        seed=0,
    )
    trace = _clustered_trace(dataset, CLIENTS, QUERIES_PER_CLIENT)
    # Probe the serving access method only: the cold-database probes
    # systematically overprice buffer-friendly tree indexes relative to
    # scan, so cross-access selection is not part of the headline.
    planner = QueryPlanner(
        dataset,
        candidates=("xtree",),
        engines=(None, "batched"),
    )
    v1_target = _v1_knee_target(planner)

    best: dict[str, dict] = {}
    for _ in range(REPEATS):
        v1 = _run_scheduler(
            dataset,
            trace,
            "xtree",
            "auto",
            OPTIMIZER_V1,
            block_target=v1_target,
        )
        # v2 gathers a full admission window and lets the cost-based
        # partitioner cut it; v1 flushes at its single knee target.
        v2 = _run_scheduler(
            dataset,
            trace,
            "xtree",
            "auto",
            OPTIMIZER_V2,
            planner=planner,
            block_target=MAX_BLOCK,
        )
        assert v1["answers"] == v2["answers"], "v2 changed answers"
        for mode, run in (("v1", v1), ("v2", v2)):
            if mode not in best or run["seconds"] < best[mode]["seconds"]:
                best[mode] = run

    n_queries = len(trace)
    speedup = best["v1"]["seconds"] / best["v2"]["seconds"]
    rows = []
    for mode in ("v1", "v2"):
        run = best[mode]
        rows.append(
            {
                "mode": mode,
                "seconds": run["seconds"],
                "queries_per_second": n_queries / run["seconds"],
                "speedup_vs_v1": best["v1"]["seconds"] / run["seconds"],
                "block_target": v1_target if mode == "v1" else None,
                "counters": run["counters"],
            }
        )
    return {"rows": rows, "speedup": speedup, "n_queries": n_queries}


def run_bench() -> dict:
    cells = run_identity_sweep()
    throughput = run_throughput()
    result = {
        "benchmark": "optimizer",
        "n_objects": N_THROUGHPUT,
        "n_queries": throughput["n_queries"],
        "repeats": REPEATS,
        "identity_cells": cells,
        "rows": throughput["rows"],
        "speedup": throughput["speedup"],
    }
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    return result


def _render(result: dict) -> str:
    lines = ["identity sweep (v1 vs v2 forced single partition):"]
    for cell in result["identity_cells"]:
        verdict = (
            "ok"
            if cell["answers_identical"] and cell["counters_identical"]
            else "MISMATCH"
        )
        lines.append(
            f"  {cell['access']:<8} {cell['engine']:<11} {verdict}"
        )
    lines.append("")
    lines.append(
        f"{'mode':<6} {'seconds':>9} {'q/s':>8} {'speedup':>8} "
        f"{'page reads':>11} {'dist calcs':>11}"
    )
    for row in result["rows"]:
        c = row["counters"]
        pages = c["sequential_page_reads"] + c["random_page_reads"]
        lines.append(
            f"{row['mode']:<6} {row['seconds']:>9.3f} "
            f"{row['queries_per_second']:>8.1f} "
            f"{row['speedup_vs_v1']:>7.2f}x {pages:>11,} "
            f"{c['distance_calculations']:>11,}"
        )
    return "\n".join(lines)


def test_optimizer_identity_and_throughput():
    result = run_bench()
    print()
    print(_render(result))
    for cell in result["identity_cells"]:
        assert cell["answers_identical"], cell
        assert cell["counters_identical"], cell
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"v2 speedup {result['speedup']:.2f}x below {MIN_SPEEDUP}x"
    )


if __name__ == "__main__":
    result = run_bench()
    print(_render(result))
    sys.exit(0 if result["speedup"] >= MIN_SPEEDUP else 1)
