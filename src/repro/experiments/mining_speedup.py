"""End-to-end mining speed-ups (the paper's motivating claim, Sec. 3.3).

The figures of Sec. 6 measure query batches in isolation; the paper's
motivation is that *whole mining algorithms* speed up once they are
transformed to the multiple-query form.  This harness runs three of the
Sec. 3.2 instances end to end -- DBSCAN, simultaneous k-NN
classification and concurrent manual exploration -- in both forms and
reports the modelled cost ratio.  Results are identical by construction
(the transformation is purely syntactic); only the cost changes.
"""

from __future__ import annotations

import numpy as np

from repro.core.database import Database
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import FigureResult, Series
from repro.experiments.runner import get_dataset, workload_queries
from repro.mining.classify import knn_classify
from repro.mining.dbscan import dbscan
from repro.mining.exploration import simulate_concurrent_exploration


def _dbscan_task(config: ExperimentConfig):
    dataset = get_dataset("astronomy", config)
    eps = _dbscan_eps(dataset)
    subset = min(len(dataset), max(2000, config.astronomy_n // 8))

    def run(batch_size: int) -> tuple[float, object]:
        database = Database(
            _subset(dataset, subset), access="xtree"
        )
        with database.measure() as handle:
            result = dbscan(database, eps=eps, min_pts=5, batch_size=batch_size)
        return handle.total_seconds, result.labels.tolist()

    return run


def _subset(dataset, n):
    from repro.data import VectorDataset

    return VectorDataset(dataset.vectors[:n], labels=(
        dataset.labels[:n] if dataset.labels is not None else None
    ))


def _dbscan_eps(dataset) -> float:
    """A radius around the typical 8-NN distance of a data sample."""
    rng = np.random.default_rng(0)
    sample = dataset.vectors[rng.choice(len(dataset), 60, replace=False)]
    dists = np.sqrt(((sample[:, None] - sample[None, :]) ** 2).sum(-1))
    return float(np.median(np.partition(dists, 1, axis=1)[:, 1]))


def _classification_task(config: ExperimentConfig):
    dataset = get_dataset("astronomy", config)
    indices = workload_queries("astronomy", config)

    def run(batch_size: int) -> tuple[float, object]:
        database = Database(dataset, access="xtree")
        with database.measure() as handle:
            predictions = knn_classify(
                database,
                indices,
                k=config.astronomy_k,
                block_size=batch_size,
                exclude_self=True,
            )
        return handle.total_seconds, predictions

    return run


def _exploration_task(config: ExperimentConfig):
    dataset = get_dataset("image", config)

    def run(batch_size: int) -> tuple[float, object]:
        database = Database(dataset, access="xtree")
        with database.measure() as handle:
            trace = simulate_concurrent_exploration(
                database,
                n_users=4,
                k=config.image_k,
                n_rounds=3,
                block_size=batch_size if batch_size > 1 else 1,
                seed=config.seed,
            )
        return handle.total_seconds, trace.user_paths

    return run


def run_mining_speedup(config: ExperimentConfig | None = None) -> FigureResult:
    """Modelled cost of three mining algorithms, single vs. multiple form."""
    config = config or ExperimentConfig.default()
    tasks = {
        "DBSCAN (astronomy subset)": (_dbscan_task(config), 32),
        "k-NN classification (astronomy)": (
            _classification_task(config),
            config.n_queries,
        ),
        "manual exploration (image)": (_exploration_task(config), None),
    }
    result = FigureResult(
        figure_id="Sec. 3.3",
        title="End-to-end mining cost: single vs. multiple similarity queries",
        x_label="query form",
        x_values=["single", "multiple", "speed-up"],
        y_label="modelled seconds for the whole algorithm (speed-up unitless)",
        paper_notes=[
            "\"the runtime of the whole class of ExploreNeighborhoods-"
            "algorithms will be improved\" (Sec. 3.3); the transformation "
            "is purely syntactic, results are identical",
        ],
    )
    for label, (task, batch) in tasks.items():
        single_seconds, single_output = task(1)
        multi_batch = batch if batch is not None else 10_000
        multi_seconds, multi_output = task(multi_batch)
        assert single_output == multi_output, f"{label}: results diverged"
        result.series.append(
            Series(
                label=label,
                values=[
                    single_seconds,
                    multi_seconds,
                    single_seconds / multi_seconds,
                ],
            )
        )
        result.measured_notes.append(
            f"{label}: {single_seconds / multi_seconds:.1f}x cheaper, "
            "identical output"
        )
    return result
