"""Evaluation harness: one entry point per paper figure (Sec. 6).

``run_figure7`` .. ``run_figure12`` regenerate the corresponding figure
of the paper as a :class:`~repro.experiments.report.FigureResult` with
the same series the paper plots, plus the paper's own reported numbers
for side-by-side comparison.  ``python -m repro.experiments.run_all``
runs everything and renders EXPERIMENTS.md.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.mining_speedup import run_mining_speedup
from repro.experiments.figures import (
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
    run_figure12,
    run_k_robustness,
    run_sec62_microtimings,
)
from repro.experiments.report import FigureResult, Series

__all__ = [
    "ExperimentConfig",
    "FigureResult",
    "Series",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_figure10",
    "run_figure11",
    "run_figure12",
    "run_k_robustness",
    "run_mining_speedup",
    "run_sec62_microtimings",
]
