"""One harness function per figure of the paper's evaluation (Sec. 6)."""

from __future__ import annotations

import timeit

import numpy as np

from repro.core.database import Database
from repro.core.types import knn_query
from repro.costmodel.model import distance_calculation_seconds, COMPARISON_SECONDS
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import FigureResult, Series
from repro.experiments.runner import (
    ACCESS_METHODS,
    DATASET_NAMES,
    CostPoint,
    build_database,
    dataset_k,
    get_dataset,
    sweep,
    workload_queries,
)
from repro.metric.distances import EuclideanDistance
from repro.parallel.executor import ParallelDatabase

_SERIES_LABELS = {
    ("astronomy", "scan"): "astronomy / linear scan",
    ("astronomy", "xtree"): "astronomy / X-tree",
    ("image", "scan"): "image / linear scan",
    ("image", "xtree"): "image / X-tree",
}


def _cost_figure(
    figure_id: str,
    title: str,
    y_label: str,
    extract,
    config: ExperimentConfig,
    paper_notes: list[str],
) -> FigureResult:
    result = FigureResult(
        figure_id=figure_id,
        title=title,
        x_label="m",
        x_values=list(config.m_values),
        y_label=y_label,
        paper_notes=paper_notes,
    )
    for name in DATASET_NAMES:
        for access in ACCESS_METHODS:
            points = sweep(name, access, config)
            result.series.append(
                Series(
                    label=_SERIES_LABELS[(name, access)],
                    values=[extract(points[m]) for m in config.m_values],
                )
            )
    return result


def run_figure7(config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 7: average I/O cost per similarity query vs. m."""
    config = config or ExperimentConfig.default()
    result = _cost_figure(
        "Figure 7",
        "Average I/O cost per similarity query",
        "modelled I/O seconds per query",
        lambda p: p.io_seconds,
        config,
        paper_notes=[
            "single query: X-tree beats the scan by 4.5x (astronomy) and 3.1x (image)",
            "m=100: X-tree average I/O is 1.5x (astronomy) / 3.6x (image) the scan's",
            "scan I/O drops by a factor of nearly m; X-tree by 8.7x / 15x at m=100",
        ],
    )
    _append_io_notes(result, config)
    return result


def _append_io_notes(result: FigureResult, config: ExperimentConfig) -> None:
    m_lo, m_hi = config.m_values[0], config.m_values[-1]
    for name in DATASET_NAMES:
        scan = sweep(name, "scan", config)
        xtree = sweep(name, "xtree", config)
        result.measured_notes.append(
            f"{name}: single-query X-tree advantage "
            f"{scan[m_lo].io_seconds / xtree[m_lo].io_seconds:.1f}x; at m={m_hi} "
            f"scan reduction {scan[m_lo].io_seconds / scan[m_hi].io_seconds:.1f}x, "
            f"X-tree reduction {xtree[m_lo].io_seconds / xtree[m_hi].io_seconds:.1f}x"
        )


def run_figure8(config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 8: average CPU cost per similarity query vs. m."""
    config = config or ExperimentConfig.default()
    result = _cost_figure(
        "Figure 8",
        "Average CPU cost per similarity query",
        "modelled CPU seconds per query",
        lambda p: p.cpu_seconds,
        config,
        paper_notes=[
            "scan CPU reduction at m=100: 7.1x (astronomy), 28x (image, clustered)",
            "X-tree CPU reduction at m=100: 2.1x on both databases",
        ],
    )
    m_lo, m_hi = config.m_values[0], config.m_values[-1]
    for name in DATASET_NAMES:
        scan = sweep(name, "scan", config)
        xtree = sweep(name, "xtree", config)
        result.measured_notes.append(
            f"{name}: CPU reduction at m={m_hi}: "
            f"scan {scan[m_lo].cpu_seconds / scan[m_hi].cpu_seconds:.1f}x, "
            f"X-tree {xtree[m_lo].cpu_seconds / xtree[m_hi].cpu_seconds:.1f}x"
        )
    return result


def run_figure9(config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 9: average total query cost (I/O + CPU) vs. m."""
    config = config or ExperimentConfig.default()
    result = _cost_figure(
        "Figure 9",
        "Average total query cost per similarity query",
        "modelled seconds per query (I/O + CPU)",
        lambda p: p.total_seconds,
        config,
        paper_notes=[
            "scan becomes CPU-bound for m >= 20 (astronomy) / m >= 100 (image)",
            "scan outperforms the X-tree for m >= 10 (astronomy) / m >= 100 (image)",
        ],
    )
    m_hi = config.m_values[-1]
    for name in DATASET_NAMES:
        scan = sweep(name, "scan", config)
        xtree = sweep(name, "xtree", config)
        crossover = next(
            (
                m
                for m in config.m_values
                if scan[m].total_seconds < xtree[m].total_seconds
            ),
            None,
        )
        result.measured_notes.append(
            f"{name}: scan outperforms X-tree from m={crossover}; at m={m_hi} "
            f"scan is {'CPU' if scan[m_hi].cpu_seconds > scan[m_hi].io_seconds else 'I/O'}-bound"
        )
    return result


def run_figure10(config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 10: speed-up of m multiple queries over single queries."""
    config = config or ExperimentConfig.default()
    m_lo = config.m_values[0]
    result = _cost_figure(
        "Figure 10",
        "Speed-up with respect to m (total cost, m vs. m=1)",
        "speed-up factor",
        lambda p: p.total_seconds,
        config,
        paper_notes=[
            "m=100 vs m=1: scan 28x (astronomy), 68x (image)",
            "m=100 vs m=1: X-tree 7.2x (astronomy), 12.1x (image)",
            "speed-ups are always higher on the clustered image database",
        ],
    )
    for series in result.series:
        base = series.values[0]
        series.values = [base / v if v > 0 else float("inf") for v in series.values]
    m_hi = config.m_values[-1]
    for name in DATASET_NAMES:
        scan = sweep(name, "scan", config)
        xtree = sweep(name, "xtree", config)
        result.measured_notes.append(
            f"{name}: speed-up at m={m_hi}: "
            f"scan {scan[m_lo].total_seconds / scan[m_hi].total_seconds:.1f}x, "
            f"X-tree {xtree[m_lo].total_seconds / xtree[m_hi].total_seconds:.1f}x"
        )
    return result


# ----------------------------------------------------------------------
# Parallel experiments (Figures 11 and 12)
# ----------------------------------------------------------------------

_parallel_cache: dict[tuple, float] = {}


def _parallel_per_query_cost(
    name: str, access: str, n_servers: int, config: ExperimentConfig
) -> float:
    """Modelled elapsed seconds per query of the parallel run.

    Follows Sec. 6.4: ``m = parallel_base_m * s`` queries are processed
    as one parallel multiple similarity query on ``s`` servers.
    """
    key = (name, access, n_servers, config)
    if key in _parallel_cache:
        return _parallel_cache[key]
    dataset = get_dataset(name, config)
    n_queries = config.parallel_base_m * n_servers
    query_indices = workload_queries(name, config, n_queries=n_queries)
    queries = [dataset[i] for i in query_indices]
    qtype = knn_query(dataset_k(name, config))
    parallel = ParallelDatabase(dataset, n_servers=n_servers, access=access)
    # No per-server warm start: the home-bound broadcast phase already
    # establishes tight query distances, and warming every query on
    # every server would add one full page of distance calculations per
    # (query, server) pair.
    run = parallel.multiple_similarity_query(
        queries,
        qtype,
        db_indices=query_indices,
        warm_start=False,
    )
    cost = run.elapsed_seconds / n_queries
    _parallel_cache[key] = cost
    return cost


def run_figure11(config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 11: parallel vs. sequential multiple queries, speed-up vs. s."""
    config = config or ExperimentConfig.default()
    result = FigureResult(
        figure_id="Figure 11",
        title="Parallelization speed-up per similarity query",
        x_label="s (servers)",
        x_values=list(config.server_counts),
        y_label="speed-up of parallel multiple queries (m = base_m * s) over "
        "sequential multiple queries (m = base_m)",
        paper_notes=[
            "astronomy: super-linear up to 8 servers; 13.4x (scan) and 17.9x "
            "(X-tree) at s=16",
            "image: sub-linear (4.1x / 4.3x at s=8) and decreasing at s=16 due "
            "to the O(m^2) matrix and avoidance overheads on the small database",
        ],
    )
    for name in DATASET_NAMES:
        for access in ACCESS_METHODS:
            baseline = _parallel_per_query_cost(name, access, 1, config)
            values = [
                baseline / _parallel_per_query_cost(name, access, s, config)
                for s in config.server_counts
            ]
            result.series.append(
                Series(label=_SERIES_LABELS[(name, access)], values=values)
            )
    s_hi = config.server_counts[-1]
    for series in result.series:
        linear = series.values[-1] / s_hi
        kind = "super-linear" if linear > 1.0 else "sub-linear"
        result.measured_notes.append(
            f"{series.label}: {series.values[-1]:.1f}x at s={s_hi} ({kind})"
        )
    return result


def run_figure12(config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 12: overall speed-up (parallel multiple vs. sequential single)."""
    config = config or ExperimentConfig.default()
    result = FigureResult(
        figure_id="Figure 12",
        title="Overall speed-up: parallel multiple queries vs. sequential "
        "single queries",
        x_label="s (servers)",
        x_values=list(config.server_counts),
        y_label="combined speed-up factor",
        paper_notes=[
            "astronomy, s=16: 374x (scan), 128x (X-tree)",
            "image, s=8: 279x (scan), 52x (X-tree)",
        ],
    )
    m_lo = config.m_values[0]
    for name in DATASET_NAMES:
        for access in ACCESS_METHODS:
            single = sweep(name, access, config)[m_lo].total_seconds
            values = [
                single / _parallel_per_query_cost(name, access, s, config)
                for s in config.server_counts
            ]
            result.series.append(
                Series(label=_SERIES_LABELS[(name, access)], values=values)
            )
    s_hi = config.server_counts[-1]
    for series in result.series:
        result.measured_notes.append(
            f"{series.label}: {series.values[-1]:.0f}x at s={s_hi}"
        )
    return result


# ----------------------------------------------------------------------
# Sec. 6 side experiments
# ----------------------------------------------------------------------


def run_k_robustness(config: ExperimentConfig | None = None) -> FigureResult:
    """Sec. 6 claim: average cost per k-NN query is robust to k."""
    config = config or ExperimentConfig.default()
    result = FigureResult(
        figure_id="Sec. 6 (k robustness)",
        title="Average total cost per query vs. k (m = block of all queries)",
        x_label="k",
        x_values=list(config.k_values),
        y_label="modelled seconds per query",
        paper_notes=[
            "\"the average cost per k-nearest neighbor query was quite robust "
            "to the value of k\"",
        ],
    )
    for name in DATASET_NAMES:
        for access in ACCESS_METHODS:
            database = build_database(name, access, config)
            query_indices = workload_queries(name, config)
            queries = [database.dataset[i] for i in query_indices]
            values = []
            for k in config.k_values:
                database.cold()
                with database.measure() as handle:
                    database.run_in_blocks(
                        queries,
                        knn_query(k),
                        block_size=len(queries),
                        db_indices=query_indices,
                        warm_start=access != "scan",
                    )
                values.append(handle.total_seconds / len(queries))
            result.series.append(
                Series(label=_SERIES_LABELS[(name, access)], values=values)
            )
    for series in result.series:
        lo, hi = min(series.values), max(series.values)
        result.measured_notes.append(
            f"{series.label}: max/min cost ratio over k sweep = {hi / lo:.2f}"
        )
    return result


def run_sec62_microtimings(repeats: int = 200_000) -> FigureResult:
    """Sec. 6.2: distance calculation vs. triangle-inequality comparison.

    The paper measured 4.3 us (20-d) / 12.7 us (64-d) per Euclidean
    distance against 0.082 us per comparison on its 300 MHz Pentium II:
    ratios of 52x and 155x.  This harness measures the same two
    operations in this Python implementation, amortised over vectorised
    batches (the per-element cost, which is what the engines pay), and
    also reports the paper constants used by the cost model.
    """
    rng = np.random.default_rng(0)
    euclidean = EuclideanDistance()
    batch = 1000
    rows = {}
    for dim in (20, 64):
        xs = rng.random((batch, dim))
        q = rng.random(dim)
        seconds = timeit.timeit(
            lambda: euclidean.many(xs, q), number=max(1, repeats // batch)
        )
        rows[dim] = seconds / (max(1, repeats // batch) * batch)
    known = rng.random(batch)
    dqq = rng.random(batch)
    comparison_seconds = timeit.timeit(
        lambda: known > dqq + 0.25, number=max(1, repeats // batch)
    ) / (max(1, repeats // batch) * batch)

    result = FigureResult(
        figure_id="Sec. 6.2",
        title="Distance calculation vs. triangle-inequality evaluation",
        x_label="operation",
        x_values=["dist 20-d", "dist 64-d", "comparison"],
        y_label="microseconds per operation",
        paper_notes=[
            "paper: 4.3 us (20-d), 12.7 us (64-d), 0.082 us per comparison "
            "(ratios 52x and 155x)",
        ],
    )
    result.series.append(
        Series(
            label="measured (vectorised, per element)",
            values=[rows[20] * 1e6, rows[64] * 1e6, comparison_seconds * 1e6],
        )
    )
    result.series.append(
        Series(
            label="cost model constants (paper)",
            values=[
                distance_calculation_seconds(20) * 1e6,
                distance_calculation_seconds(64) * 1e6,
                COMPARISON_SECONDS * 1e6,
            ],
        )
    )
    ratio20 = rows[20] / comparison_seconds
    ratio64 = rows[64] / comparison_seconds
    result.measured_notes.append(
        f"measured ratios: {ratio20:.0f}x (20-d), {ratio64:.0f}x (64-d) "
        "-- a distance calculation is 1-2 orders of magnitude more expensive "
        "than a comparison, as the paper's technique requires"
    )
    return result
