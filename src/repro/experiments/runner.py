"""Shared sweep infrastructure for the figure harnesses.

Figures 7-10 all derive from one sweep: for each dataset (astronomy,
image), access method (scan, X-tree) and block size m, the M-query
workload is processed in blocks of m and the average modelled I/O and
CPU cost per query recorded.  The sweep is computed once per
configuration and cached.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.database import Database
from repro.core.types import knn_query
from repro.experiments.config import ExperimentConfig
from repro.workloads.generators import make_astronomy, make_image_histograms
from repro.workloads.queries import sample_database_queries

DATASET_NAMES = ("astronomy", "image")
ACCESS_METHODS = ("scan", "xtree")

_dataset_cache: dict[tuple, object] = {}
_sweep_cache: dict[tuple, dict] = {}
_sweep_metrics_cache: dict[tuple, dict] = {}


def clear_caches() -> None:
    """Drop all cached datasets and sweeps (test isolation)."""
    _dataset_cache.clear()
    _sweep_cache.clear()
    _sweep_metrics_cache.clear()


def get_dataset(name: str, config: ExperimentConfig):
    """Build (or fetch) one of the two evaluation datasets."""
    key = (name, config)
    if key not in _dataset_cache:
        if name == "astronomy":
            _dataset_cache[key] = make_astronomy(
                n=config.astronomy_n, seed=config.seed
            )
        elif name == "image":
            _dataset_cache[key] = make_image_histograms(
                n=config.image_n, seed=config.seed + 1
            )
        else:
            raise ValueError(f"unknown dataset {name!r}")
    return _dataset_cache[key]


def dataset_k(name: str, config: ExperimentConfig) -> int:
    """The k used for this dataset's k-NN workload (paper Sec. 6)."""
    return config.astronomy_k if name == "astronomy" else config.image_k


def build_database(name: str, access: str, config: ExperimentConfig) -> Database:
    """Construct a database over one evaluation dataset."""
    return Database(get_dataset(name, config), access=access)


def workload_queries(
    name: str, config: ExperimentConfig, n_queries: int | None = None
) -> list[int]:
    """The M query-object indices for a dataset's workload.

    Astronomy: independent random database objects (the simultaneous
    classification scenario).  Image: *dependent* queries -- a breadth-
    first expansion over k-NN answers starting from one random object,
    modelling the manual-exploration scenario where new query objects
    are answers of previous queries.
    """
    dataset = get_dataset(name, config)
    if n_queries is None:
        n_queries = config.n_queries
    if name == "astronomy":
        return sample_database_queries(dataset, n_queries, seed=config.seed)
    return _dependent_queries(
        dataset, n_queries, dataset_k(name, config), seed=config.seed
    )


def _dependent_queries(dataset, n_queries: int, k: int, seed: int) -> list[int]:
    """Exploration-style query chain: answers of previous queries."""
    rng = np.random.default_rng(seed)
    database = Database(dataset, access="scan", buffer_fraction=0.0)
    start = int(rng.integers(0, len(dataset)))
    queue = [start]
    seen = {start}
    selected: list[int] = []
    while queue and len(selected) < n_queries:
        current = queue.pop(0)
        selected.append(current)
        answers = database.similarity_query(dataset[current], knn_query(k))
        fresh = [a.index for a in answers if a.index not in seen]
        rng.shuffle(fresh)
        for index in fresh:
            seen.add(index)
            queue.append(index)
    while len(selected) < n_queries:
        extra = int(rng.integers(0, len(dataset)))
        if extra not in seen:
            seen.add(extra)
            selected.append(extra)
    return selected


@dataclass(frozen=True)
class CostPoint:
    """Average modelled cost per query at one sweep point."""

    m: int
    io_seconds: float
    cpu_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.io_seconds + self.cpu_seconds


def sweep(name: str, access: str, config: ExperimentConfig) -> dict[int, CostPoint]:
    """Average per-query cost over the m sweep for one dataset/access.

    Results are cached per configuration; Figures 7-10 all read from the
    same sweep.
    """
    key = (name, access, config)
    if key in _sweep_cache:
        return _sweep_cache[key]
    database = build_database(name, access, config)
    query_indices = workload_queries(name, config)
    queries = [database.dataset[i] for i in query_indices]
    qtype = knn_query(dataset_k(name, config))
    warm = access != "scan"
    points: dict[int, CostPoint] = {}
    sidecar: dict[int, dict] = {}
    for m in config.m_values:
        database.cold()
        with database.measure() as handle:
            database.run_in_blocks(
                queries,
                qtype,
                block_size=m,
                db_indices=query_indices,
                warm_start=warm,
            )
        n = len(queries)
        points[m] = CostPoint(
            m=m,
            io_seconds=handle.io_seconds / n,
            cpu_seconds=handle.cpu_seconds / n,
        )
        counters = handle.counters
        sidecar[m] = {
            "m": m,
            "io_seconds_per_query": points[m].io_seconds,
            "cpu_seconds_per_query": points[m].cpu_seconds,
            "page_reads": counters.page_reads,
            "buffer_hits": counters.buffer_hits,
            "distance_calculations": counters.distance_calculations,
            "avoided_calculations": counters.avoided_calculations,
            "avoidance_tries": counters.avoidance_tries,
            "queries_completed": counters.queries_completed,
            "sharing_factor": counters.sharing_factor,
            "avoidance_hit_rate": counters.avoidance_hit_rate,
        }
    _sweep_cache[key] = points
    _sweep_metrics_cache[key] = sidecar
    return points


def sweep_metrics(name: str, access: str, config: ExperimentConfig) -> dict[int, dict]:
    """Per-point metrics sidecar of one figure sweep.

    For every block size m of :func:`sweep`, the Sec. 5.1/5.2
    effectiveness metrics measured over the whole M-query workload:
    sharing factor (queries completed per physical page read), avoidance
    hit-rate, and the raw counter totals they derive from.  Computed
    alongside the sweep and cached with it; ``run_all --metrics-out``
    writes the union for all figure sweeps as one JSON file.
    """
    key = (name, access, config)
    if key not in _sweep_metrics_cache:
        sweep(name, access, config)
    return _sweep_metrics_cache[key]
