"""Result containers and text rendering for the evaluation harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class Series:
    """One plotted line: a label and y values over the shared x axis."""

    label: str
    values: list[float]


@dataclass
class FigureResult:
    """A reproduced figure: series over an x axis, plus paper context.

    ``paper_notes`` records what the paper reports for this figure so
    that EXPERIMENTS.md can show paper-vs-measured side by side.
    """

    figure_id: str
    title: str
    x_label: str
    x_values: Sequence[float | int]
    y_label: str
    series: list[Series] = field(default_factory=list)
    paper_notes: list[str] = field(default_factory=list)
    measured_notes: list[str] = field(default_factory=list)

    def series_by_label(self, label: str) -> Series:
        """Look up one series by its label."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)

    def render(self) -> str:
        """Render the figure as an aligned text table."""
        label_width = max(
            [len("x=" + self.x_label)] + [len(s.label) for s in self.series]
        )
        header = f"{self.figure_id}: {self.title}"
        lines = [header, "-" * len(header)]
        x_cells = "".join(f"{x!s:>12}" for x in self.x_values)
        lines.append(f"{'x=' + self.x_label:<{label_width}}{x_cells}")
        for s in self.series:
            cells = "".join(_format_value(v) for v in s.values)
            lines.append(f"{s.label:<{label_width}}{cells}")
        lines.append(f"(y: {self.y_label})")
        for note in self.paper_notes:
            lines.append(f"paper:    {note}")
        for note in self.measured_notes:
            lines.append(f"measured: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render the figure as a GitHub-flavoured markdown section."""
        lines = [f"### {self.figure_id}: {self.title}", ""]
        header = [self.x_label] + [str(x) for x in self.x_values]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for s in self.series:
            row = [s.label] + [_format_value(v).strip() for v in s.values]
            lines.append("| " + " | ".join(row) + " |")
        lines.append("")
        lines.append(f"*y axis: {self.y_label}*")
        lines.append("")
        if self.paper_notes:
            lines.append("**Paper reports:**")
            lines.extend(f"- {note}" for note in self.paper_notes)
            lines.append("")
        if self.measured_notes:
            lines.append("**Measured here:**")
            lines.extend(f"- {note}" for note in self.measured_notes)
            lines.append("")
        return "\n".join(lines)


def _format_value(value: float) -> str:
    if value == 0:
        return f"{'0':>12}"
    if abs(value) >= 1000:
        return f"{value:>12.0f}"
    if abs(value) >= 1:
        return f"{value:>12.2f}"
    return f"{value:>12.4f}"
