"""Experiment configuration (sizes, sweep points, seeds)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of the evaluation harness.

    The defaults scale the paper's datasets down (1 M -> 40 k stars,
    112 k -> 12 k images) so the whole suite runs in minutes; every
    qualitative relationship of Sec. 6 is preserved (see EXPERIMENTS.md
    for the measured numbers at these sizes).  ``small()`` is a preset
    for unit tests.

    Attributes
    ----------
    astronomy_n, astronomy_k:
        Size of the astronomy stand-in and the k of its k-NN workload
        (paper: k = 10).
    image_n, image_k:
        Size of the image stand-in and its k (paper: k = 20).
    n_queries:
        Workload size M; processed in M/m blocks.
    m_values:
        Sweep points for the number of multiple queries (paper Fig. 7-10
        measure m in {1, 10, 20, 40, 50, 100}).
    server_counts:
        Sweep points for the parallel experiments (paper: 1, 4, 8, 16).
    parallel_base_m:
        Block size on one server; the parallel runs use
        ``parallel_base_m * s`` queries (Sec. 6.4).  The paper used 100
        at 1,000,000 objects; scaled to the reduced database sizes here
        (the O(m^2) query-distance matrix is a fixed cost per block, so
        keeping the paper's absolute m at 1/25 of its database size
        would let the matrix dominate everything).
    seed:
        Master seed for datasets and query sampling.
    """

    astronomy_n: int = 40_000
    astronomy_k: int = 10
    image_n: int = 12_000
    image_k: int = 20
    n_queries: int = 100
    m_values: tuple[int, ...] = (1, 10, 20, 40, 50, 100)
    server_counts: tuple[int, ...] = (1, 4, 8, 16)
    parallel_base_m: int = 50
    k_values: tuple[int, ...] = (1, 5, 10, 20, 50)
    seed: int = 0

    @classmethod
    def default(cls) -> "ExperimentConfig":
        """The benchmark-scale configuration."""
        return cls()

    @classmethod
    def small(cls) -> "ExperimentConfig":
        """A seconds-scale configuration for unit tests."""
        return cls(
            astronomy_n=4_000,
            image_n=2_000,
            n_queries=20,
            m_values=(1, 5, 20),
            server_counts=(1, 2, 4),
            parallel_base_m=10,
            k_values=(1, 5, 10),
        )
