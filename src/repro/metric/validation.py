"""Sampled validation of the metric axioms (Sec. 2 of the paper).

The correctness of the triangle-inequality avoidance (Lemmas 1 and 2)
depends on ``dist`` being a true metric.  :func:`check_metric_axioms`
verifies identity, symmetry and the triangle inequality on sampled
object pairs/triples and raises :class:`MetricViolation` on failure.
It is used by the test suite and available to users who plug in custom
distance functions.
"""

from __future__ import annotations

import itertools
import random
from typing import Any, Sequence

from repro.metric.distances import DistanceFunction, get_distance


class MetricViolation(AssertionError):
    """Raised when a sampled check of the metric axioms fails."""


def check_metric_axioms(
    distance: str | DistanceFunction,
    objects: Sequence[Any],
    max_triples: int = 500,
    rtol: float = 1e-9,
    atol: float = 1e-7,
    seed: int = 0,
) -> None:
    """Verify the metric axioms on samples drawn from ``objects``.

    Checks, for sampled pairs and triples:

    1. non-negativity and ``d(a, a) == 0`` (identity, one direction);
    2. symmetry ``d(a, b) == d(b, a)``;
    3. the triangle inequality ``d(a, c) <= d(a, b) + d(b, c)``.

    The identity direction ``d(a, b) == 0 => a == b`` is not sampled
    because synthetic datasets may legitimately contain duplicates.

    Raises
    ------
    MetricViolation
        With a message naming the violated axiom and the witnesses.
    """
    dist = get_distance(distance)
    objects = list(objects)
    if len(objects) < 2:
        return
    rng = random.Random(seed)

    n_pairs = min(max_triples, len(objects) * (len(objects) - 1) // 2)
    for _ in range(n_pairs):
        a, b = rng.sample(range(len(objects)), 2)
        d_ab = dist.one(objects[a], objects[b])
        d_ba = dist.one(objects[b], objects[a])
        if d_ab < 0 or d_ba < 0:
            raise MetricViolation(f"negative distance for pair ({a}, {b})")
        tolerance = rtol * max(1.0, abs(d_ab))
        if abs(d_ab - d_ba) > tolerance:
            raise MetricViolation(
                f"symmetry violated for pair ({a}, {b}): {d_ab} != {d_ba}"
            )

    for i in rng.sample(range(len(objects)), min(len(objects), 50)):
        d_ii = dist.one(objects[i], objects[i])
        # ``atol`` absorbs float round-off such as arccos near 1.
        if abs(d_ii) > atol:
            raise MetricViolation(f"d(o, o) != 0 for object {i}: {d_ii}")

    if len(objects) < 3:
        return
    triples: list[tuple[int, int, int]] = []
    if len(objects) <= 12:
        triples = list(itertools.combinations(range(len(objects)), 3))
    else:
        seen: set[tuple[int, int, int]] = set()
        while len(seen) < max_triples:
            triple = tuple(sorted(rng.sample(range(len(objects)), 3)))
            seen.add(triple)  # type: ignore[arg-type]
        triples = sorted(seen)
    for a, b, c in triples:
        d_ab = dist.one(objects[a], objects[b])
        d_bc = dist.one(objects[b], objects[c])
        d_ac = dist.one(objects[a], objects[c])
        slack = rtol * max(1.0, d_ab + d_bc)
        if d_ac > d_ab + d_bc + slack:
            raise MetricViolation(
                "triangle inequality violated for "
                f"({a}, {b}, {c}): {d_ac} > {d_ab} + {d_bc}"
            )
