"""Metric distance functions.

Every distance function implements :class:`DistanceFunction`:

* ``one(a, b)`` -- distance between two objects;
* ``many(xs, q)`` -- distances from a batch of objects to one query object
  (vectorised with numpy where the objects are vectors);
* ``cross(xs, qs)`` -- the full ``(n, m)`` cross-distance matrix between a
  batch of objects and a batch of query objects, evaluated in one fused
  kernel (a single GEMM-based expansion for the inner-product family,
  one broadcast kernel for the other Lp metrics, and an object-at-a-time
  fallback for non-vector metrics);
* optionally ``mbr_mindist(lo, hi, q)`` -- a lower bound of the distance
  between ``q`` and any point inside the axis-aligned box ``[lo, hi]``,
  required by R-tree-family indexes.

Instances are stateless and reusable across databases.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np


class DistanceFunction:
    """Base class for metric distance functions.

    Subclasses must implement :meth:`one`; :meth:`many` has a generic
    object-at-a-time fallback that vector metrics override with numpy
    batch evaluation.
    """

    #: Human-readable name used in reports.
    name: str = "abstract"

    #: Whether the metric operates on numeric vectors (enables the
    #: vectorised query engine and R-tree-family indexes).
    is_vector_metric: bool = False

    def one(self, a: Any, b: Any) -> float:
        """Return the distance between objects ``a`` and ``b``."""
        raise NotImplementedError

    def many(self, xs: Any, q: Any) -> np.ndarray:
        """Return distances from each object in ``xs`` to ``q``."""
        return np.array([self.one(x, q) for x in xs], dtype=float)

    def cross(self, xs: Any, qs: Any) -> np.ndarray:
        """Return the ``(n, m)`` distance matrix between ``xs`` and ``qs``.

        The generic fallback evaluates one :meth:`many` column per query
        object, which works for arbitrary (non-vector) objects; vector
        metrics override it with a single fused kernel.
        """
        n = len(xs)
        m = len(qs)
        if n == 0 or m == 0:
            return np.empty((n, m), dtype=float)
        return np.stack([self.many(xs, q) for q in qs], axis=1)

    def supports_mbr(self) -> bool:
        """Whether :meth:`mbr_mindist` is available for this metric."""
        return False

    def mbr_mindist(self, lo: np.ndarray, hi: np.ndarray, q: np.ndarray) -> float:
        """Lower-bound distance from ``q`` to the box ``[lo, hi]``."""
        raise NotImplementedError(f"{self.name} has no MBR lower bound")

    def mbr_mindist_many(
        self, lo: np.ndarray, hi: np.ndarray, queries: np.ndarray
    ) -> np.ndarray:
        """Lower-bound distances from each query point to ``[lo, hi]``.

        The generic fallback loops :meth:`mbr_mindist`; vector metrics
        override it with a batched implementation.
        """
        return np.array([self.mbr_mindist(lo, hi, q) for q in queries], dtype=float)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _clip_outside(lo: np.ndarray, hi: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Per-dimension gap between ``q`` and the box ``[lo, hi]`` (0 inside)."""
    return np.maximum(np.maximum(lo - q, q - hi), 0.0)


def _gemm_sq_cross(
    xs: np.ndarray, qs: np.ndarray, sq_x: np.ndarray, sq_q: np.ndarray
) -> np.ndarray:
    """Squared cross distances via the ``|x|^2 + |q|^2 - 2 x.q`` expansion.

    ``xs @ qs.T`` is the single GEMM carrying all ``n * m`` interactions;
    ``sq_x`` / ``sq_q`` are the per-row squared norms under the metric's
    inner product.  Clipped at zero against cancellation for near-equal
    pairs.  The GEMM output buffer is updated in place: the follow-up
    passes are memory-bound, so avoiding the three broadcast temporaries
    roughly halves the kernel time at page scale.
    """
    sq = xs @ qs.T
    sq *= -2.0
    sq += sq_x[:, None]
    sq += sq_q
    return np.maximum(sq, 0.0, out=sq)


def _abs_diff_cross(xs: np.ndarray, qs: np.ndarray) -> np.ndarray:
    """Broadcast ``(n, m, d)`` kernel of |x - q| for the Lp family."""
    return np.abs(xs[:, None, :] - qs[None, :, :])


class EuclideanDistance(DistanceFunction):
    """The Euclidean (L2) distance, the paper's primary metric."""

    name = "euclidean"
    is_vector_metric = True

    def one(self, a: Any, b: Any) -> float:
        diff = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
        return float(np.sqrt(np.dot(diff, diff)))

    def many(self, xs: Any, q: Any) -> np.ndarray:
        diff = np.asarray(xs, dtype=float) - np.asarray(q, dtype=float)
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def cross(self, xs: Any, qs: Any) -> np.ndarray:
        xs = np.asarray(xs, dtype=float)
        qs = np.asarray(qs, dtype=float)
        sq_x = np.einsum("ij,ij->i", xs, xs)
        sq_q = np.einsum("ij,ij->i", qs, qs)
        sq = _gemm_sq_cross(xs, qs, sq_x, sq_q)
        return np.sqrt(sq, out=sq)

    def supports_mbr(self) -> bool:
        return True

    def mbr_mindist(self, lo: np.ndarray, hi: np.ndarray, q: np.ndarray) -> float:
        gap = _clip_outside(lo, hi, q)
        return float(np.sqrt(np.dot(gap, gap)))

    def mbr_mindist_many(
        self, lo: np.ndarray, hi: np.ndarray, queries: np.ndarray
    ) -> np.ndarray:
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        gap = np.maximum(np.maximum(lo - queries, queries - hi), 0.0)
        return np.sqrt(np.einsum("ij,ij->i", gap, gap))


class WeightedEuclideanDistance(DistanceFunction):
    """Euclidean distance with non-negative per-dimension weights."""

    name = "weighted_euclidean"
    is_vector_metric = True

    def __init__(self, weights: Sequence[float]):
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 1:
            raise ValueError("weights must be one-dimensional")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        self.weights = weights

    def one(self, a: Any, b: Any) -> float:
        diff = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
        return float(np.sqrt(np.dot(self.weights * diff, diff)))

    def many(self, xs: Any, q: Any) -> np.ndarray:
        diff = np.asarray(xs, dtype=float) - np.asarray(q, dtype=float)
        return np.sqrt(np.einsum("ij,j,ij->i", diff, self.weights, diff))

    def cross(self, xs: Any, qs: Any) -> np.ndarray:
        xs = np.asarray(xs, dtype=float)
        qs = np.asarray(qs, dtype=float)
        xw = xs * self.weights
        sq_x = np.einsum("ij,ij->i", xw, xs)
        sq_q = np.einsum("ij,j,ij->i", qs, self.weights, qs)
        sq = _gemm_sq_cross(xw, qs, sq_x, sq_q)
        return np.sqrt(sq, out=sq)

    def supports_mbr(self) -> bool:
        return True

    def mbr_mindist(self, lo: np.ndarray, hi: np.ndarray, q: np.ndarray) -> float:
        gap = _clip_outside(lo, hi, q)
        return float(np.sqrt(np.dot(self.weights * gap, gap)))

    def __repr__(self) -> str:
        return f"WeightedEuclideanDistance(dim={len(self.weights)})"


class QuadraticFormDistance(DistanceFunction):
    """Quadratic-form distance ``sqrt((a-b)^T A (a-b))``.

    With a symmetric positive-semi-definite matrix ``A`` this is the
    distance the paper cites for colour-histogram similarity ([21],
    Seidl & Kriegel).  A valid MBR lower bound is derived by scaling the
    Euclidean MINDIST with the square root of the smallest eigenvalue of
    ``A`` (the quadratic form is bounded below by ``lambda_min * |x|^2``).
    """

    name = "quadratic_form"
    is_vector_metric = True

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("matrix must be square")
        if not np.allclose(matrix, matrix.T, atol=1e-10):
            raise ValueError("matrix must be symmetric")
        eigvals = np.linalg.eigvalsh(matrix)
        if eigvals[0] < -1e-10:
            raise ValueError("matrix must be positive semi-definite")
        self.matrix = matrix
        self._lambda_min_sqrt = float(np.sqrt(max(eigvals[0], 0.0)))
        self._euclidean = EuclideanDistance()

    @classmethod
    def color_histogram(cls, dim: int, decay: float = 2.0) -> "QuadraticFormDistance":
        """Build the classic colour-histogram similarity matrix.

        ``A[i, j] = exp(-decay * |i - j| / dim)`` expresses that nearby
        histogram bins (similar colours) partially match.
        """
        idx = np.arange(dim)
        matrix = np.exp(-decay * np.abs(idx[:, None] - idx[None, :]) / dim)
        return cls(matrix)

    def one(self, a: Any, b: Any) -> float:
        diff = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
        value = float(diff @ self.matrix @ diff)
        return float(np.sqrt(max(value, 0.0)))

    def many(self, xs: Any, q: Any) -> np.ndarray:
        diff = np.asarray(xs, dtype=float) - np.asarray(q, dtype=float)
        values = np.einsum("ij,jk,ik->i", diff, self.matrix, diff)
        return np.sqrt(np.maximum(values, 0.0))

    def cross(self, xs: Any, qs: Any) -> np.ndarray:
        xs = np.asarray(xs, dtype=float)
        qs = np.asarray(qs, dtype=float)
        xa = xs @ self.matrix
        sq_x = np.einsum("ij,ij->i", xa, xs)
        sq_q = np.einsum("ij,jk,ik->i", qs, self.matrix, qs)
        sq = _gemm_sq_cross(xa, qs, sq_x, sq_q)
        return np.sqrt(sq, out=sq)

    def supports_mbr(self) -> bool:
        return self._lambda_min_sqrt > 0.0

    def mbr_mindist(self, lo: np.ndarray, hi: np.ndarray, q: np.ndarray) -> float:
        euclid = self._euclidean.mbr_mindist(lo, hi, q)
        return self._lambda_min_sqrt * euclid

    def __repr__(self) -> str:
        return f"QuadraticFormDistance(dim={self.matrix.shape[0]})"


class ManhattanDistance(DistanceFunction):
    """The Manhattan (L1) distance."""

    name = "manhattan"
    is_vector_metric = True

    def one(self, a: Any, b: Any) -> float:
        diff = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
        return float(np.sum(np.abs(diff)))

    def many(self, xs: Any, q: Any) -> np.ndarray:
        diff = np.asarray(xs, dtype=float) - np.asarray(q, dtype=float)
        return np.sum(np.abs(diff), axis=1)

    def cross(self, xs: Any, qs: Any) -> np.ndarray:
        diff = _abs_diff_cross(
            np.asarray(xs, dtype=float), np.asarray(qs, dtype=float)
        )
        return np.sum(diff, axis=-1)

    def supports_mbr(self) -> bool:
        return True

    def mbr_mindist(self, lo: np.ndarray, hi: np.ndarray, q: np.ndarray) -> float:
        return float(np.sum(_clip_outside(lo, hi, q)))


class ChebyshevDistance(DistanceFunction):
    """The Chebyshev (L-infinity) distance."""

    name = "chebyshev"
    is_vector_metric = True

    def one(self, a: Any, b: Any) -> float:
        diff = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
        return float(np.max(np.abs(diff))) if diff.size else 0.0

    def many(self, xs: Any, q: Any) -> np.ndarray:
        diff = np.asarray(xs, dtype=float) - np.asarray(q, dtype=float)
        return np.max(np.abs(diff), axis=1)

    def cross(self, xs: Any, qs: Any) -> np.ndarray:
        xs = np.asarray(xs, dtype=float)
        qs = np.asarray(qs, dtype=float)
        if xs.shape[1] == 0:
            return np.zeros((xs.shape[0], qs.shape[0]), dtype=float)
        return np.max(_abs_diff_cross(xs, qs), axis=-1)

    def supports_mbr(self) -> bool:
        return True

    def mbr_mindist(self, lo: np.ndarray, hi: np.ndarray, q: np.ndarray) -> float:
        gap = _clip_outside(lo, hi, q)
        return float(np.max(gap)) if gap.size else 0.0


class MinkowskiDistance(DistanceFunction):
    """The Minkowski (Lp) distance for ``p >= 1``."""

    name = "minkowski"
    is_vector_metric = True

    def __init__(self, p: float):
        if p < 1:
            raise ValueError("Minkowski distance requires p >= 1")
        self.p = float(p)

    def one(self, a: Any, b: Any) -> float:
        diff = np.abs(np.asarray(a, dtype=float) - np.asarray(b, dtype=float))
        return float(np.sum(diff**self.p) ** (1.0 / self.p))

    def many(self, xs: Any, q: Any) -> np.ndarray:
        diff = np.abs(np.asarray(xs, dtype=float) - np.asarray(q, dtype=float))
        return np.sum(diff**self.p, axis=1) ** (1.0 / self.p)

    def cross(self, xs: Any, qs: Any) -> np.ndarray:
        diff = _abs_diff_cross(
            np.asarray(xs, dtype=float), np.asarray(qs, dtype=float)
        )
        return np.sum(diff**self.p, axis=-1) ** (1.0 / self.p)

    def supports_mbr(self) -> bool:
        return True

    def mbr_mindist(self, lo: np.ndarray, hi: np.ndarray, q: np.ndarray) -> float:
        gap = _clip_outside(lo, hi, q)
        return float(np.sum(gap**self.p) ** (1.0 / self.p))

    def __repr__(self) -> str:
        return f"MinkowskiDistance(p={self.p})"


class CosineAngularDistance(DistanceFunction):
    """Angular distance ``arccos(cos_similarity)``, a metric on the sphere.

    Unlike raw cosine *dissimilarity* (which violates the triangle
    inequality), the angle between vectors is a true metric for non-zero
    vectors.
    """

    name = "cosine_angular"
    is_vector_metric = True

    def one(self, a: Any, b: Any) -> float:
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        norm = np.linalg.norm(a) * np.linalg.norm(b)
        if norm == 0.0:
            return 0.0 if np.array_equal(a, b) else float(np.pi)
        cos = np.clip(np.dot(a, b) / norm, -1.0, 1.0)
        return float(np.arccos(cos))

    def many(self, xs: Any, q: Any) -> np.ndarray:
        xs = np.asarray(xs, dtype=float)
        q = np.asarray(q, dtype=float)
        norms = np.linalg.norm(xs, axis=1) * np.linalg.norm(q)
        dots = xs @ q
        with np.errstate(divide="ignore", invalid="ignore"):
            cos = np.where(norms > 0, dots / np.where(norms > 0, norms, 1.0), 1.0)
        zero_rows = norms == 0
        if np.any(zero_rows):
            same = np.all(xs == q, axis=1)
            cos = np.where(zero_rows & ~same, -1.0, cos)
        return np.arccos(np.clip(cos, -1.0, 1.0))

    def cross(self, xs: Any, qs: Any) -> np.ndarray:
        xs = np.asarray(xs, dtype=float)
        qs = np.asarray(qs, dtype=float)
        norm_x = np.linalg.norm(xs, axis=1)
        norm_q = np.linalg.norm(qs, axis=1)
        unit_x = xs / np.where(norm_x > 0, norm_x, 1.0)[:, None]
        unit_q = qs / np.where(norm_q > 0, norm_q, 1.0)[:, None]
        cos = unit_x @ unit_q.T
        zero = (norm_x == 0)[:, None] | (norm_q == 0)[None, :]
        if np.any(zero):
            same = np.all(xs[:, None, :] == qs[None, :, :], axis=-1)
            cos = np.where(zero, np.where(same, 1.0, -1.0), cos)
        return np.arccos(np.clip(cos, -1.0, 1.0))


class LevenshteinDistance(DistanceFunction):
    """Edit distance on strings, the paper's non-vector metric example.

    Supports the WWW-session scenario of Sec. 2: objects such as URL
    paths are not vectors, but edit distance is a metric over them, so a
    metric index (M-tree) and the multiple-query machinery both apply.
    """

    name = "levenshtein"
    is_vector_metric = False

    def one(self, a: Any, b: Any) -> float:
        s, t = str(a), str(b)
        if s == t:
            return 0.0
        if not s:
            return float(len(t))
        if not t:
            return float(len(s))
        previous = list(range(len(t) + 1))
        for i, cs in enumerate(s, start=1):
            current = [i]
            for j, ct in enumerate(t, start=1):
                cost = 0 if cs == ct else 1
                current.append(
                    min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
                )
            previous = current
        return float(previous[-1])


_REGISTRY = {
    "euclidean": EuclideanDistance,
    "manhattan": ManhattanDistance,
    "chebyshev": ChebyshevDistance,
    "cosine_angular": CosineAngularDistance,
    "levenshtein": LevenshteinDistance,
}


def get_distance(name: str | DistanceFunction, **kwargs: Any) -> DistanceFunction:
    """Resolve a distance function by name or pass an instance through.

    >>> get_distance("euclidean").name
    'euclidean'
    """
    if isinstance(name, DistanceFunction):
        return name
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown distance {name!r}; known: {known}") from None
    return factory(**kwargs)
