"""Metric-space substrate: distance functions and instrumented spaces.

A metric database (Sec. 2 of the paper) is a database with a metric
distance function over pairs of objects.  This package supplies the
distance functions used in the evaluation (Euclidean on feature vectors,
quadratic-form on colour histograms) plus further metrics for the general
metric case (edit distance on strings), and :class:`MetricSpace`, the
counting wrapper through which all query engines evaluate distances.
"""

from repro.metric.distances import (
    ChebyshevDistance,
    CosineAngularDistance,
    DistanceFunction,
    EuclideanDistance,
    LevenshteinDistance,
    ManhattanDistance,
    MinkowskiDistance,
    QuadraticFormDistance,
    WeightedEuclideanDistance,
    get_distance,
)
from repro.metric.space import MetricSpace
from repro.metric.validation import MetricViolation, check_metric_axioms

__all__ = [
    "ChebyshevDistance",
    "CosineAngularDistance",
    "DistanceFunction",
    "EuclideanDistance",
    "LevenshteinDistance",
    "ManhattanDistance",
    "MetricSpace",
    "MetricViolation",
    "MinkowskiDistance",
    "QuadraticFormDistance",
    "WeightedEuclideanDistance",
    "check_metric_axioms",
    "get_distance",
]
