"""Instrumented metric space: every distance evaluation is counted."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.costmodel import Counters
from repro.metric.distances import DistanceFunction, get_distance


class MetricSpace:
    """A distance function bound to a shared :class:`Counters` instance.

    All query engines evaluate distances exclusively through this wrapper,
    which makes the CPU-cost accounting of the paper (number of distance
    calculations, Sec. 5.2) a by-product of running any query.

    Parameters
    ----------
    distance:
        A :class:`DistanceFunction` or a registry name such as
        ``"euclidean"``.
    counters:
        Counter sink; a fresh one is created when omitted.
    """

    def __init__(
        self,
        distance: str | DistanceFunction = "euclidean",
        counters: Counters | None = None,
    ):
        self.distance = get_distance(distance)
        self.counters = counters if counters is not None else Counters()

    @property
    def is_vector_metric(self) -> bool:
        """Whether the underlying metric operates on numeric vectors."""
        return self.distance.is_vector_metric

    def d(self, a: Any, b: Any) -> float:
        """Distance between two objects; counts one distance calculation."""
        self.counters.distance_calculations += 1
        return self.distance.one(a, b)

    def d_many(self, xs: Any, q: Any) -> np.ndarray:
        """Distances from a batch of objects to ``q``; counts ``len(xs)``."""
        n = len(xs)
        self.counters.distance_calculations += n
        if n == 0:
            return np.empty(0, dtype=float)
        return self.distance.many(xs, q)

    def cross_many(self, xs: Any, qs: Any) -> np.ndarray:
        """Cross-distance matrix ``(len(xs), len(qs))``; counts ``n * m``.

        One fused kernel evaluates every (object, query) pair.  The
        batched page engine afterwards *refunds* the calculations the
        reference engine would have avoided via the triangle inequality,
        so the net counter values stay identical across engines.
        """
        n = len(xs)
        m = len(qs)
        self.counters.distance_calculations += n * m
        if n == 0 or m == 0:
            return np.empty((n, m), dtype=float)
        return self.distance.cross(xs, qs)

    def d_query_pair(self, a: Any, b: Any) -> float:
        """Distance between two *query* objects (matrix initialisation).

        Counted separately because the paper's CPU cost formula charges
        the ``(m-1) * m / 2`` pairwise query distances as overhead.
        """
        self.counters.query_matrix_distance_calculations += 1
        return self.distance.one(a, b)

    def mbr_mindist(self, lo: np.ndarray, hi: np.ndarray, q: np.ndarray) -> float:
        """Lower-bound distance from ``q`` to a bounding box; counted."""
        self.counters.mindist_evaluations += 1
        return self.distance.mbr_mindist(lo, hi, q)

    def uncounted(self, a: Any, b: Any) -> float:
        """Distance evaluation outside any measured query (e.g. checks)."""
        return self.distance.one(a, b)

    def uncounted_cross(self, xs: Any, qs: Any) -> np.ndarray:
        """Cross-distance matrix outside any measured query.

        Planning work (e.g. the optimizer's affinity partitioning) that
        must not show up in the query cost counters, in one fused
        kernel instead of ``len(xs) * len(qs)`` Python calls.
        """
        if len(xs) == 0 or len(qs) == 0:
            return np.empty((len(xs), len(qs)), dtype=float)
        return self.distance.cross(xs, qs)

    def __repr__(self) -> str:
        return f"MetricSpace({self.distance!r})"
