"""Asyncio socket front-end over the :class:`QueryScheduler`.

The server is the thin network face of the service pipeline: it speaks
the length-prefixed JSON protocol of :mod:`repro.net.protocol`, admits
queries into one shared :class:`~repro.service.QueryScheduler`, and
delivers tickets back to their connections the moment a flushed block
fills them.  All protocol and scheduler work runs on one event loop, so
the scheduler keeps its deterministic single-threaded semantics and the
answers that cross the wire are byte-identical to the in-process path.

Admission control happens *before* the scheduler sees a query:

* per-client bound -- a connection may have at most ``max_inflight``
  unanswered submits; beyond that the server sheds;
* global bound -- once the scheduler's admission queue reaches
  ``shed_depth`` waiting tickets, new submits are shed instead of
  forcing synchronous flush work onto the submitting client.

Shedding is always explicit: the client receives a ``shed`` frame
carrying the live queue depth, never a silent drop.  Degraded tickets
(faults that exhausted recovery) are delivered, not dropped: their
Def. 4 partial answers stream to the client together with the
completeness bound.

Time: the scheduler's logical tick clock advances on every submit as
usual; a *pump* task additionally polls it every ``poll_interval``
wall-clock seconds so the deadline rule fires for idle periods.  Pass
``poll_interval=0`` to disable the pump -- scheduling then depends only
on the request sequence, which makes a served trace reproduce the
in-process flush grouping exactly (the configuration the CI
byte-identity check runs).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    ERR_BAD_HANDSHAKE,
    ERR_BAD_QUERY,
    ERR_BAD_TYPE,
    ERR_BAD_VERSION,
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolError,
    answers_to_wire,
    encode_frame,
    qtype_from_wire,
    query_from_wire,
)
from repro.service.scheduler import QueryScheduler, Ticket


@dataclass
class _Pending:
    """One unanswered submit of one connection."""

    request_id: int
    ticket: Ticket
    stream: bool
    dropped: bool = False


@dataclass(eq=False)
class _Connection:
    """Per-connection state: handshake, decoder, pending submits."""

    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    decoder: FrameDecoder
    name: str
    hello_done: bool = False
    closed: bool = False
    pending: dict[int, _Pending] = field(default_factory=dict)


class QueryServer:
    """Length-prefixed JSON front-end over one scheduler.

    Parameters
    ----------
    scheduler:
        The :class:`~repro.service.QueryScheduler` to serve.  Its
        database, observer and fault plan are used as configured.
    host, port:
        Listen address; ``port=0`` picks a free port (see
        :attr:`address` after :meth:`start`).
    max_inflight:
        Per-connection bound on unanswered submits before shedding.
    shed_depth:
        Global admission bound: submits arriving while the scheduler
        queue holds this many tickets are shed.  Defaults to the
        scheduler's own ``max_queue`` pressure bound.
    poll_interval:
        Wall-clock seconds between idle scheduler polls (the deadline
        clock); ``0`` disables the pump for request-driven determinism.
    max_frame:
        Frame size cap handed to every connection's decoder.
    """

    def __init__(
        self,
        scheduler: QueryScheduler,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        shed_depth: int | None = None,
        poll_interval: float = 0.05,
        max_frame: int = DEFAULT_MAX_FRAME,
        name: str = "repro",
    ) -> None:
        if max_inflight < 1:
            raise ValueError("per-client inflight bound must be positive")
        self.scheduler = scheduler
        self.observer = scheduler.observer
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.shed_depth = (
            shed_depth if shed_depth is not None else scheduler.max_queue
        )
        self.poll_interval = poll_interval
        self.max_frame = max_frame
        self.name = name
        self.n_sheds = 0
        self.n_errors = 0
        self.n_results = 0
        self.n_degraded_results = 0
        self._connections: set[_Connection] = set()
        self._conn_serial = 0
        self._server: asyncio.base_events.Server | None = None
        self._pump_task: asyncio.Task[None] | None = None
        self._closing = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """Bound ``(host, port)`` once :meth:`start` has run."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not listening")
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound address."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        if self.poll_interval > 0:
            self._pump_task = asyncio.create_task(self._pump())
        return self.address

    async def serve_until_shutdown(self) -> None:
        """Block until :meth:`request_shutdown` fires, then drain."""
        await self._closing.wait()
        await self.shutdown()

    def request_shutdown(self) -> None:
        """Signal-safe shutdown trigger (call from a signal handler)."""
        self._closing.set()

    async def shutdown(self) -> None:
        """Stop accepting, drain the scheduler, deliver, disconnect."""
        self._closing.set()
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.scheduler.drain()
        await self._deliver_completed()
        for conn in list(self._connections):
            await self._send(conn, {"type": "shutdown"})
            await self._close_connection(conn)

    async def _pump(self) -> None:
        """Advance the deadline clock while tickets are waiting."""
        while True:
            await asyncio.sleep(self.poll_interval)
            if self.scheduler.queue_depth:
                self.scheduler.poll()
                await self._deliver_completed()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conn_serial += 1
        conn = _Connection(
            reader=reader,
            writer=writer,
            decoder=FrameDecoder(self.max_frame),
            name=f"conn-{self._conn_serial}",
        )
        self._connections.add(conn)
        self._metric_inc("service.net.connections.opened")
        self._metric_gauge(
            "service.net.connections", float(len(self._connections))
        )
        try:
            while not conn.closed:
                data = await reader.read(65536)
                if not data:
                    break
                self._metric_inc("service.net.bytes.in", len(data))
                try:
                    messages = conn.decoder.feed(data)
                except ProtocolError as exc:
                    await self._send_error(conn, None, exc.code, str(exc))
                    if not exc.recoverable:
                        break
                    continue
                for message in messages:
                    self._metric_inc("service.net.frames.in")
                    await self._handle_message(conn, message)
                    if conn.closed:
                        break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            await self._close_connection(conn)

    async def _close_connection(self, conn: _Connection) -> None:
        if conn not in self._connections:
            return
        self._connections.discard(conn)
        conn.closed = True
        for pending in conn.pending.values():
            pending.dropped = True
        conn.pending.clear()
        self._metric_inc("service.net.connections.closed")
        self._metric_gauge(
            "service.net.connections", float(len(self._connections))
        )
        self._update_inflight_gauge()
        try:
            conn.writer.close()
            await conn.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    async def _handle_message(
        self, conn: _Connection, message: dict[str, Any]
    ) -> None:
        mtype = message.get("type")
        if not conn.hello_done:
            if mtype != "hello":
                await self._send_error(
                    conn,
                    message.get("id"),
                    ERR_BAD_HANDSHAKE,
                    "first frame must be 'hello'",
                )
                conn.closed = True
                return
            await self._handle_hello(conn, message)
            return
        if mtype == "submit":
            await self._handle_submit(conn, message)
        elif mtype == "stats":
            await self._send(conn, {"type": "stats", **self.stats()})
        elif mtype == "retire":
            await self._handle_retire(conn, message)
        elif mtype == "bye":
            self.scheduler.drain()
            await self._deliver_completed()
            await self._send(conn, {"type": "bye_ok"})
            conn.closed = True
        else:
            await self._send_error(
                conn,
                message.get("id"),
                ERR_BAD_TYPE,
                f"unknown message type {mtype!r}",
            )

    async def _handle_hello(
        self, conn: _Connection, message: dict[str, Any]
    ) -> None:
        if message.get("protocol") != PROTOCOL_VERSION:
            await self._send_error(
                conn,
                None,
                ERR_BAD_VERSION,
                f"server speaks protocol {PROTOCOL_VERSION}, "
                f"client offered {message.get('protocol')!r}",
            )
            conn.closed = True
            return
        client = message.get("client")
        if isinstance(client, str) and client:
            conn.name = client
        conn.hello_done = True
        database = self.scheduler.database
        await self._send(
            conn,
            {
                "type": "hello_ok",
                "protocol": PROTOCOL_VERSION,
                "server": self.name,
                "access": database.access_method.name,
                "max_inflight": self.max_inflight,
            },
        )
        if self.observer is not None:
            self.observer.event("net.connect", client=conn.name)

    async def _handle_submit(
        self, conn: _Connection, message: dict[str, Any]
    ) -> None:
        request_id = message.get("id")
        if not isinstance(request_id, int):
            await self._send_error(
                conn, None, ERR_BAD_QUERY, "submit needs an integer 'id'"
            )
            return
        if request_id in conn.pending:
            await self._send_error(
                conn,
                request_id,
                ERR_BAD_QUERY,
                f"request id {request_id} is already in flight",
            )
            return
        try:
            query = query_from_wire(message.get("query"))
            qtype = qtype_from_wire(message.get("qtype"))
        except ValueError as exc:
            await self._send_error(conn, request_id, ERR_BAD_QUERY, str(exc))
            return
        if len(conn.pending) >= self.max_inflight:
            await self._shed(conn, request_id, "client-inflight")
            return
        if self.scheduler.queue_depth >= self.shed_depth:
            await self._shed(conn, request_id, "queue-full")
            return
        db_index = message.get("db_index")
        ticket = self.scheduler.submit(
            np.asarray(query, dtype=np.float64),
            qtype,
            client_id=conn.name,
            db_index=db_index if isinstance(db_index, int) else None,
        )
        conn.pending[request_id] = _Pending(
            request_id, ticket, bool(message.get("stream", False))
        )
        self._metric_inc("service.net.submits")
        self._update_inflight_gauge()
        self._metric_gauge(
            "service.net.queue_depth", float(self.scheduler.queue_depth)
        )
        await self._deliver_completed()

    async def _handle_retire(
        self, conn: _Connection, message: dict[str, Any]
    ) -> None:
        request_id = message.get("id")
        pending = (
            conn.pending.pop(request_id, None)
            if isinstance(request_id, int)
            else None
        )
        if pending is not None:
            pending.dropped = True
            self._update_inflight_gauge()
        await self._send(
            conn,
            {
                "type": "retired",
                "id": request_id,
                "was_pending": pending is not None,
            },
        )

    async def _shed(
        self, conn: _Connection, request_id: int, reason: str
    ) -> None:
        """Refuse one submit explicitly, carrying the live queue state."""
        self.n_sheds += 1
        self._metric_inc("service.net.sheds")
        if self.observer is not None:
            self.observer.event(
                "net.shed",
                client=conn.name,
                reason=reason,
                queue_depth=self.scheduler.queue_depth,
            )
        await self._send(
            conn,
            {
                "type": "shed",
                "id": request_id,
                "reason": reason,
                "queue_depth": self.scheduler.queue_depth,
                "inflight": len(conn.pending),
            },
        )

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    async def _deliver_completed(self) -> None:
        """Send every completed, undelivered ticket to its connection."""
        for conn in list(self._connections):
            if not conn.pending:
                continue
            done = [
                pending
                for pending in conn.pending.values()
                if pending.ticket.done and not pending.dropped
            ]
            for pending in done:
                del conn.pending[pending.request_id]
                await self._deliver_one(conn, pending)
        self._update_inflight_gauge()

    async def _deliver_one(self, conn: _Connection, pending: _Pending) -> None:
        ticket = pending.ticket
        answers = ticket.answers or []
        if pending.stream:
            # The streamed face of Def. 4 over the wire: one frame per
            # answer before the terminal result.  For a degraded ticket
            # these are exactly the partial-answer buffer contents.
            for rank, answer in enumerate(answers):
                await self._send(
                    conn,
                    {
                        "type": "answer",
                        "id": pending.request_id,
                        "rank": rank,
                        "index": int(answer.index),
                        "distance": float(answer.distance),
                        "degraded": ticket.degraded,
                    },
                )
        result: dict[str, Any] = {
            "type": "result",
            "id": pending.request_id,
            "answers": answers_to_wire(answers),
            "degraded": ticket.degraded,
            "batch_size": ticket.batch_size,
        }
        if ticket.degraded:
            result["completeness"] = ticket.completeness
            self.n_degraded_results += 1
            self._metric_inc("service.net.degraded_results")
        self.n_results += 1
        self._metric_inc("service.net.results")
        await self._send(conn, result)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    async def _send(self, conn: _Connection, message: dict[str, Any]) -> None:
        if conn.writer.is_closing():
            return
        frame = encode_frame(message)
        conn.writer.write(frame)
        self._metric_inc("service.net.frames.out")
        self._metric_inc("service.net.bytes.out", len(frame))
        try:
            await conn.writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            conn.closed = True

    async def _send_error(
        self, conn: _Connection, request_id: Any, code: str, message: str
    ) -> None:
        self.n_errors += 1
        self._metric_inc("service.net.errors")
        await self._send(
            conn,
            {
                "type": "error",
                "id": request_id if isinstance(request_id, int) else None,
                "code": code,
                "message": message,
            },
        )

    def _metric_inc(self, name: str, n: int = 1) -> None:
        if self.observer is not None:
            self.observer.metrics.inc(name, n)

    def _metric_gauge(self, name: str, value: float) -> None:
        if self.observer is not None:
            self.observer.metrics.set_gauge(name, value)

    def _update_inflight_gauge(self) -> None:
        self._metric_gauge(
            "service.net.inflight",
            float(sum(len(conn.pending) for conn in self._connections)),
        )

    def stats(self) -> dict[str, Any]:
        """Server-side counters for ``stats`` frames and the CLI."""
        scheduler = self.scheduler
        return {
            "queue_depth": scheduler.queue_depth,
            "tick": scheduler.tick,
            "block_target": scheduler.block_target,
            "connections": len(self._connections),
            "inflight": sum(len(conn.pending) for conn in self._connections),
            "sheds": self.n_sheds,
            "errors": self.n_errors,
            "results": self.n_results,
            "degraded_results": self.n_degraded_results,
            "degraded_sessions": scheduler.degraded_sessions,
        }
