"""Length-prefixed JSON wire protocol of the network front-end.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding a single object with a ``"type"`` field.
The framing layer is deliberately tiny -- no negotiation beyond a
protocol-version check in ``hello``, no compression, no partial
messages -- because the interesting guarantees live one layer up: every
``submit`` is answered by exactly one of ``result`` / ``shed`` /
``error`` (never a silent drop), and answers that cross the wire are
byte-identical to the in-process :class:`~repro.service.QueryScheduler`
path (JSON floats round-trip exactly via ``repr``).

See ``docs/service.md`` for the full message catalogue.
"""

from __future__ import annotations

import json
import math
import struct
from typing import Any, Iterable, Mapping, Sequence

from repro.core.answers import Answer
from repro.core.types import QueryType

#: Wire protocol version; ``hello`` frames carrying any other value are
#: rejected with a ``bad-version`` error.
PROTOCOL_VERSION = 1

#: Frame header: one big-endian u32 payload length.
HEADER = struct.Struct(">I")

#: Default upper bound on one frame's payload (1 MiB).  A 64-d float
#: query is ~1.5 kB of JSON; a 1000-answer result is ~40 kB -- the cap
#: protects the server from hostile lengths, not honest traffic.
DEFAULT_MAX_FRAME = 1 << 20

#: Error codes carried by ``{"type": "error"}`` frames.
ERR_TOO_LARGE = "too-large"
ERR_BAD_JSON = "bad-json"
ERR_BAD_TYPE = "bad-type"
ERR_BAD_QUERY = "bad-query"
ERR_BAD_VERSION = "bad-version"
ERR_BAD_HANDSHAKE = "bad-handshake"


class ProtocolError(Exception):
    """Base class of framing-layer failures."""

    code = "protocol"

    #: Whether the connection can keep going after this error (the frame
    #: boundary is still trustworthy).
    recoverable = False


class FrameTooLarge(ProtocolError):
    """A frame header announced a payload beyond the size cap."""

    code = ERR_TOO_LARGE


class FrameCorrupt(ProtocolError):
    """A complete frame's payload was not a JSON object.

    The length prefix was intact, so the stream can resynchronise on
    the next frame: this error is recoverable.
    """

    code = ERR_BAD_JSON
    recoverable = True


def encode_frame(message: Mapping[str, Any]) -> bytes:
    """Serialise one message into a length-prefixed frame.

    ``allow_nan=False`` keeps the wire format standard JSON: infinite
    query-type fields are mapped to the string ``"inf"`` by
    :func:`qtype_to_wire` before they reach this point.
    """
    payload = json.dumps(
        message, separators=(",", ":"), sort_keys=True, allow_nan=False
    ).encode("utf-8")
    return HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame parser tolerating arbitrary read boundaries.

    Feed it whatever ``recv`` returned -- half a header, three frames
    and a bit -- and it yields every complete message.  Oversized
    frames raise :class:`FrameTooLarge` *before* buffering the payload;
    undecodable payloads raise :class:`FrameCorrupt` but leave the
    decoder aligned on the next frame boundary.
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()
        #: Payload length of the frame being assembled (None while the
        #: header itself is incomplete).
        self._expect: int | None = None

    def feed(self, data: bytes) -> list[dict[str, Any]]:
        """Consume bytes; return every message completed by them."""
        self._buffer.extend(data)
        messages: list[dict[str, Any]] = []
        while True:
            if self._expect is None:
                if len(self._buffer) < HEADER.size:
                    break
                (length,) = HEADER.unpack_from(self._buffer)
                if length > self.max_frame:
                    raise FrameTooLarge(
                        f"frame of {length} bytes exceeds the "
                        f"{self.max_frame}-byte cap"
                    )
                del self._buffer[: HEADER.size]
                self._expect = length
            if len(self._buffer) < self._expect:
                break
            payload = bytes(self._buffer[: self._expect])
            del self._buffer[: self._expect]
            self._expect = None
            try:
                message = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise FrameCorrupt(f"undecodable frame payload: {exc}") from exc
            if not isinstance(message, dict):
                raise FrameCorrupt(
                    f"frame payload is {type(message).__name__}, "
                    f"expected a JSON object"
                )
            messages.append(message)
        return messages


# ----------------------------------------------------------------------
# Value (de)serialisation
# ----------------------------------------------------------------------


def _bound_to_wire(value: float) -> float | str:
    return "inf" if math.isinf(value) else float(value)


def _bound_from_wire(value: Any) -> float:
    if value == "inf":
        return math.inf
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValueError(f"expected a number or 'inf', got {value!r}")
    return float(value)


def qtype_to_wire(qtype: QueryType) -> dict[str, Any]:
    """JSON-safe form of a :class:`QueryType` (``inf`` as a string)."""
    return {
        "kind": qtype.kind,
        "range": _bound_to_wire(qtype.range),
        "cardinality": _bound_to_wire(qtype.cardinality),
    }


def qtype_from_wire(payload: Mapping[str, Any]) -> QueryType:
    """Rebuild a :class:`QueryType`; raises ``ValueError`` when invalid."""
    if not isinstance(payload, Mapping):
        raise ValueError(f"qtype must be an object, got {payload!r}")
    kind = payload.get("kind")
    if not isinstance(kind, str):
        raise ValueError(f"qtype.kind must be a string, got {kind!r}")
    return QueryType(
        range=_bound_from_wire(payload.get("range", "inf")),
        cardinality=_bound_from_wire(payload.get("cardinality", "inf")),
        kind=kind,
    )


def answers_to_wire(answers: Iterable[Answer]) -> list[list[float]]:
    """``[[index, distance], ...]`` pairs, JSON round-trip exact."""
    return [[int(a.index), float(a.distance)] for a in answers]


def answers_from_wire(payload: Sequence[Sequence[float]]) -> list[Answer]:
    """Rebuild the answer list of a ``result`` frame."""
    return [Answer(int(index), float(distance)) for index, distance in payload]


def query_from_wire(payload: Any) -> list[float]:
    """Validate a submitted query vector (a non-empty number list)."""
    if (
        not isinstance(payload, list)
        or not payload
        or not all(
            isinstance(value, (int, float)) and not isinstance(value, bool)
            for value in payload
        )
    ):
        raise ValueError("query must be a non-empty array of numbers")
    return [float(value) for value in payload]
