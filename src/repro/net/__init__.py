"""Network front-end: the query service behind a socket.

The paper's multi-query engine pays off when many clients actually
arrive concurrently; this package is the admission edge that lets them.
It puts a small length-prefixed JSON wire protocol
(:mod:`repro.net.protocol`) in front of the
:class:`~repro.service.QueryScheduler`: an asyncio server
(:class:`~repro.net.server.QueryServer`) with per-client admission
control, bounded backpressure and explicit load shedding, and an
asyncio client (:class:`~repro.net.client.QueryClient`) whose open-loop
submit face the trace-driven load generator
(:mod:`repro.workloads.loadgen`) is built on.

Answers that cross the wire are byte-identical to the in-process
scheduler path; degraded (Def. 4 partial) answers stream to the client
with their completeness bound instead of being dropped.
"""

from repro.net.client import QueryClient, WireError, WireResult
from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    FrameCorrupt,
    FrameDecoder,
    FrameTooLarge,
    ProtocolError,
    answers_from_wire,
    answers_to_wire,
    encode_frame,
    qtype_from_wire,
    qtype_to_wire,
)
from repro.net.server import QueryServer

__all__ = [
    "DEFAULT_MAX_FRAME",
    "FrameCorrupt",
    "FrameDecoder",
    "FrameTooLarge",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueryClient",
    "QueryServer",
    "WireError",
    "WireResult",
    "answers_from_wire",
    "answers_to_wire",
    "encode_frame",
    "qtype_from_wire",
    "qtype_to_wire",
]
