"""Asyncio client of the network front-end.

:class:`QueryClient` speaks the protocol of :mod:`repro.net.protocol`
on one connection: submits return a future immediately (the open-loop
shape the load generator needs), a background reader task routes every
inbound frame to its request, and per-request timing (submit, first
answer, completion) is captured for latency and TTFA reporting.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.answers import Answer
from repro.core.types import QueryType
from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolError,
    answers_from_wire,
    encode_frame,
    qtype_to_wire,
)


class WireError(Exception):
    """An ``error`` frame the server attributed to this client/request."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code


@dataclass
class WireResult:
    """Outcome of one submitted query as seen from the client.

    Exactly one of the terminal states holds: ``shed`` is ``True`` (no
    answers), or ``answers`` is the delivered list (``degraded`` marks
    a Def. 4 partial answer set with its ``completeness`` bound).
    """

    request_id: int
    answers: list[Answer] = field(default_factory=list)
    shed: bool = False
    shed_reason: str | None = None
    queue_depth: int | None = None
    degraded: bool = False
    completeness: float | None = None
    batch_size: int | None = None
    #: Streamed ``answer`` frames received before the result.
    streamed: int = 0
    #: ``time.perf_counter()`` timestamps of the request lifecycle.
    submitted_at: float = 0.0
    first_answer_at: float | None = None
    completed_at: float | None = None

    @property
    def latency(self) -> float:
        """Seconds from submit to terminal frame."""
        if self.completed_at is None:
            raise RuntimeError("request has not completed")
        return self.completed_at - self.submitted_at

    @property
    def ttfa(self) -> float | None:
        """Seconds to the first streamed answer (``None`` unstreamed)."""
        if self.first_answer_at is None:
            return None
        return self.first_answer_at - self.submitted_at


class QueryClient:
    """One protocol connection; use :meth:`connect` to open it."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        hello: dict[str, Any],
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.hello = hello
        self._ids = itertools.count(1)
        self._inflight: dict[int, tuple[WireResult, asyncio.Future[WireResult]]] = {}
        self._stats_waiters: list[asyncio.Future[dict[str, Any]]] = []
        self._bye_waiter: asyncio.Future[None] | None = None
        self._closed = False
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        client: str = "repro-client",
        timeout: float = 10.0,
        retry_interval: float = 0.1,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> "QueryClient":
        """Open, retrying until ``timeout`` (server may still be binding)."""
        deadline = time.perf_counter() + timeout
        while True:
            try:
                reader, writer = await asyncio.open_connection(host, port)
                break
            except OSError:
                if time.perf_counter() >= deadline:
                    raise
                await asyncio.sleep(retry_interval)
        writer.write(
            encode_frame(
                {"type": "hello", "protocol": PROTOCOL_VERSION, "client": client}
            )
        )
        await writer.drain()
        decoder = FrameDecoder(max_frame)
        messages: list[dict[str, Any]] = []
        while not messages:
            data = await reader.read(65536)
            if not data:
                raise ConnectionError("server closed during handshake")
            messages = decoder.feed(data)
        hello = messages.pop(0)
        if hello.get("type") == "error":
            raise WireError(hello.get("code", "?"), hello.get("message", ""))
        if hello.get("type") != "hello_ok":
            raise ConnectionError(f"unexpected handshake reply: {hello}")
        self = cls(reader, writer, hello)
        # Frames that arrived glued to the handshake reply.
        for message in messages:
            self._dispatch(message)
        self._decoder = decoder
        return self

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    async def submit(
        self,
        query: Any,
        qtype: QueryType,
        stream: bool = False,
        db_index: int | None = None,
    ) -> asyncio.Future[WireResult]:
        """Send one query; returns a future resolving to its result.

        Open loop by construction: the coroutine returns as soon as the
        frame is written, so a caller can keep arrivals flowing at the
        trace rate regardless of service latency.
        """
        request_id = next(self._ids)
        result = WireResult(request_id=request_id)
        future: asyncio.Future[WireResult] = (
            asyncio.get_running_loop().create_future()
        )
        self._inflight[request_id] = (result, future)
        message: dict[str, Any] = {
            "type": "submit",
            "id": request_id,
            "query": [float(value) for value in query],
            "qtype": qtype_to_wire(qtype),
            "stream": stream,
        }
        if db_index is not None:
            message["db_index"] = int(db_index)
        result.submitted_at = time.perf_counter()
        await self._send(message)
        return future

    async def ask(
        self,
        query: Any,
        qtype: QueryType,
        stream: bool = False,
        db_index: int | None = None,
    ) -> WireResult:
        """Submit and await one query (the closed-loop convenience)."""
        return await (await self.submit(query, qtype, stream, db_index))

    async def stats(self) -> dict[str, Any]:
        """Fetch the server's live counters."""
        future: asyncio.Future[dict[str, Any]] = (
            asyncio.get_running_loop().create_future()
        )
        self._stats_waiters.append(future)
        await self._send({"type": "stats"})
        return await future

    async def retire(self, request_id: int) -> None:
        """Abandon one in-flight request (its answers are dropped)."""
        pair = self._inflight.pop(request_id, None)
        if pair is not None and not pair[1].done():
            pair[1].cancel()
        await self._send({"type": "retire", "id": request_id})

    async def bye(self) -> None:
        """Graceful goodbye: the server drains, answers, and closes."""
        if self._closed:
            return
        self._bye_waiter = asyncio.get_running_loop().create_future()
        await self._send({"type": "bye"})
        try:
            await asyncio.wait_for(self._bye_waiter, timeout=60.0)
        finally:
            await self.close()

    async def close(self) -> None:
        """Drop the connection; outstanding futures are cancelled."""
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        for _, future in self._inflight.values():
            if not future.done():
                future.cancel()
        self._inflight.clear()

    # ------------------------------------------------------------------
    # Inbound frame routing
    # ------------------------------------------------------------------

    async def _read_loop(self) -> None:
        decoder = getattr(self, "_decoder", None) or FrameDecoder()
        try:
            while True:
                data = await self._reader.read(65536)
                if not data:
                    break
                try:
                    messages = decoder.feed(data)
                except ProtocolError:
                    break
                for message in messages:
                    self._dispatch(message)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            raise
        finally:
            if self._bye_waiter is not None and not self._bye_waiter.done():
                self._bye_waiter.set_result(None)

    def _dispatch(self, message: dict[str, Any]) -> None:
        mtype = message.get("type")
        if mtype == "answer":
            pair = self._inflight.get(message.get("id", -1))
            if pair is not None:
                result, _ = pair
                if result.first_answer_at is None:
                    result.first_answer_at = time.perf_counter()
                result.streamed += 1
        elif mtype == "result":
            self._finish(
                message,
                answers=answers_from_wire(message.get("answers", [])),
                degraded=bool(message.get("degraded", False)),
                completeness=message.get("completeness"),
                batch_size=message.get("batch_size"),
            )
        elif mtype == "shed":
            self._finish(
                message,
                shed=True,
                shed_reason=message.get("reason"),
                queue_depth=message.get("queue_depth"),
            )
        elif mtype == "stats":
            if self._stats_waiters:
                future = self._stats_waiters.pop(0)
                if not future.done():
                    future.set_result(message)
        elif mtype == "error":
            request_id = message.get("id")
            error = WireError(
                message.get("code", "?"), message.get("message", "")
            )
            pair = (
                self._inflight.pop(request_id, None)
                if isinstance(request_id, int)
                else None
            )
            if pair is not None:
                if not pair[1].done():
                    pair[1].set_exception(error)
            elif self._stats_waiters:
                future = self._stats_waiters.pop(0)
                if not future.done():
                    future.set_exception(error)
        elif mtype == "bye_ok" or mtype == "shutdown":
            if self._bye_waiter is not None and not self._bye_waiter.done():
                self._bye_waiter.set_result(None)

    def _finish(self, message: dict[str, Any], **fields: Any) -> None:
        request_id = message.get("id")
        if not isinstance(request_id, int):
            return
        pair = self._inflight.pop(request_id, None)
        if pair is None:
            return
        result, future = pair
        for key, value in fields.items():
            setattr(result, key, value)
        result.completed_at = time.perf_counter()
        if not future.done():
            future.set_result(result)

    async def _send(self, message: dict[str, Any]) -> None:
        if self._closed:
            raise ConnectionError("client is closed")
        self._writer.write(encode_frame(message))
        await self._writer.drain()
