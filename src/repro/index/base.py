"""Access-method interface used by the query engines."""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from repro.data import Dataset
from repro.metric.space import MetricSpace
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page


class TraversalTelemetry:
    """Node-visit / subtree-prune accounting for one page stream.

    Created only when the owning access method has an observer attached;
    every emission site in the streams is guarded by an ``is not None``
    check, so the unobserved fast path stays untouched.  Two events are
    emitted (``index.node_visit`` per directory-node expansion or data
    page delivery, ``index.prune`` per expansion that discarded at least
    one subtree), aggregated per node -- telemetry never enters the
    per-entry inner loops.  When the stream ends, the per-query gauge
    ``index.prune_effectiveness`` reports the fraction of candidate
    subtrees that were cut without being visited.
    """

    __slots__ = ("observer", "access", "visits", "pushed", "pruned", "closed")

    def __init__(self, observer: Any, access: str):
        self.observer = observer
        self.access = access
        self.visits = 0
        self.pushed = 0
        self.pruned = 0
        self.closed = False

    def node_visit(
        self, level: int, entries: int, pushed: int, pruned: int, **attrs: Any
    ) -> None:
        """One expanded node: ``pushed`` kept, ``pruned`` cut subtrees."""
        self.visits += 1
        self.pushed += pushed
        self.pruned += pruned
        self.observer.event(
            "index.node_visit",
            access=self.access,
            level=level,
            entries=entries,
            pushed=pushed,
            pruned=pruned,
            **attrs,
        )
        if pruned:
            self.observer.event(
                "index.prune", access=self.access, level=level, count=pruned
            )

    def finish(self, pending: int = 0, **attrs: Any) -> None:
        """Stream exhausted; ``pending`` candidates were never visited.

        ``pending`` covers the queue residue cut by the final radius
        (level ``-1``: below whatever level each entry lived on).
        """
        if self.closed:
            return
        self.closed = True
        if pending:
            self.pruned += pending
            self.observer.event(
                "index.prune",
                access=self.access,
                level=-1,
                count=pending,
                final=True,
                **attrs,
            )
        total = self.pushed + self.pruned
        metrics = self.observer.metrics
        metrics.set_gauge(
            "index.prune_effectiveness", self.pruned / total if total else 0.0
        )
        metrics.inc("index.subtrees_pruned", self.pruned)


class PageStream:
    """Stream of candidate data pages for one query object.

    Implements the contract of ``determine_relevant_data_pages`` in
    Fig. 1 of the paper together with ``prune_pages``: pages are yielded
    in non-decreasing order of a lower bound of the distance between the
    query object and any object on the page, and the stream ends as soon
    as the next lower bound exceeds the current query distance.

    The stream performs any *directory* I/O needed to find the next page
    (charged to the shared counters) but does **not** read the data page
    itself -- the engine reads it, because the incremental multiple query
    skips pages it has already processed for the driving query.
    """

    def __init__(self, access_method: "AccessMethod"):
        self.access_method = access_method

    def next_page(self, radius: float) -> tuple[float, Page] | None:
        """Return ``(lower_bound, page)`` or ``None`` when exhausted.

        ``radius`` is the current query distance; any page whose lower
        bound exceeds it is pruned (and with it the rest of the stream,
        since bounds are non-decreasing).
        """
        raise NotImplementedError

    def lower_bounds_for_others(
        self,
        page: Page,
        query_objs: Sequence[Any],
        driver_lower_bound: float,
        driver_distances: np.ndarray | None,
    ) -> np.ndarray:
        """Per-query lower bounds for the non-driving queries of a batch.

        Streams that hold query-specific context (e.g. the M-tree stream
        knows the driver's distance to each leaf's routing object) may
        override this; the default delegates to the access method.
        """
        return self.access_method.page_lower_bounds(
            page, query_objs, driver_lower_bound, driver_distances
        )

    def drain(self, radius: float = float("inf")) -> Iterator[tuple[float, Page]]:
        """Yield the remaining pages at a fixed radius (testing helper)."""
        while True:
            item = self.next_page(radius)
            if item is None:
                return
            yield item


class AccessMethod:
    """Base class of all access methods.

    Concrete subclasses register their pages with the shared
    :class:`SimulatedDisk` at construction time and expose page streams
    and page lower bounds for the query engines.
    """

    #: Registry name (``"scan"``, ``"xtree"``, ``"rstar"``, ``"mtree"``,
    #: ``"vafile"``).
    name: str = "abstract"

    #: Whether reading this method's data pages in stream order is a
    #: sequential scan over consecutive physical addresses.
    sequential_data_access: bool = False

    def __init__(self, dataset: Dataset, space: MetricSpace, disk: SimulatedDisk):
        self.dataset = dataset
        self.space = space
        self.disk = disk
        #: Optional :class:`~repro.obs.Observer`; set by
        #: :meth:`repro.core.database.Database.attach_observer`.  ``None``
        #: keeps every stream on the uninstrumented fast path.
        self.observer: Any = None

    def traversal_telemetry(self) -> TraversalTelemetry | None:
        """Per-stream telemetry handle, or ``None`` without an observer."""
        if self.observer is None:
            return None
        return TraversalTelemetry(self.observer, self.name)

    def data_pages(self) -> list[Page]:
        """All data pages in physical-address order."""
        raise NotImplementedError

    def page_stream(self, query_obj: Any) -> PageStream:
        """Open a candidate-page stream for ``query_obj``."""
        raise NotImplementedError

    def page_lower_bounds(
        self,
        page: Page,
        query_objs: Sequence[Any],
        driver_lower_bound: float,
        driver_distances: np.ndarray | None,
    ) -> np.ndarray:
        """Cheap per-query lower bounds for a page already in memory.

        Called by the multiple-query engine to decide which of the
        *other* query objects the current page is relevant for
        (Sec. 5.1).  ``driver_lower_bound`` is the bound the stream
        reported for the driving query, and ``driver_distances[i]`` is
        the known distance between the driving query object and
        ``query_objs[i]`` (one row of the query-distance matrix), which
        metric access methods may exploit via the triangle inequality.

        The default is the trivial bound 0 (every page may be relevant),
        which is correct for any access method.
        """
        return np.zeros(len(query_objs), dtype=float)

    def prefilter_profile(self) -> dict[str, Any]:
        """Hints for building a page sketch over this method's pages.

        Consulted by :meth:`repro.prefilter.PagePrefilter.build`:
        ``kind`` selects the sketch variant (``"pivot"`` raw intervals
        or ``"quantized"`` bit-limited ones), ``bits`` the grid
        resolution of the quantized kind (``None`` for the default), and
        ``pivot_hints`` an optional list of dataset indices the method
        already knows to be good pivots (e.g. M-tree routing objects).
        The base profile -- raw pivot intervals, no hints -- is sound
        for every access method.
        """
        return {"kind": "pivot", "bits": None, "pivot_hints": None}

    def summary(self) -> dict[str, Any]:
        """Human-readable structural statistics (for reports/tests)."""
        return {"name": self.name, "pages": len(self.data_pages())}
