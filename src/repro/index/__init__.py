"""Access methods: linear scan, X-tree, R*-tree, M-tree and VA-file.

Every access method implements the :class:`~repro.index.base.AccessMethod`
interface consumed by the query engines:

* a physical layout of the database on data pages,
* a *page stream* per query object yielding candidate data pages in
  ascending lower-bound order (the [13] ranking algorithm for trees,
  physical order for the scan), and
* cheap per-page lower bounds for the *other* query objects of a
  multiple similarity query, used to decide page relevance (Sec. 5.1).
"""

from repro.index.base import AccessMethod, PageStream
from repro.index.mtree import MTree
from repro.index.scan import LinearScan
from repro.index.vafile import VAFile
from repro.index.xtree import XTree
from repro.index.rstar.tree import RStarTree  # after xtree: shares its machinery

__all__ = [
    "AccessMethod",
    "LinearScan",
    "MTree",
    "PageStream",
    "RStarTree",
    "VAFile",
    "XTree",
]
