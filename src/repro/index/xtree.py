"""The X-tree access method (Berchtold, Keim, Kriegel, VLDB 1996).

An X-tree is an R*-tree variant for high-dimensional data whose
directory refuses high-overlap splits: when splitting a directory node
would create two heavily overlapping children and no balanced
overlap-free split exists, the node is extended into a *supernode*
spanning several consecutive disk blocks instead.  Reading a supernode
is charged its full block count.

Construction paths:

* **bulk load** (default) -- STR packing of the data points into leaf
  pages, directory built bottom-up; used at benchmark scale;
* **dynamic insertion** -- R* ChooseSubtree and topological split with
  the X-tree supernode fallback; exercised by the unit tests and
  available for incremental maintenance.

k-nearest-neighbour search uses the ranking algorithm of Hjaltason and
Samet [13], which the paper's ``determine_relevant_data_pages`` is based
on: data pages are delivered in ascending MINDIST order and the stream
stops as soon as the next MINDIST exceeds the current query distance.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Sequence

import numpy as np

from repro.data import Dataset, VectorDataset
from repro.index.base import AccessMethod, PageStream
from repro.index.rstar.mbr import MBR, mindist_many
from repro.index.rstar.split import rstar_split
from repro.index.rstar.str_load import kd_partition, str_partition
from repro.metric.space import MetricSpace
from repro.storage.disk import SimulatedDisk
from repro.storage.layout import data_page_capacity
from repro.storage.page import Page, PageKind

#: Directory entry size: 2 * d float32 bounds plus a child pointer.
_DIR_ENTRY_OVERHEAD = 8

#: Maximum tolerated overlap fraction of a directory split before the
#: X-tree falls back to an overlap-minimal split or a supernode.
MAX_OVERLAP = 0.2

#: Minimum fill fraction a fallback split must respect to be "balanced".
MIN_FANOUT_FRACTION = 0.35

#: Fraction of a leaf's entries evicted by R* forced reinsertion.
REINSERT_FRACTION = 0.3


class _Node:
    """Common part of X-tree nodes."""

    __slots__ = ("mbr", "parent")

    def __init__(self, mbr: MBR):
        self.mbr = mbr
        self.parent: "_DirNode | None" = None

    @property
    def is_leaf(self) -> bool:
        raise NotImplementedError


class _LeafNode(_Node):
    """Leaf node: one data page holding object indices."""

    __slots__ = ("page",)

    def __init__(self, mbr: MBR, page: Page):
        super().__init__(mbr)
        self.page = page

    @property
    def is_leaf(self) -> bool:
        return True


class _DirNode(_Node):
    """Directory node; ``page.n_blocks > 1`` marks a supernode."""

    __slots__ = ("children", "page")

    def __init__(self, mbr: MBR, children: list[_Node], page: Page):
        super().__init__(mbr)
        self.children = children
        self.page = page
        for child in children:
            child.parent = self

    @property
    def is_leaf(self) -> bool:
        return False

    def recompute_mbr(self) -> None:
        self.mbr = MBR.from_mbrs(c.mbr for c in self.children)


class _XTreeStream(PageStream):
    """Hjaltason-Samet ranking over the X-tree directory."""

    def __init__(self, tree: "XTree", query_obj: np.ndarray):
        super().__init__(tree)
        self._tree = tree
        self._query = np.asarray(query_obj, dtype=float)
        self._counter = itertools.count()
        self._telemetry = tree.traversal_telemetry()
        root = tree.root
        self._heap: list[tuple[float, int, _Node, int]] = []
        if root is not None:
            bound = tree.space.mbr_mindist(root.mbr.lo, root.mbr.hi, self._query)
            self._heap = [(bound, next(self._counter), root, 0)]

    def next_page(self, radius: float) -> tuple[float, Page] | None:
        heap = self._heap
        telemetry = self._telemetry
        while heap:
            bound, _, node, level = heap[0]
            if bound > radius:
                if telemetry is not None:
                    telemetry.finish(pending=len(heap))
                return None
            heapq.heappop(heap)
            if node.is_leaf:
                return bound, node.page  # type: ignore[union-attr]
            dir_node: _DirNode = node  # type: ignore[assignment]
            # The root is pinned in memory (standard DBMS practice); all
            # other directory nodes are charged as reads.
            if dir_node is not self._tree.root:
                self._tree.disk.read(dir_node.page)
            pushed = pruned = 0
            for child in dir_node.children:
                child_bound = self._tree.space.mbr_mindist(
                    child.mbr.lo, child.mbr.hi, self._query
                )
                if child_bound <= radius:
                    heapq.heappush(
                        heap, (child_bound, next(self._counter), child, level + 1)
                    )
                    pushed += 1
                else:
                    pruned += 1
            if telemetry is not None:
                telemetry.node_visit(
                    level=level,
                    entries=len(dir_node.children),
                    pushed=pushed,
                    pruned=pruned,
                    supernode=dir_node.page.n_blocks > 1,
                )
        if telemetry is not None:
            telemetry.finish()
        return None


class XTree(AccessMethod):
    """X-tree over a :class:`VectorDataset`.

    Parameters
    ----------
    dataset, space, disk:
        The shared substrate.  The metric must provide an MBR lower
        bound (Euclidean-family metrics do).
    leaf_capacity, dir_capacity:
        Entries per leaf / directory block; derived from the disk block
        size when omitted.
    bulk_load:
        Build by bulk loading (default).  With ``False`` the tree is
        built by dynamic insertion.
    bulk_loader:
        ``"kd"`` (recursive widest-dimension median splits; default) or
        ``"str"`` (classic Sort-Tile-Recursive, which degenerates in
        high dimensions -- see :func:`repro.index.rstar.str_load.kd_partition`).
    max_overlap, min_fanout_fraction:
        X-tree supernode policy knobs.
    """

    name = "xtree"
    sequential_data_access = False

    def __init__(
        self,
        dataset: Dataset,
        space: MetricSpace,
        disk: SimulatedDisk,
        leaf_capacity: int | None = None,
        dir_capacity: int | None = None,
        bulk_load: bool = True,
        bulk_loader: str = "kd",
        max_overlap: float = MAX_OVERLAP,
        min_fanout_fraction: float = MIN_FANOUT_FRACTION,
    ):
        super().__init__(dataset, space, disk)
        if not isinstance(dataset, VectorDataset):
            raise TypeError("the X-tree requires a VectorDataset")
        if not space.distance.supports_mbr():
            raise ValueError(
                f"metric {space.distance.name!r} provides no MBR lower bound"
            )
        d = dataset.dimension
        if leaf_capacity is None:
            leaf_capacity = data_page_capacity(d, disk.block_size)
        if dir_capacity is None:
            entry_bytes = 2 * d * 4 + _DIR_ENTRY_OVERHEAD
            dir_capacity = max(2, disk.block_size // entry_bytes)
        if leaf_capacity < 2 or dir_capacity < 2:
            raise ValueError("leaf and directory capacities must be at least 2")
        self.leaf_capacity = leaf_capacity
        self.dir_capacity = dir_capacity
        if bulk_loader not in ("kd", "str"):
            raise ValueError("bulk_loader must be 'kd' or 'str'")
        self.bulk_loader = bulk_loader
        self.max_overlap = max_overlap
        self.min_fanout_fraction = min_fanout_fraction
        self.root: _Node | None = None
        self._leaf_by_page_id: dict[int, _LeafNode] = {}
        self.n_supernodes = 0
        self._reinsert_armed = False

        if len(dataset) == 0:
            return
        if bulk_load:
            self._bulk_load()
        else:
            for idx in range(len(dataset)):
                self.insert(idx)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _new_leaf(self, indices: np.ndarray) -> _LeafNode:
        page = Page(
            page_id=self.disk.allocate_page_id(),
            kind=PageKind.DATA,
            indices=indices,
        )
        self.disk.register(page)
        mbr = MBR.from_points(self.dataset.batch(page.indices))
        leaf = _LeafNode(mbr, page)
        self._leaf_by_page_id[page.page_id] = leaf
        return leaf

    def _new_dir(self, children: list[_Node], n_blocks: int = 1) -> _DirNode:
        page = Page(
            page_id=self.disk.allocate_page_id(),
            kind=PageKind.DIRECTORY,
            n_blocks=n_blocks,
        )
        self.disk.register(page)
        mbr = MBR.from_mbrs(c.mbr for c in children)
        return _DirNode(mbr, children, page)

    def _bulk_load(self) -> None:
        vectors = self.dataset.vectors
        if self.bulk_loader == "kd":
            tiles = kd_partition(vectors, self.leaf_capacity)
        else:
            tiles = str_partition(vectors, self.leaf_capacity)
        # Leaf pages first: they occupy a contiguous physical range.
        level: list[_Node] = [self._new_leaf(tile) for tile in tiles]
        # Directory bottom-up, grouping spatially consecutive nodes.
        while len(level) > 1:
            group_size = self.dir_capacity
            next_level: list[_Node] = []
            for start in range(0, len(level), group_size):
                group = level[start : start + group_size]
                if len(group) == 1:
                    next_level.append(group[0])
                else:
                    next_level.append(self._new_dir(group))
            level = next_level
        self.root = level[0]

    # ------------------------------------------------------------------
    # Dynamic insertion
    # ------------------------------------------------------------------

    def insert(self, index: int) -> None:
        """Insert dataset object ``index`` (R* choose-subtree + split).

        The first leaf overflow of an insertion triggers R* forced
        reinsertion (the 30 % of entries farthest from the leaf centre
        are removed and reinserted), which locally reorganises the tree
        before resorting to a split.
        """
        self._reinsert_armed = True
        self._insert_point(index)

    def _insert_point(self, index: int) -> None:
        point = np.asarray(self.dataset[index], dtype=float)
        if self.root is None:
            self.root = self._new_leaf(np.array([index], dtype=np.intp))
            return
        leaf = self._choose_leaf(point)
        page = leaf.page
        page.indices = np.append(page.indices, np.intp(index))
        leaf.mbr = leaf.mbr.union_point(point)
        self.disk.buffer.invalidate(page.page_id)
        self._adjust_mbrs_upward(leaf.parent, point)
        if page.n_objects > self.leaf_capacity:
            if self._reinsert_armed and leaf.parent is not None:
                self._reinsert_armed = False
                self._forced_reinsert(leaf)
            else:
                self._split_leaf(leaf)

    def _forced_reinsert(self, leaf: _LeafNode) -> None:
        """R* forced reinsertion: evict the farthest 30 % and re-add them."""
        points = np.asarray(self.dataset.batch(leaf.page.indices), dtype=float)
        center = leaf.mbr.center()
        distances = np.sqrt(((points - center) ** 2).sum(axis=1))
        n_evict = max(1, int(REINSERT_FRACTION * points.shape[0]))
        order = np.argsort(-distances, kind="stable")
        evicted = leaf.page.indices[order[:n_evict]]
        keep = leaf.page.indices[np.sort(order[n_evict:])]
        leaf.page.indices = keep
        leaf.mbr = MBR.from_points(self.dataset.batch(keep))
        self.disk.buffer.invalidate(leaf.page.page_id)
        self._recompute_mbrs_upward(leaf.parent)
        for index in evicted:
            self._insert_point(int(index))

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, index: int) -> bool:
        """Remove dataset object ``index``; returns whether it was found.

        Underflowing leaves (below ``min_fill_fraction`` of the leaf
        capacity) are dissolved and their remaining objects reinserted
        (the R*-tree CondenseTree strategy); emptied directory nodes are
        spliced out, and a single-child root is collapsed.
        """
        point = np.asarray(self.dataset[index], dtype=float)
        leaf = self._find_leaf(self.root, point, int(index))
        if leaf is None:
            return False
        page = leaf.page
        page.indices = page.indices[page.indices != index]
        self.disk.buffer.invalidate(page.page_id)
        min_fill = max(1, int(MIN_FANOUT_FRACTION * self.leaf_capacity))
        if page.n_objects == 0 or (
            page.n_objects < min_fill and leaf.parent is not None
        ):
            orphans = [int(i) for i in page.indices]
            self._detach(leaf)
            self._reinsert_armed = False
            for orphan in orphans:
                self._insert_point(orphan)
        else:
            if page.n_objects:
                leaf.mbr = MBR.from_points(self.dataset.batch(page.indices))
            self._recompute_mbrs_upward(leaf.parent)
        return True

    def _find_leaf(
        self, node: _Node | None, point: np.ndarray, index: int
    ) -> _LeafNode | None:
        if node is None or not node.mbr.contains_point(point):
            return None
        if node.is_leaf:
            leaf: _LeafNode = node  # type: ignore[assignment]
            if index in leaf.page.indices:
                return leaf
            return None
        for child in node.children:  # type: ignore[union-attr]
            found = self._find_leaf(child, point, index)
            if found is not None:
                return found
        return None

    def _detach(self, node: _Node) -> None:
        """Remove ``node`` from the tree, splicing out empty ancestors."""
        if node.is_leaf:
            self._leaf_by_page_id.pop(node.page.page_id, None)  # type: ignore[union-attr]
            self.disk.buffer.invalidate(node.page.page_id)  # type: ignore[union-attr]
        parent = node.parent
        if parent is None:
            self.root = None
            return
        parent.children.remove(node)
        node.parent = None
        self.disk.buffer.invalidate(parent.page.page_id)
        if not parent.children:
            self._detach(parent)
            return
        if len(parent.children) == 1 and parent is self.root:
            only_child = parent.children[0]
            only_child.parent = None
            self.root = only_child
            return
        self._recompute_mbrs_upward(parent)

    def _recompute_mbrs_upward(self, node: _DirNode | None) -> None:
        while node is not None:
            node.recompute_mbr()
            node = node.parent

    def _choose_leaf(self, point: np.ndarray) -> _LeafNode:
        node = self.root
        assert node is not None
        while not node.is_leaf:
            dir_node: _DirNode = node  # type: ignore[assignment]
            children = dir_node.children
            if children[0].is_leaf:
                node = self._least_overlap_child(children, point)
            else:
                node = self._least_enlargement_child(children, point)
        return node  # type: ignore[return-value]

    @staticmethod
    def _least_enlargement_child(children: list[_Node], point: np.ndarray) -> _Node:
        best = None
        best_key: tuple[float, float] | None = None
        for child in children:
            key = (child.mbr.enlargement(point), child.mbr.volume())
            if best_key is None or key < best_key:
                best, best_key = child, key
        assert best is not None
        return best

    @staticmethod
    def _least_overlap_child(children: list[_Node], point: np.ndarray) -> _Node:
        best = None
        best_key: tuple[float, float, float] | None = None
        for child in children:
            enlarged = child.mbr.union_point(point)
            overlap_delta = 0.0
            for other in children:
                if other is child:
                    continue
                overlap_delta += enlarged.overlap_volume(other.mbr)
                overlap_delta -= child.mbr.overlap_volume(other.mbr)
            key = (overlap_delta, child.mbr.enlargement(point), child.mbr.volume())
            if best_key is None or key < best_key:
                best, best_key = child, key
        assert best is not None
        return best

    def _adjust_mbrs_upward(self, node: _DirNode | None, point: np.ndarray) -> None:
        while node is not None:
            node.mbr = node.mbr.union_point(point)
            node = node.parent

    def _split_leaf(self, leaf: _LeafNode) -> None:
        points = np.asarray(self.dataset.batch(leaf.page.indices), dtype=float)
        result = rstar_split(points, points)
        indices = leaf.page.indices
        left_idx, right_idx = indices[result.left], indices[result.right]
        # Reuse the existing page for the left group.
        leaf.page.indices = left_idx
        leaf.mbr = MBR.from_points(self.dataset.batch(left_idx))
        self.disk.buffer.invalidate(leaf.page.page_id)
        sibling = self._new_leaf(right_idx)
        self._install_sibling(leaf, sibling)

    def _install_sibling(self, node: _Node, sibling: _Node) -> None:
        parent = node.parent
        if parent is None:
            self.root = self._new_dir([node, sibling])
            return
        parent.children.append(sibling)
        sibling.parent = parent
        parent.recompute_mbr()
        self.disk.buffer.invalidate(parent.page.page_id)
        if len(parent.children) > self._dir_node_capacity(parent):
            self._split_dir(parent)
        else:
            self._propagate_mbr(parent.parent)

    def _propagate_mbr(self, node: _DirNode | None) -> None:
        while node is not None:
            node.recompute_mbr()
            node = node.parent

    def _dir_node_capacity(self, node: _DirNode) -> int:
        return self.dir_capacity * node.page.n_blocks

    def _split_dir(self, node: _DirNode) -> None:
        """Split a directory node, or extend it into a supernode.

        The R* topological split is tried first.  If its overlap
        fraction exceeds ``max_overlap``, an overlap-free balanced split
        over the center coordinates is searched; failing that, the node
        becomes (or grows as) a supernode.
        """
        children = node.children
        los = np.array([c.mbr.lo for c in children])
        his = np.array([c.mbr.hi for c in children])
        result = rstar_split(los, his)
        union_volume = MBR.from_mbrs(c.mbr for c in children).volume()
        overlap_fraction = (
            result.overlap / union_volume if union_volume > 0 else 0.0
        )
        if overlap_fraction > self.max_overlap:
            alternative = self._overlap_minimal_split(children)
            if alternative is None:
                self._grow_supernode(node)
                return
            left_ids, right_ids = alternative
        else:
            left_ids, right_ids = result.left, result.right

        left_children = [children[i] for i in left_ids]
        right_children = [children[i] for i in right_ids]
        node.children = left_children
        for child in left_children:
            child.parent = node
        node.recompute_mbr()
        self._shrink_supernode_if_possible(node)
        self.disk.buffer.invalidate(node.page.page_id)
        sibling = self._new_dir(right_children)
        self._install_sibling(node, sibling)

    def _overlap_minimal_split(
        self, children: list[_Node]
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Balanced overlap-free split over child centers, if one exists."""
        n = len(children)
        min_fill = max(1, int(self.min_fanout_fraction * n))
        centers = np.array([c.mbr.center() for c in children])
        his = np.array([c.mbr.hi for c in children])
        los = np.array([c.mbr.lo for c in children])
        for axis in np.argsort(-(centers.max(axis=0) - centers.min(axis=0))):
            order = np.argsort(centers[:, axis], kind="stable")
            for size in range(min_fill, n - min_fill + 1):
                left, right = order[:size], order[size:]
                if his[left, axis].max() <= los[right, axis].min():
                    return left, right
        return None

    def _grow_supernode(self, node: _DirNode) -> None:
        """Extend ``node`` by one block instead of splitting it."""
        if node.page.n_blocks == 1:
            self.n_supernodes += 1
        self.disk.buffer.invalidate(node.page.page_id)
        node.page.n_blocks += 1

    def _shrink_supernode_if_possible(self, node: _DirNode) -> None:
        """After a successful split, release now-unneeded supernode blocks."""
        needed_blocks = max(1, -(-len(node.children) // self.dir_capacity))
        if needed_blocks < node.page.n_blocks:
            if needed_blocks == 1 and node.page.n_blocks > 1:
                self.n_supernodes -= 1
            node.page.n_blocks = needed_blocks

    # ------------------------------------------------------------------
    # Query interface
    # ------------------------------------------------------------------

    def data_pages(self) -> list[Page]:
        leaves = sorted(self._leaf_by_page_id.values(), key=lambda l: l.page.page_id)
        return [leaf.page for leaf in leaves]

    def page_stream(self, query_obj: Any) -> PageStream:
        return _XTreeStream(self, query_obj)

    def prefilter_profile(self) -> dict[str, Any]:
        """Quantized intervals: the R-tree family already stores
        bit-limited geometry (MBRs), so the sketch follows suit."""
        return {"kind": "quantized", "bits": None, "pivot_hints": None}

    def page_lower_bounds(
        self,
        page: Page,
        query_objs: Sequence[Any],
        driver_lower_bound: float,
        driver_distances: np.ndarray | None,
    ) -> np.ndarray:
        leaf = self._leaf_by_page_id[page.page_id]
        self.space.counters.mindist_evaluations += len(query_objs)
        return self.space.distance.mbr_mindist_many(
            leaf.mbr.lo, leaf.mbr.hi, np.asarray(query_objs, dtype=float)
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def height(self) -> int:
        """Tree height (1 for a single leaf)."""
        node, height = self.root, 0
        while node is not None:
            height += 1
            node = None if node.is_leaf else node.children[0]  # type: ignore[union-attr]
        return height

    def iter_nodes(self) -> Any:
        """Yield every node (directory and leaf), pre-order."""
        stack = [self.root] if self.root is not None else []
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.children)  # type: ignore[union-attr]

    def summary(self) -> dict[str, Any]:
        n_leaves = len(self._leaf_by_page_id)
        n_dir = sum(1 for n in self.iter_nodes() if not n.is_leaf)
        return {
            "name": self.name,
            "pages": n_leaves,
            "directory_nodes": n_dir,
            "supernodes": self.n_supernodes,
            "height": self.height(),
            "leaf_capacity": self.leaf_capacity,
            "dir_capacity": self.dir_capacity,
        }


# Re-export for callers that need the vectorised Euclidean MINDIST.
__all__ = ["XTree", "mindist_many"]
