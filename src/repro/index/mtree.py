"""The M-tree access method (Ciaccia, Patella, Zezula, VLDB 1997).

The M-tree is the dynamic, paged metric index the paper names for
general metric databases (Sec. 2): directory nodes store *routing
objects* with covering radii, leaf nodes store the database objects, and
the triangle inequality prunes subtrees during search.  Unlike the
X-tree it needs no vector space, only the metric itself, so it serves
the WWW-session style scenarios (edit distance over strings).

Distance evaluations performed while *querying* (query object against
routing objects) are charged to the shared counters as distance
calculations; distance evaluations during *construction* are kept out of
the query cost accounting, mirroring the paper's setup where the index
exists before the measured workload starts.

For a multiple similarity query, the stream remembers the driver's
distance to each delivered leaf's routing object.  The relevance bound
for every other query object then costs no extra distance calculation:
``d(Q_i, O) >= |d(Q_1, routing) - d(Q_1, Q_i)| - covering_radius``
follows from two applications of the triangle inequality, using only the
query-distance matrix -- the same idea as the paper's Lemmas 1 and 2
lifted from objects to pages.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Sequence

import numpy as np

from repro.data import Dataset
from repro.index.base import AccessMethod, PageStream
from repro.metric.space import MetricSpace
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageKind

#: Assumed bytes per entry when the dataset is not made of vectors.
_GENERIC_OBJECT_BYTES = 256

#: Routing-entry overhead: covering radius, parent distance, child pointer.
_ROUTING_OVERHEAD_BYTES = 24

#: Most pivots the prefilter profile hints with; the sketch builder
#: truncates to its own pivot budget anyway.
_PREFILTER_HINT_LIMIT = 16


class _RoutingEntry:
    """Directory entry: routing object, covering radius, subtree."""

    __slots__ = ("obj_index", "radius", "dist_to_parent", "child")

    def __init__(
        self, obj_index: int, radius: float, dist_to_parent: float, child: "_MNode"
    ):
        self.obj_index = obj_index
        self.radius = radius
        self.dist_to_parent = dist_to_parent
        self.child = child


class _MNode:
    """M-tree node; leaves carry a data page, internals carry entries."""

    __slots__ = (
        "is_leaf",
        "entries",
        "object_dists",
        "page",
        "parent_entry",
        "parent_node",
    )

    def __init__(self, is_leaf: bool, page: Page):
        self.is_leaf = is_leaf
        #: leaf: object indices (mirrors ``page.indices``); internal: entries.
        self.entries: list[Any] = []
        #: leaf only: distance of each object to the node's routing object.
        self.object_dists: list[float] = []
        self.page = page
        self.parent_entry: _RoutingEntry | None = None
        self.parent_node: "_MNode | None" = None


class _MTreeStream(PageStream):
    """Best-first ranking over the M-tree with routing-distance memory."""

    def __init__(self, tree: "MTree", query_obj: Any):
        super().__init__(tree)
        self._tree = tree
        self._query = query_obj
        self._counter = itertools.count()
        self._heap: list[tuple[float, int, _MNode, float, int]] = []
        self._telemetry = tree.traversal_telemetry()
        #: page id -> (driver distance to routing object, covering radius)
        self.routing_context: dict[int, tuple[float, float]] = {}
        root = tree.root
        if root is not None:
            if root.parent_entry is None:
                # Root has no routing object; bound 0, parent distance NaN.
                self._heap = [(0.0, next(self._counter), root, float("nan"), 0)]

    def _push_children(
        self, node: _MNode, d_parent: float, radius: float, level: int
    ) -> tuple[int, int]:
        """Expand ``node``; returns how many subtrees were kept / pruned."""
        tree = self._tree
        pushed = pruned = 0
        for entry in node.entries:
            entry: _RoutingEntry
            # Cheap pre-test: |d(q, parent) - d(entry, parent)| - r_entry
            # already exceeds the radius -> prune without a distance
            # calculation (the classic M-tree optimisation; charged as
            # one triangle-inequality try).
            if not np.isnan(d_parent):
                tree.space.counters.avoidance_tries += 1
                if abs(d_parent - entry.dist_to_parent) - entry.radius > radius:
                    tree.space.counters.avoided_calculations += 1
                    pruned += 1
                    continue
            d_routing = tree.space.d(tree.dataset[entry.obj_index], self._query)
            bound = max(0.0, d_routing - entry.radius)
            if bound <= radius:
                heapq.heappush(
                    self._heap,
                    (bound, next(self._counter), entry.child, d_routing, level + 1),
                )
                pushed += 1
                if entry.child.is_leaf:
                    self.routing_context[entry.child.page.page_id] = (
                        d_routing,
                        entry.radius,
                    )
            else:
                pruned += 1
        return pushed, pruned

    def next_page(self, radius: float) -> tuple[float, Page] | None:
        heap = self._heap
        telemetry = self._telemetry
        while heap:
            bound, _, node, d_routing, level = heap[0]
            if bound > radius:
                if telemetry is not None:
                    telemetry.finish(pending=len(heap))
                return None
            heapq.heappop(heap)
            if node.is_leaf:
                return bound, node.page
            # The root stays pinned in memory; deeper directory nodes are
            # charged as page reads.
            if node is not self._tree.root:
                self._tree.disk.read(node.page)
            pushed, pruned = self._push_children(node, d_routing, radius, level)
            if telemetry is not None:
                telemetry.node_visit(
                    level=level,
                    entries=len(node.entries),
                    pushed=pushed,
                    pruned=pruned,
                )
        if telemetry is not None:
            telemetry.finish()
        return None

    def lower_bounds_for_others(
        self,
        page: Page,
        query_objs: Sequence[Any],
        driver_lower_bound: float,
        driver_distances: np.ndarray | None,
    ) -> np.ndarray:
        context = self.routing_context.get(page.page_id)
        if context is None or driver_distances is None:
            return np.zeros(len(query_objs), dtype=float)
        d_routing, covering_radius = context
        counters = self.access_method.space.counters
        counters.mindist_evaluations += len(query_objs)
        bounds = np.abs(d_routing - np.asarray(driver_distances)) - covering_radius
        return np.maximum(bounds, 0.0)


class MTree(AccessMethod):
    """Paged M-tree over any :class:`Dataset` under any metric.

    Parameters
    ----------
    leaf_capacity, dir_capacity:
        Entries per leaf / directory page; derived from the block size
        and the object size when omitted.
    seed:
        Random seed for routing-object promotion during splits.
    """

    name = "mtree"
    sequential_data_access = False

    def __init__(
        self,
        dataset: Dataset,
        space: MetricSpace,
        disk: SimulatedDisk,
        leaf_capacity: int | None = None,
        dir_capacity: int | None = None,
        bulk_load: bool = True,
        seed: int = 0,
    ):
        super().__init__(dataset, space, disk)
        object_bytes = (
            dataset.dimension * 4 if dataset.is_vector else _GENERIC_OBJECT_BYTES
        )
        if leaf_capacity is None:
            leaf_capacity = max(2, disk.block_size // (object_bytes + 16))
        if dir_capacity is None:
            dir_capacity = max(
                2, disk.block_size // (object_bytes + _ROUTING_OVERHEAD_BYTES)
            )
        if leaf_capacity < 2 or dir_capacity < 2:
            raise ValueError("leaf and directory capacities must be at least 2")
        self.leaf_capacity = leaf_capacity
        self.dir_capacity = dir_capacity
        self._rng = np.random.default_rng(seed)
        self.root: _MNode | None = None
        self._leaf_by_page_id: dict[int, _MNode] = {}
        if len(dataset) == 0:
            return
        if bulk_load:
            self._bulk_load()
        else:
            for index in range(len(dataset)):
                self.insert(index)

    # ------------------------------------------------------------------
    # Bulk loading (after Ciaccia & Patella, "Bulk Loading the M-tree")
    # ------------------------------------------------------------------

    def _bulk_load(self) -> None:
        """Build by recursive sample-based clustering.

        A set that does not fit one leaf is clustered around randomly
        sampled routing objects; every object is assigned to its nearest
        sample, and each cluster is loaded recursively.  Covering radii
        are exact (the maximum assignment distance of the subtree's
        objects, which are fully known per cluster).
        """
        members = list(range(len(self.dataset)))
        self.root, _ = self._bulk_node(members, routing_index=None)
        self._fix_parent_distances(self.root)

    def _fix_parent_distances(self, node: _MNode) -> None:
        """Fill ``dist_to_parent`` of every routing entry, recursively."""
        if node.is_leaf:
            return
        parent_obj = (
            node.parent_entry.obj_index if node.parent_entry is not None else None
        )
        for entry in node.entries:
            entry: _RoutingEntry
            if parent_obj is None:
                entry.dist_to_parent = float("nan")
            else:
                entry.dist_to_parent = self._d(
                    parent_obj, self.dataset[entry.obj_index]
                )
            self._fix_parent_distances(entry.child)

    def _bulk_distances(self, routing_index: int, members: list[int]) -> np.ndarray:
        objs = self.dataset.batch(np.asarray(members, dtype=np.intp))
        return np.asarray(
            self.space.distance.many(objs, self.dataset[routing_index]), dtype=float
        )

    def _bulk_node(
        self, members: list[int], routing_index: int | None
    ) -> tuple[_MNode, float]:
        """Build a subtree for ``members``; returns (node, covering radius).

        ``routing_index`` is the routing object the parent promoted for
        this subtree (``None`` at the root).
        """
        if len(members) <= self.leaf_capacity:
            node = self._new_node(is_leaf=True)
            node.entries = list(members)
            node.page.indices = np.asarray(members, dtype=np.intp)
            if routing_index is not None:
                distances = self._bulk_distances(routing_index, members)
                node.object_dists = [float(d) for d in distances]
                radius = float(distances.max()) if members else 0.0
            else:
                node.object_dists = [0.0] * len(members)
                radius = 0.0
            return node, radius

        n_clusters = min(
            self.dir_capacity, max(2, -(-len(members) // self.leaf_capacity))
        )
        seeds = [
            members[int(i)]
            for i in self._rng.choice(len(members), size=n_clusters, replace=False)
        ]
        assignment_distances = np.stack(
            [self._bulk_distances(seed, members) for seed in seeds]
        )
        assignment = np.argmin(assignment_distances, axis=0)
        groups: list[list[int]] = [[] for _ in seeds]
        for position, member in enumerate(members):
            groups[int(assignment[position])].append(member)
        non_empty = [g for g in groups if g]
        if len(non_empty) < 2:
            # Degenerate sample (e.g. many duplicates): balanced fallback.
            half = len(members) // 2
            non_empty = [members[:half], members[half:]]
            seeds = [non_empty[0][0], non_empty[1][0]]
            groups = non_empty
        node = self._new_node(is_leaf=False)
        for seed_obj, group in zip(seeds, groups):
            if not group:
                continue
            child, child_radius = self._bulk_node(group, seed_obj)
            entry = _RoutingEntry(seed_obj, child_radius, float("nan"), child)
            child.parent_entry = entry
            child.parent_node = node
            node.entries.append(entry)
        radius = 0.0
        if routing_index is not None:
            for entry in node.entries:
                entry: _RoutingEntry
                d = self._d(routing_index, self.dataset[entry.obj_index])
                radius = max(radius, d + entry.radius)
        return node, radius

    # ------------------------------------------------------------------
    # Construction (uncounted distances)
    # ------------------------------------------------------------------

    def _d(self, i: int, j_obj: Any) -> float:
        """Construction-time distance (not charged to query counters)."""
        return self.space.uncounted(self.dataset[i], j_obj)

    def _new_node(self, is_leaf: bool) -> _MNode:
        page = Page(
            page_id=self.disk.allocate_page_id(),
            kind=PageKind.DATA if is_leaf else PageKind.DIRECTORY,
        )
        self.disk.register(page)
        node = _MNode(is_leaf, page)
        if is_leaf:
            self._leaf_by_page_id[page.page_id] = node
        return node

    def insert(self, index: int) -> None:
        """Insert dataset object ``index`` into the tree."""
        if self.root is None:
            self.root = self._new_node(is_leaf=True)
        leaf, dist_to_routing = self._descend(self.root, index, float("nan"))
        leaf.entries.append(index)
        leaf.object_dists.append(dist_to_routing)
        leaf.page.indices = np.asarray(leaf.entries, dtype=np.intp)
        self.disk.buffer.invalidate(leaf.page.page_id)
        if len(leaf.entries) > self.leaf_capacity:
            self._split(leaf)

    def _descend(
        self, node: _MNode, index: int, dist_to_routing: float
    ) -> tuple[_MNode, float]:
        while not node.is_leaf:
            best_entry: _RoutingEntry | None = None
            best_key: tuple[float, float] | None = None
            best_dist = 0.0
            for entry in node.entries:
                d = self._d(entry.obj_index, self.dataset[index])
                enlargement = max(0.0, d - entry.radius)
                key = (enlargement, d)
                if best_key is None or key < best_key:
                    best_entry, best_key, best_dist = entry, key, d
            assert best_entry is not None
            if best_dist > best_entry.radius:
                self._enlarge_radius(best_entry, best_dist)
            node = best_entry.child
            dist_to_routing = best_dist
        return node, dist_to_routing

    def _enlarge_radius(self, entry: _RoutingEntry, new_radius: float) -> None:
        entry.radius = new_radius

    def _split(self, node: _MNode) -> None:
        """Split an overflowing node: promote two routing objects, partition.

        Promotion follows the mM_RAD heuristic over a random candidate
        sample: the pair whose balanced partition minimises the larger
        covering radius wins.
        """
        member_indices = self._member_object_indices(node)
        promoted = self._promote(member_indices)
        groups = self._partition(node, member_indices, promoted)
        parent_entry = node.parent_entry
        # Reuse `node` for group 0; a fresh sibling holds group 1.
        sibling = self._new_node(node.is_leaf)
        self._fill_node(node, groups[0][1], promoted[0])
        self._fill_node(sibling, groups[1][1], promoted[1])

        entry0 = self._make_routing_entry(promoted[0], node)
        entry1 = self._make_routing_entry(promoted[1], sibling)
        if parent_entry is None:
            new_root = self._new_node(is_leaf=False)
            new_root.entries = [entry0, entry1]
            node.parent_entry = entry0
            sibling.parent_entry = entry1
            node.parent_node = new_root
            sibling.parent_node = new_root
            self._set_parent_distances(new_root, None)
            self.root = new_root
            return
        parent_node = node.parent_node
        assert parent_node is not None
        parent_node.entries.remove(parent_entry)
        parent_node.entries.extend([entry0, entry1])
        node.parent_entry = entry0
        sibling.parent_entry = entry1
        sibling.parent_node = parent_node
        self._set_parent_distances(parent_node, parent_node.parent_entry)
        self.disk.buffer.invalidate(parent_node.page.page_id)
        if len(parent_node.entries) > self.dir_capacity:
            self._split(parent_node)

    def _member_object_indices(self, node: _MNode) -> list[int]:
        if node.is_leaf:
            return list(node.entries)
        return [entry.obj_index for entry in node.entries]

    def _promote(self, member_indices: list[int]) -> tuple[int, int]:
        n = len(member_indices)
        candidate_pairs: list[tuple[int, int]] = []
        max_pairs = 32
        if n * (n - 1) // 2 <= max_pairs:
            candidate_pairs = [
                (member_indices[i], member_indices[j])
                for i in range(n)
                for j in range(i + 1, n)
            ]
        else:
            while len(candidate_pairs) < max_pairs:
                i, j = self._rng.choice(n, size=2, replace=False)
                candidate_pairs.append((member_indices[int(i)], member_indices[int(j)]))
        best_pair = candidate_pairs[0]
        best_max_radius = float("inf")
        for a, b in candidate_pairs:
            radius_a = radius_b = 0.0
            for idx in member_indices:
                d_a = self._d(a, self.dataset[idx])
                d_b = self._d(b, self.dataset[idx])
                if d_a <= d_b:
                    radius_a = max(radius_a, d_a)
                else:
                    radius_b = max(radius_b, d_b)
            worst = max(radius_a, radius_b)
            if worst < best_max_radius:
                best_max_radius = worst
                best_pair = (a, b)
        return best_pair

    def _partition(
        self, node: _MNode, member_indices: list[int], promoted: tuple[int, int]
    ) -> list[tuple[int, list[Any]]]:
        group0: list[Any] = []
        group1: list[Any] = []
        entries = node.entries
        for position, idx in enumerate(member_indices):
            d0 = self._d(promoted[0], self.dataset[idx])
            d1 = self._d(promoted[1], self.dataset[idx])
            target = group0 if d0 <= d1 else group1
            target.append(entries[position])
        if not group0:
            group0.append(group1.pop())
        if not group1:
            group1.append(group0.pop())
        return [(promoted[0], group0), (promoted[1], group1)]

    def _fill_node(self, node: _MNode, entries: list[Any], routing_index: int) -> None:
        node.entries = entries
        if node.is_leaf:
            node.object_dists = [
                self._d(routing_index, self.dataset[idx]) for idx in entries
            ]
            node.page.indices = np.asarray(entries, dtype=np.intp)
        else:
            for entry in entries:
                entry: _RoutingEntry
                entry.dist_to_parent = self._d(
                    routing_index, self.dataset[entry.obj_index]
                )
                entry.child.parent_node = node
        self.disk.buffer.invalidate(node.page.page_id)

    def _make_routing_entry(self, routing_index: int, child: _MNode) -> _RoutingEntry:
        radius = 0.0
        if child.is_leaf:
            for idx in child.entries:
                radius = max(radius, self._d(routing_index, self.dataset[idx]))
        else:
            for entry in child.entries:
                entry: _RoutingEntry
                d = self._d(routing_index, self.dataset[entry.obj_index])
                radius = max(radius, d + entry.radius)
        return _RoutingEntry(routing_index, radius, float("nan"), child)

    def _set_parent_distances(
        self, node: _MNode, parent_entry: _RoutingEntry | None
    ) -> None:
        for entry in node.entries:
            entry: _RoutingEntry
            if parent_entry is None:
                entry.dist_to_parent = float("nan")
            else:
                entry.dist_to_parent = self._d(
                    parent_entry.obj_index, self.dataset[entry.obj_index]
                )

    # ------------------------------------------------------------------
    # Query interface
    # ------------------------------------------------------------------

    def data_pages(self) -> list[Page]:
        leaves = sorted(self._leaf_by_page_id.values(), key=lambda n: n.page.page_id)
        return [leaf.page for leaf in leaves]

    def page_stream(self, query_obj: Any) -> PageStream:
        return _MTreeStream(self, query_obj)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def iter_nodes(self) -> Any:
        """Yield every node, pre-order."""
        stack = [self.root] if self.root is not None else []
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(entry.child for entry in node.entries)

    def height(self) -> int:
        """Tree height (1 for a single leaf)."""
        node, height = self.root, 0
        while node is not None:
            height += 1
            node = None if node.is_leaf else node.entries[0].child
        return height

    def covering_radii_valid(self) -> bool:
        """Invariant check: every object lies inside its routing balls."""
        if self.root is None:
            return True
        return self._check_subtree(self.root)

    def _check_subtree(self, node: _MNode) -> bool:
        if node.is_leaf:
            return True
        for entry in node.entries:
            entry: _RoutingEntry
            for idx in self._subtree_objects(entry.child):
                d = self.space.uncounted(
                    self.dataset[entry.obj_index], self.dataset[idx]
                )
                if d > entry.radius + 1e-9:
                    return False
            if not self._check_subtree(entry.child):
                return False
        return True

    def _subtree_objects(self, node: _MNode) -> list[int]:
        if node.is_leaf:
            return list(node.entries)
        objects: list[int] = []
        for entry in node.entries:
            objects.extend(self._subtree_objects(entry.child))
        return objects

    def prefilter_profile(self) -> dict[str, Any]:
        """Raw pivot intervals, seeded with the tree's routing objects.

        The upper directory levels already hold objects promoted for
        exactly the pivot property (small covering radii, spread apart),
        so the sketch reuses them as pivot hints instead of selecting
        from scratch.
        """
        hints: list[int] = []
        frontier = [self.root] if self.root is not None else []
        while frontier and len(hints) < 2 * _PREFILTER_HINT_LIMIT:
            next_frontier: list[_MNode] = []
            for node in frontier:
                if node.is_leaf:
                    continue
                for entry in node.entries:
                    hints.append(int(entry.obj_index))
                    next_frontier.append(entry.child)
            frontier = next_frontier
        return {
            "kind": "pivot",
            "bits": None,
            "pivot_hints": hints[:_PREFILTER_HINT_LIMIT] or None,
        }

    def summary(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "pages": len(self._leaf_by_page_id),
            "height": self.height(),
            "leaf_capacity": self.leaf_capacity,
            "dir_capacity": self.dir_capacity,
        }
