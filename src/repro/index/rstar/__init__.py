"""R*-tree building blocks shared by the X-tree.

The X-tree (Berchtold, Keim, Kriegel, VLDB 1996) is structurally an
R*-tree whose directory avoids high-overlap splits by creating
*supernodes*.  This subpackage provides the shared machinery: MBR
algebra, the R* topological split, and STR bulk loading.
"""

from repro.index.rstar.mbr import MBR, mindist_many
from repro.index.rstar.split import SplitResult, rstar_split
from repro.index.rstar.str_load import str_partition

__all__ = ["MBR", "SplitResult", "mindist_many", "rstar_split", "str_partition"]
