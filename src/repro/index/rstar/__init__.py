"""R*-tree building blocks shared by the X-tree, plus the plain R*-tree.

The X-tree (Berchtold, Keim, Kriegel, VLDB 1996) is structurally an
R*-tree whose directory avoids high-overlap splits by creating
*supernodes*.  This subpackage provides the shared machinery: MBR
algebra, the R* topological split, and STR bulk loading -- and
:class:`~repro.index.rstar.tree.RStarTree`, the supernode-free R*-tree
registered as the ``"rstar"`` access method.
"""

from repro.index.rstar.mbr import MBR, mindist_many
from repro.index.rstar.split import SplitResult, rstar_split
from repro.index.rstar.str_load import str_partition

__all__ = [
    "MBR",
    "RStarTree",
    "SplitResult",
    "mindist_many",
    "rstar_split",
    "str_partition",
]


def __getattr__(name: str):
    # RStarTree subclasses XTree, which in turn imports this package's
    # submodules; a lazy attribute avoids the circular import when
    # repro.index.xtree is loaded first.
    if name == "RStarTree":
        from repro.index.rstar.tree import RStarTree

        return RStarTree
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
