"""Sort-Tile-Recursive (STR) bulk loading.

STR (Leutenegger et al., ICDE 1997) packs n points into pages of at most
``capacity`` points by recursively sorting along one dimension and
slicing into vertical "slabs", producing compact, low-overlap leaf pages.
It is the construction path used for the benchmark-scale trees; dynamic
R*/X-tree insertion remains available for incremental maintenance.
"""

from __future__ import annotations

import math

import numpy as np


def str_partition(
    points: np.ndarray,
    capacity: int,
    dims_order: list[int] | None = None,
) -> list[np.ndarray]:
    """Partition point indices into STR tiles of at most ``capacity``.

    Returns a list of index arrays into ``points``; tiles are emitted in
    lexicographic slab order, so consecutive tiles are spatially close --
    a property the physical page layout inherits.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError("points must be an (n, d) array")
    if capacity < 1:
        raise ValueError("capacity must be positive")
    n, d = points.shape
    if dims_order is None:
        spreads = points.max(axis=0) - points.min(axis=0) if n else np.zeros(d)
        dims_order = list(np.argsort(-spreads))
    indices = np.arange(n, dtype=np.intp)
    return _partition_recursive(points, indices, capacity, dims_order, 0)


def _partition_recursive(
    points: np.ndarray,
    indices: np.ndarray,
    capacity: int,
    dims_order: list[int],
    depth: int,
) -> list[np.ndarray]:
    n = indices.size
    if n == 0:
        return []
    if n <= capacity:
        return [indices]
    if depth >= len(dims_order):
        # All dimensions consumed: slice in current order.
        return [indices[i : i + capacity] for i in range(0, n, capacity)]

    n_pages = math.ceil(n / capacity)
    remaining_dims = len(dims_order) - depth
    # Number of slabs along this dimension: the (remaining_dims)-th root
    # of the page count, as prescribed by STR.
    n_slabs = max(1, round(n_pages ** (1.0 / remaining_dims)))
    if n_slabs == 1:
        return _partition_recursive(points, indices, capacity, dims_order, depth + 1)

    axis = dims_order[depth]
    order = indices[np.argsort(points[indices, axis], kind="stable")]
    slab_size = math.ceil(n / n_slabs)
    tiles: list[np.ndarray] = []
    for start in range(0, n, slab_size):
        slab = order[start : start + slab_size]
        tiles.extend(
            _partition_recursive(points, slab, capacity, dims_order, depth + 1)
        )
    return tiles


def kd_partition(points: np.ndarray, capacity: int) -> list[np.ndarray]:
    """Partition point indices by recursive widest-dimension median splits.

    Classic STR degenerates in high dimensions: with ``P`` pages and
    ``d`` dimensions the slab count per dimension is ``P**(1/d)``, which
    rounds to one for ``d`` around 20, so the tiles become thin sorted
    slices along a single dimension.  The kd-style loader instead splits
    the *current subset* along its widest dimension at a page-aligned
    median, recursing until a tile fits a page.  Leaf MBRs stay tight in
    every dimension that matters locally, which is what gives the X-tree
    its selectivity on clustered high-dimensional data.

    Tiles are emitted in recursion order, so neighbouring tiles are
    spatially close, like STR.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError("points must be an (n, d) array")
    if capacity < 1:
        raise ValueError("capacity must be positive")
    indices = np.arange(points.shape[0], dtype=np.intp)
    out: list[np.ndarray] = []
    _kd_recurse(points, indices, capacity, out)
    return out


def _kd_recurse(
    points: np.ndarray, indices: np.ndarray, capacity: int, out: list[np.ndarray]
) -> None:
    n = indices.size
    if n == 0:
        return
    if n <= capacity:
        out.append(indices)
        return
    subset = points[indices]
    axis = int(np.argmax(subset.max(axis=0) - subset.min(axis=0)))
    order = indices[np.argsort(subset[:, axis], kind="stable")]
    # Split at a page-aligned position closest to the median so both
    # halves pack into full pages.
    n_pages = math.ceil(n / capacity)
    left_pages = n_pages // 2
    split = min(left_pages * capacity, n - 1)
    if split == 0:
        split = capacity
    _kd_recurse(points, order[:split], capacity, out)
    _kd_recurse(points, order[split:], capacity, out)
