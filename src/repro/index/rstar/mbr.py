"""Minimum bounding rectangles (hyper-rectangles) and their algebra."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


class MBR:
    """Axis-aligned minimum bounding rectangle in d dimensions."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: np.ndarray, hi: np.ndarray):
        self.lo = np.asarray(lo, dtype=float)
        self.hi = np.asarray(hi, dtype=float)
        if self.lo.shape != self.hi.shape or self.lo.ndim != 1:
            raise ValueError("lo and hi must be 1-d arrays of equal shape")
        if np.any(self.lo > self.hi):
            raise ValueError("MBR must satisfy lo <= hi in every dimension")

    @classmethod
    def from_points(cls, points: np.ndarray) -> "MBR":
        """Tightest MBR of a non-empty point set."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("need a non-empty (n, d) point array")
        return cls(points.min(axis=0), points.max(axis=0))

    @classmethod
    def from_mbrs(cls, mbrs: Iterable["MBR"]) -> "MBR":
        """Tightest MBR enclosing a non-empty collection of MBRs."""
        mbrs = list(mbrs)
        if not mbrs:
            raise ValueError("need at least one MBR")
        lo = np.min([m.lo for m in mbrs], axis=0)
        hi = np.max([m.hi for m in mbrs], axis=0)
        return cls(lo, hi)

    @property
    def dimension(self) -> int:
        """Number of dimensions."""
        return int(self.lo.size)

    @property
    def extents(self) -> np.ndarray:
        """Per-dimension side lengths."""
        return self.hi - self.lo

    def volume(self) -> float:
        """Product of the side lengths (the R*-tree "area")."""
        return float(np.prod(self.extents))

    def margin(self) -> float:
        """Sum of the side lengths (the R*-tree "margin")."""
        return float(np.sum(self.extents))

    def center(self) -> np.ndarray:
        """Geometric center point."""
        return (self.lo + self.hi) / 2.0

    def union(self, other: "MBR") -> "MBR":
        """Smallest MBR enclosing both rectangles."""
        return MBR(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    def union_point(self, point: np.ndarray) -> "MBR":
        """Smallest MBR enclosing this rectangle and one point."""
        point = np.asarray(point, dtype=float)
        return MBR(np.minimum(self.lo, point), np.maximum(self.hi, point))

    def enlargement(self, point: np.ndarray) -> float:
        """Volume increase needed to include ``point``."""
        return self.union_point(point).volume() - self.volume()

    def intersects(self, other: "MBR") -> bool:
        """Whether the two rectangles share at least one point."""
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    def overlap_volume(self, other: "MBR") -> float:
        """Volume of the intersection (0 when disjoint)."""
        lo = np.maximum(self.lo, other.lo)
        hi = np.minimum(self.hi, other.hi)
        sides = hi - lo
        if np.any(sides < 0):
            return 0.0
        return float(np.prod(sides))

    def contains_point(self, point: np.ndarray) -> bool:
        """Whether ``point`` lies inside (boundary inclusive)."""
        point = np.asarray(point, dtype=float)
        return bool(np.all(self.lo <= point) and np.all(point <= self.hi))

    def copy(self) -> "MBR":
        """Independent copy."""
        return MBR(self.lo.copy(), self.hi.copy())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MBR):
            return NotImplemented
        return bool(np.array_equal(self.lo, other.lo) and np.array_equal(self.hi, other.hi))

    def __repr__(self) -> str:
        return f"MBR(lo={np.round(self.lo, 3)}, hi={np.round(self.hi, 3)})"


def mindist_many(lo: np.ndarray, hi: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Euclidean MINDIST from each query point to the box ``[lo, hi]``.

    Vectorised over queries: ``queries`` has shape ``(m, d)`` and the
    result shape ``(m,)``.  Used by the multiple-query engine to test the
    relevance of an in-memory page for every pending query at once.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=float))
    gap = np.maximum(np.maximum(lo - queries, queries - hi), 0.0)
    return np.sqrt(np.einsum("ij,ij->i", gap, gap))


def overlap_with_siblings(mbr: MBR, siblings: Sequence[MBR]) -> float:
    """Total intersection volume between ``mbr`` and a set of siblings."""
    return sum(mbr.overlap_volume(s) for s in siblings)
