"""The R*-tree topological split (Beckmann et al., SIGMOD 1990).

Works on any set of rectangles given as ``(los, his)`` arrays; point
entries are rectangles with ``lo == hi``.  The X-tree calls this split
first and falls back to a supernode when the result has too much overlap
and no balanced overlap-free alternative exists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SplitResult:
    """Outcome of a node split: entry index sets of the two groups."""

    left: np.ndarray
    right: np.ndarray
    axis: int
    overlap: float
    left_volume: float
    right_volume: float

    @property
    def total_volume(self) -> float:
        """Combined volume of both group MBRs."""
        return self.left_volume + self.right_volume


def _group_bounds(
    los: np.ndarray, his: np.ndarray, idx: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    return los[idx].min(axis=0), his[idx].max(axis=0)


def _volume(lo: np.ndarray, hi: np.ndarray) -> float:
    return float(np.prod(hi - lo))


def _margin(lo: np.ndarray, hi: np.ndarray) -> float:
    return float(np.sum(hi - lo))


def _overlap(
    lo1: np.ndarray, hi1: np.ndarray, lo2: np.ndarray, hi2: np.ndarray
) -> float:
    sides = np.minimum(hi1, hi2) - np.maximum(lo1, lo2)
    if np.any(sides < 0):
        return 0.0
    return float(np.prod(sides))


def _distributions(n: int, min_fill: int) -> list[int]:
    """Legal sizes of the first group when splitting ``n`` entries."""
    return list(range(min_fill, n - min_fill + 1))


def rstar_split(
    los: np.ndarray,
    his: np.ndarray,
    min_fill_fraction: float = 0.4,
) -> SplitResult:
    """Split ``n`` rectangle entries into two groups, R*-style.

    1. *Choose split axis*: for every dimension, sort entries by their
       lower and by their upper boundary and sum the margins of all legal
       two-group distributions; pick the dimension with the least sum.
    2. *Choose split index*: on that axis pick the distribution with the
       least overlap between the two group MBRs, ties broken by least
       total volume.

    Returns the entry index sets of both groups.
    """
    los = np.asarray(los, dtype=float)
    his = np.asarray(his, dtype=float)
    if los.ndim != 2 or los.shape != his.shape:
        raise ValueError("los/his must be matching (n, d) arrays")
    n, d = los.shape
    if n < 2:
        raise ValueError("cannot split fewer than two entries")
    min_fill = max(1, int(min_fill_fraction * n))
    if 2 * min_fill > n:
        min_fill = n // 2
    sizes = _distributions(n, min_fill)

    best_axis = -1
    best_axis_margin = np.inf
    axis_orders: dict[int, list[np.ndarray]] = {}
    for axis in range(d):
        orders = [
            np.argsort(los[:, axis], kind="stable"),
            np.argsort(his[:, axis], kind="stable"),
        ]
        axis_orders[axis] = orders
        margin_sum = 0.0
        for order in orders:
            for size in sizes:
                left, right = order[:size], order[size:]
                lo1, hi1 = _group_bounds(los, his, left)
                lo2, hi2 = _group_bounds(los, his, right)
                margin_sum += _margin(lo1, hi1) + _margin(lo2, hi2)
        if margin_sum < best_axis_margin:
            best_axis_margin = margin_sum
            best_axis = axis

    best: SplitResult | None = None
    for order in axis_orders[best_axis]:
        for size in sizes:
            left, right = order[:size], order[size:]
            lo1, hi1 = _group_bounds(los, his, left)
            lo2, hi2 = _group_bounds(los, his, right)
            overlap = _overlap(lo1, hi1, lo2, hi2)
            vol1, vol2 = _volume(lo1, hi1), _volume(lo2, hi2)
            candidate = SplitResult(
                left=left,
                right=right,
                axis=best_axis,
                overlap=overlap,
                left_volume=vol1,
                right_volume=vol2,
            )
            if (
                best is None
                or candidate.overlap < best.overlap
                or (
                    candidate.overlap == best.overlap
                    and candidate.total_volume < best.total_volume
                )
            ):
                best = candidate
    assert best is not None
    return best
