"""The R*-tree access method (Beckmann, Kriegel, Schneider, Seeger 1990).

The X-tree implementation in :mod:`repro.index.xtree` is structurally an
R*-tree plus the supernode fallback for high-overlap directory splits.
Disabling that fallback (``max_overlap = inf`` accepts every topological
split) recovers the plain R*-tree, which the X-tree paper -- and Sec. 6
of the reproduced paper -- uses as the baseline to beat in high
dimensions.  Bulk loading defaults to classic Sort-Tile-Recursive
packing, the standard R-tree loader, instead of the X-tree's
kd-partitioning; both the degenerating STR tiles and the overlapping
directory are exactly the effects the ``index.node_visit`` /
``index.prune`` telemetry makes visible when comparing the two trees on
the same workload.
"""

from __future__ import annotations

from typing import Any

from repro.data import Dataset
from repro.index.xtree import MIN_FANOUT_FRACTION, XTree
from repro.metric.space import MetricSpace
from repro.storage.disk import SimulatedDisk


class RStarTree(XTree):
    """Plain R*-tree: the X-tree with supernodes disabled.

    Accepts the same parameters as :class:`~repro.index.xtree.XTree`
    except the supernode policy knob ``max_overlap``, which is pinned to
    infinity so ``n_supernodes`` stays 0 and every directory overflow is
    resolved by the R* topological split.
    """

    name = "rstar"

    def __init__(
        self,
        dataset: Dataset,
        space: MetricSpace,
        disk: SimulatedDisk,
        leaf_capacity: int | None = None,
        dir_capacity: int | None = None,
        bulk_load: bool = True,
        bulk_loader: str = "str",
        min_fanout_fraction: float = MIN_FANOUT_FRACTION,
    ):
        super().__init__(
            dataset,
            space,
            disk,
            leaf_capacity=leaf_capacity,
            dir_capacity=dir_capacity,
            bulk_load=bulk_load,
            bulk_loader=bulk_loader,
            max_overlap=float("inf"),
            min_fanout_fraction=min_fanout_fraction,
        )

    def prefilter_profile(self) -> dict[str, Any]:
        """Quantized intervals, like the X-tree: the sketch compensates
        in metric space for the directory overlap STR packing leaves."""
        return {"kind": "quantized", "bits": None, "pivot_hints": None}
