"""The VA-file access method (Weber, Schek, Blott, VLDB 1998).

The paper cites the VA-file [22] as the scan-based method of choice in
very high dimensions: a compact *vector approximation* file holds a few
bits per dimension for every object; a query first scans the small
approximation file sequentially, derives per-object distance bounds,
and only reads the full vectors of objects whose lower bound does not
already disqualify them.

Integration with the multiple-query engine: the page stream performs the
approximation scan for the driving query (charged as sequential reads of
the approximation pages plus one bound computation per object) and then
delivers the data pages containing surviving candidates in ascending
lower-bound order.  Other queries of a batch are served from the same
in-memory pages via the triangle-inequality machinery of the engine.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.data import Dataset, VectorDataset
from repro.index.base import AccessMethod, PageStream
from repro.metric.distances import EuclideanDistance
from repro.metric.space import MetricSpace
from repro.storage.disk import SimulatedDisk
from repro.storage.layout import data_page_capacity, paginate
from repro.storage.page import Page, PageKind


class _VAFileStream(PageStream):
    """Approximation-scan stream: data pages by ascending lower bound."""

    def __init__(self, vafile: "VAFile", query_obj: np.ndarray):
        super().__init__(vafile)
        self._vafile = vafile
        query = np.asarray(query_obj, dtype=float)
        # Phase 1: sequential scan of the approximation file.
        vafile.disk.reset_head()
        for page in vafile.approximation_pages:
            vafile.disk.read(page, sequential=True)
        lower = vafile.lower_bounds(query)
        vafile.space.counters.mindist_evaluations += len(lower)
        # Aggregate object bounds to page bounds.
        page_bounds = [
            (float(lower[page.indices].min()), i)
            for i, page in enumerate(vafile.vector_pages)
            if page.n_objects > 0
        ]
        page_bounds.sort()
        self._ordered = page_bounds
        self._position = 0
        self._telemetry = vafile.traversal_telemetry()
        if self._telemetry is not None:
            self._lower = lower
            self._telemetry.observer.event(
                "index.filter",
                access=vafile.name,
                objects=len(lower),
                pages=len(page_bounds),
                approx_pages=len(vafile.approximation_pages),
            )

    def next_page(self, radius: float) -> tuple[float, Page] | None:
        if self._position >= len(self._ordered) or (
            self._ordered[self._position][0] > radius
        ):
            if self._telemetry is not None and not self._telemetry.closed:
                # Candidate set at the final radius: objects whose
                # approximation-derived lower bound does not disqualify
                # them (the VA-file phase-1 filter output, Sec. 5.2).
                if np.isfinite(radius):
                    candidates = int(np.count_nonzero(self._lower <= radius))
                else:
                    candidates = len(self._lower)
                self._telemetry.observer.metrics.set_gauge(
                    "index.vafile.candidates", candidates
                )
                self._telemetry.finish(
                    pending=len(self._ordered) - self._position,
                    candidates=candidates,
                )
            return None
        bound, page_index = self._ordered[self._position]
        self._position += 1
        page = self._vafile.vector_pages[page_index]
        if self._telemetry is not None:
            self._telemetry.node_visit(
                level=0,
                entries=page.n_objects,
                pushed=1,
                pruned=0,
                page_id=page.page_id,
            )
        return bound, page


class VAFile(AccessMethod):
    """Vector-approximation file over a :class:`VectorDataset`.

    Parameters
    ----------
    bits_per_dim:
        Grid resolution; the approximation file stores
        ``n * d * bits_per_dim / 8`` bytes.
    """

    name = "vafile"
    sequential_data_access = False

    def __init__(
        self,
        dataset: Dataset,
        space: MetricSpace,
        disk: SimulatedDisk,
        bits_per_dim: int = 6,
    ):
        super().__init__(dataset, space, disk)
        if not isinstance(dataset, VectorDataset):
            raise TypeError("the VA-file requires a VectorDataset")
        if not isinstance(space.distance, EuclideanDistance):
            raise ValueError("the VA-file bounds are derived for Euclidean distance")
        if not 1 <= bits_per_dim <= 16:
            raise ValueError("bits_per_dim must be between 1 and 16")
        self.bits_per_dim = bits_per_dim
        vectors = dataset.vectors
        n, d = vectors.shape

        # Uniform grid per dimension over the data range.
        n_cells = 2**bits_per_dim
        lo = vectors.min(axis=0)
        hi = vectors.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)
        self.grid_lo = lo
        self.grid_step = span / n_cells
        codes = np.clip(
            ((vectors - lo) / self.grid_step).astype(np.int32), 0, n_cells - 1
        )
        self.codes = codes
        self.n_cells = n_cells
        # Cell interval cache: the bound computations below used to
        # re-materialise both (n, d) interval arrays on every call --
        # one query at a time, on the hot path of every stream open.
        # The cells are a pure function of the codes and the grid, so
        # they are built once here and shared read-only.
        self._cell_lo = lo + codes * self.grid_step
        self._cell_lo.setflags(write=False)
        self._cell_hi = self._cell_lo + self.grid_step
        self._cell_hi.setflags(write=False)

        # Full vectors on regular data pages.
        capacity = data_page_capacity(d, disk.block_size)
        self.vector_pages = paginate(
            n, capacity, first_page_id=disk.allocate_page_id()
        )
        disk.register_all(self.vector_pages)

        # Approximation file pages (read on every query).
        approx_bytes = n * d * bits_per_dim / 8
        n_approx_pages = max(1, math.ceil(approx_bytes / disk.block_size))
        first_approx_id = disk.allocate_page_id()
        self.approximation_pages = [
            Page(page_id=first_approx_id + offset, kind=PageKind.DIRECTORY)
            for offset in range(n_approx_pages)
        ]
        disk.register_all(self.approximation_pages)

    def lower_bounds(self, query: np.ndarray) -> np.ndarray:
        """Per-object Euclidean lower bounds from the approximation cells.

        For each dimension the gap between the query coordinate and the
        cell interval of the object is accumulated; a point inside the
        cell contributes zero.
        """
        gap = np.maximum(
            np.maximum(self._cell_lo - query, query - self._cell_hi), 0.0
        )
        return np.sqrt(np.einsum("ij,ij->i", gap, gap))

    def upper_bounds(self, query: np.ndarray) -> np.ndarray:
        """Per-object Euclidean upper bounds from the approximation cells."""
        gap = np.maximum(
            np.abs(query - self._cell_lo), np.abs(self._cell_hi - query)
        )
        return np.sqrt(np.einsum("ij,ij->i", gap, gap))

    def lower_bounds_many(self, queries: np.ndarray) -> np.ndarray:
        """Lower bounds for a query batch in one pass: shape ``(m, n)``.

        Equivalent to stacking :meth:`lower_bounds` per query, but the
        cell-interval comparison runs once over the broadcast
        ``(m, n, d)`` block instead of ``m`` Python-level iterations.
        Purely computational: no counters are charged here (callers
        charge ``mindist_evaluations`` per bound they consume, exactly
        as for the single-query form).
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        gap = np.maximum(
            np.maximum(
                self._cell_lo[None, :, :] - queries[:, None, :],
                queries[:, None, :] - self._cell_hi[None, :, :],
            ),
            0.0,
        )
        return np.sqrt(np.einsum("mij,mij->mi", gap, gap))

    def upper_bounds_many(self, queries: np.ndarray) -> np.ndarray:
        """Upper bounds for a query batch in one pass: shape ``(m, n)``."""
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        gap = np.maximum(
            np.abs(queries[:, None, :] - self._cell_lo[None, :, :]),
            np.abs(self._cell_hi[None, :, :] - queries[:, None, :]),
        )
        return np.sqrt(np.einsum("mij,mij->mi", gap, gap))

    def data_pages(self) -> list[Page]:
        return list(self.vector_pages)

    def page_stream(self, query_obj: Any) -> PageStream:
        return _VAFileStream(self, query_obj)

    def prefilter_profile(self) -> dict[str, Any]:
        """Quantized intervals at the file's own grid resolution: the
        sketch then mirrors the VA-file's bit-budget discipline."""
        return {
            "kind": "quantized",
            "bits": self.bits_per_dim,
            "pivot_hints": None,
        }

    def summary(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "pages": len(self.vector_pages),
            "approximation_pages": len(self.approximation_pages),
            "bits_per_dim": self.bits_per_dim,
        }
