"""The linear scan access method.

Query processing by sequential scan is the baseline of the paper: every
data page is relevant for every query, pages are read in physical order
(sequential I/O), and for a multiple similarity query a single pass over
the database answers the whole batch -- which is exactly why the scan's
I/O cost per query drops by a factor of ``m`` (Sec. 5.1).
"""

from __future__ import annotations

from typing import Any

from repro.data import Dataset
from repro.index.base import AccessMethod, PageStream
from repro.metric.space import MetricSpace
from repro.storage.disk import SimulatedDisk
from repro.storage.layout import data_page_capacity, paginate
from repro.storage.page import DEFAULT_BLOCK_SIZE, Page


class _ScanStream(PageStream):
    """Physical-order stream; the lower bound of every page is 0."""

    def __init__(self, scan: "LinearScan"):
        super().__init__(scan)
        self._pages = scan.data_pages()
        self._position = 0
        self._telemetry = scan.traversal_telemetry()
        scan.disk.reset_head()

    def next_page(self, radius: float) -> tuple[float, Page] | None:
        if radius < 0 or self._position >= len(self._pages):
            if self._telemetry is not None:
                self._telemetry.finish(pending=len(self._pages) - self._position)
            return None
        page = self._pages[self._position]
        self._position += 1
        if self._telemetry is not None:
            self._telemetry.node_visit(
                level=0,
                entries=page.n_objects,
                pushed=1,
                pruned=0,
                page_id=page.page_id,
            )
        return 0.0, page


class LinearScan(AccessMethod):
    """Sequential scan over all data pages in physical order."""

    name = "scan"
    sequential_data_access = True

    def __init__(
        self,
        dataset: Dataset,
        space: MetricSpace,
        disk: SimulatedDisk,
        page_capacity: int | None = None,
    ):
        super().__init__(dataset, space, disk)
        if page_capacity is None:
            if dataset.is_vector:
                page_capacity = data_page_capacity(
                    dataset.dimension, disk.block_size
                )
            else:
                page_capacity = max(1, disk.block_size // 256)
        self.page_capacity = page_capacity
        self._pages = paginate(
            len(dataset), page_capacity, first_page_id=disk.allocate_page_id()
        )
        disk.register_all(self._pages)

    def data_pages(self) -> list[Page]:
        return list(self._pages)

    def page_stream(self, query_obj: Any) -> PageStream:
        return _ScanStream(self)

    def prefilter_profile(self) -> dict[str, Any]:
        """Raw pivot intervals: the scan stream has no distance ranking
        of its own, so the sketch tier is its only page pruning."""
        return {"kind": "pivot", "bits": None, "pivot_hints": None}

    def summary(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "pages": len(self._pages),
            "page_capacity": self.page_capacity,
            "block_size": self.disk.block_size,
        }


def make_scan(
    dataset: Dataset,
    space: MetricSpace,
    disk: SimulatedDisk | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> LinearScan:
    """Convenience constructor creating a disk when none is supplied."""
    if disk is None:
        disk = SimulatedDisk(space.counters, block_size=block_size)
    return LinearScan(dataset, space, disk)
