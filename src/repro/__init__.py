"""repro -- multiple similarity queries for mining in metric databases.

A from-scratch reproduction of Braunmüller, Ester, Kriegel, Sander:
*Efficiently Supporting Multiple Similarity Queries for Mining in Metric
Databases* (ICDE 2000): the multiple-similarity-query operator with I/O
sharing and triangle-inequality distance avoidance, the access methods
it runs on (linear scan, X-tree, M-tree, VA-file) over a simulated
paged disk, the ExploreNeighborhoods mining scheme and its instances,
a shared-nothing parallel simulator, and the full evaluation harness
reproducing Figures 7-12.

Quick start::

    import numpy as np
    from repro import Database, knn_query

    data = np.random.default_rng(0).random((10_000, 20))
    db = Database(data, access="xtree")
    queries = data[:100]

    answers = db.multiple_similarity_query(queries, knn_query(10))

Or, through a streaming query session (answers arrive incrementally)::

    session = db.session()
    for event in session.stream(queries[:16], knn_query(10)):
        ...  # AnswerEvent / QueryCompleted
"""

from repro.core import (
    Answer,
    AnswerList,
    Database,
    MeasuredRun,
    MultiQueryProcessor,
    QueryPlanner,
    QueryType,
    WorkloadPlan,
    bounded_knn_query,
    knn_query,
    neighbor_ranking,
    neighbors_within_factor,
    range_query,
    run_in_blocks,
)
from repro.costmodel import CostModel, Counters
from repro.data import GenericDataset, VectorDataset, as_dataset
from repro.metric import MetricSpace, check_metric_axioms, get_distance
from repro.service import (
    AnswerEvent,
    QueryCompleted,
    QueryScheduler,
    QuerySession,
    Ticket,
)

__version__ = "1.0.0"

__all__ = [
    "Answer",
    "AnswerEvent",
    "AnswerList",
    "CostModel",
    "Counters",
    "Database",
    "GenericDataset",
    "MeasuredRun",
    "MetricSpace",
    "MultiQueryProcessor",
    "QueryCompleted",
    "QueryPlanner",
    "QueryScheduler",
    "QuerySession",
    "QueryType",
    "Ticket",
    "WorkloadPlan",
    "VectorDataset",
    "as_dataset",
    "bounded_knn_query",
    "check_metric_axioms",
    "get_distance",
    "knn_query",
    "neighbor_ranking",
    "neighbors_within_factor",
    "range_query",
    "run_in_blocks",
    "__version__",
]
