"""Query workload generators for the Sec. 6 evaluation scenarios.

The independent-query workload (astronomy scenario) lives here; the
dependent-query workload (manual exploration by concurrent users, image
scenario) is a full simulator and lives in
:mod:`repro.mining.exploration`.
"""

from __future__ import annotations

import numpy as np

from repro.data import Dataset


def sample_database_queries(
    dataset: Dataset, n_queries: int, seed: int = 0
) -> list[int]:
    """Independent queries: ``n_queries`` random database objects.

    This is the astronomy scenario of Sec. 6 (simultaneous
    classification): "M objects from the database were chosen randomly".
    Returns dataset indices; sampled without replacement when possible.
    """
    rng = np.random.default_rng(seed)
    n = len(dataset)
    if n == 0:
        raise ValueError("cannot sample queries from an empty dataset")
    if n_queries <= n:
        return [int(i) for i in rng.choice(n, size=n_queries, replace=False)]
    return [int(i) for i in rng.integers(0, n, size=n_queries)]
