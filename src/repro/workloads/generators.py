"""Dataset generators.

Both paper datasets are real measurement data, whose decisive properties
are (a) low *intrinsic* dimensionality despite a high embedding
dimension -- which is what makes an X-tree selective at all -- and
(b) cluster structure, mild for the star catalogue ("almost uniformly
distributed" at the macro scale) and strong for the colour histograms
("highly clustered").  The generators reproduce those properties:

* cluster centres live on a random low-dimensional affine subspace of
  the feature space (correlated features);
* every cluster additionally varies along its own small random
  subspace, plus a little isotropic noise (local low intrinsic
  dimension);
* physical storage order interleaves the clusters, as real acquisition
  order does (stars in scan order, snapshots over time).

Defaults are calibrated so that the relative costs of the paper's
evaluation -- single-query X-tree advantage over the scan, multi-query
I/O and CPU reductions -- land in the regime the paper reports (see
EXPERIMENTS.md for measured values).
"""

from __future__ import annotations

import numpy as np

from repro.data import GenericDataset, VectorDataset


def make_astronomy(
    n: int = 40_000,
    dimension: int = 20,
    n_clusters: int = 100,
    latent_dimension: int = 6,
    center_scale: float = 0.45,
    subspace_dimension: int = 4,
    subspace_scale: float = 0.06,
    noise: float = 0.01,
    n_classes: int = 7,
    seed: int = 0,
) -> VectorDataset:
    """Stand-in for the Tycho catalogue: 20-d stellar feature vectors.

    Cluster centres are an affine image of ``latent_dimension`` uniform
    factors (correlated photometric features); each cluster spreads
    along its own ``subspace_dimension``-dimensional basis.  Labels
    model spectral classes: clusters are assigned round-robin to
    ``n_classes`` classes, so k-NN classification is learnable.
    """
    rng = np.random.default_rng(seed)
    latent = rng.random((n_clusters, latent_dimension))
    projection = rng.standard_normal((latent_dimension, dimension)) * center_scale
    centers = 0.5 + (latent - 0.5) @ projection
    assign = rng.integers(0, n_clusters, n)
    bases = rng.standard_normal((n_clusters, subspace_dimension, dimension))
    bases *= subspace_scale
    coords = rng.standard_normal((n, subspace_dimension))
    points = centers[assign] + np.einsum("ij,ijk->ik", coords, bases[assign])
    points += rng.standard_normal((n, dimension)) * noise
    labels = assign % n_classes
    return VectorDataset(np.clip(points, 0.0, 1.0), labels=labels)


def make_image_histograms(
    n: int = 12_000,
    dimension: int = 64,
    n_clusters: int = 150,
    active_bins: int = 10,
    concentration: float = 400.0,
    seed: int = 0,
) -> VectorDataset:
    """Stand-in for the TV-snapshot database: 64-d colour histograms.

    Each cluster (a recurring scene type) has a sparse Dirichlet centre
    concentrated on ``active_bins`` colour bins; its members are
    Dirichlet draws around the centre, so every object is a valid
    histogram (non-negative, unit sum).  Cluster sizes are Zipf-skewed:
    a few scene types dominate, as in real broadcast material.  Labels
    are cluster identifiers.
    """
    rng = np.random.default_rng(seed)
    alphas = np.full((n_clusters, dimension), 0.04)
    for c in range(n_clusters):
        hot = rng.choice(dimension, size=active_bins, replace=False)
        alphas[c, hot] = 1.2
    centers = np.vstack([rng.dirichlet(a) for a in alphas])
    weights = 1.0 / np.arange(1, n_clusters + 1) ** 0.8
    weights /= weights.sum()
    assign = rng.choice(n_clusters, size=n, p=weights)
    points = np.empty((n, dimension))
    for i, c in enumerate(assign):
        points[i] = rng.dirichlet(centers[c] * concentration + 0.01)
    return VectorDataset(points, labels=assign)


def make_uniform(
    n: int = 10_000, dimension: int = 16, seed: int = 0
) -> VectorDataset:
    """Uniformly distributed vectors in the unit cube (worst case for
    any index, per [14] and [22])."""
    rng = np.random.default_rng(seed)
    return VectorDataset(rng.random((n, dimension)))


def make_gaussian_mixture(
    n: int = 10_000,
    dimension: int = 16,
    n_clusters: int = 20,
    cluster_std: float = 0.04,
    seed: int = 0,
) -> VectorDataset:
    """Plain isotropic Gaussian mixture (simple clustered benchmark)."""
    rng = np.random.default_rng(seed)
    centers = rng.random((n_clusters, dimension))
    assign = rng.integers(0, n_clusters, n)
    points = centers[assign] + rng.standard_normal((n, dimension)) * cluster_std
    return VectorDataset(np.clip(points, 0.0, 1.0), labels=assign)


_SITE_SECTIONS = [
    "home",
    "news",
    "sports",
    "science",
    "shop",
    "forum",
    "about",
    "help",
]


def make_web_sessions(
    n: int = 500,
    max_depth: int = 6,
    n_profiles: int = 8,
    seed: int = 0,
) -> GenericDataset:
    """WWW sessions as URL-path strings, the paper's non-vector example.

    Sessions are random walks over a small site: each user profile
    prefers a couple of sections, so sessions cluster by profile under
    edit distance.  Use with ``metric="levenshtein"`` and the M-tree.
    """
    rng = np.random.default_rng(seed)
    profiles = [
        rng.choice(len(_SITE_SECTIONS), size=2, replace=False)
        for _ in range(n_profiles)
    ]
    sessions: list[str] = []
    labels: list[int] = []
    for _ in range(n):
        profile_id = int(rng.integers(0, n_profiles))
        preferred = profiles[profile_id]
        depth = int(rng.integers(2, max_depth + 1))
        parts: list[str] = []
        for _ in range(depth):
            if rng.random() < 0.75:
                section = _SITE_SECTIONS[int(rng.choice(preferred))]
            else:
                section = _SITE_SECTIONS[int(rng.integers(0, len(_SITE_SECTIONS)))]
            parts.append(f"{section}/{int(rng.integers(0, 10))}")
        sessions.append("/" + "/".join(parts))
        labels.append(profile_id)
    return GenericDataset(sessions, labels=labels)
