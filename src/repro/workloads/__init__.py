"""Synthetic stand-ins for the paper's evaluation datasets and queries.

The paper evaluated on two proprietary datasets: 20-d feature vectors of
1,000,000 stars (Tycho catalogue) and 64-d colour histograms of 112,000
TV snapshots.  Neither is available, so this package generates datasets
with the *distributional properties the paper's effects depend on* --
see DESIGN.md, substitution table -- at sizes that run on a laptop.
"""

from repro.workloads.generators import (
    make_astronomy,
    make_gaussian_mixture,
    make_image_histograms,
    make_uniform,
    make_web_sessions,
)
from repro.workloads.loadgen import (
    LoadReport,
    LoadTrace,
    TraceRecord,
    compare_answers,
    load_trace,
    record_trace,
    replay_in_process,
    replay_over_wire,
    save_trace,
    trace_dataset,
)
from repro.workloads.queries import sample_database_queries

__all__ = [
    "LoadReport",
    "LoadTrace",
    "TraceRecord",
    "compare_answers",
    "load_trace",
    "make_astronomy",
    "make_gaussian_mixture",
    "make_image_histograms",
    "make_uniform",
    "make_web_sessions",
    "record_trace",
    "replay_in_process",
    "replay_over_wire",
    "sample_database_queries",
    "save_trace",
    "trace_dataset",
]
