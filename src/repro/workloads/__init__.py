"""Synthetic stand-ins for the paper's evaluation datasets and queries.

The paper evaluated on two proprietary datasets: 20-d feature vectors of
1,000,000 stars (Tycho catalogue) and 64-d colour histograms of 112,000
TV snapshots.  Neither is available, so this package generates datasets
with the *distributional properties the paper's effects depend on* --
see DESIGN.md, substitution table -- at sizes that run on a laptop.
"""

from repro.workloads.generators import (
    make_astronomy,
    make_gaussian_mixture,
    make_image_histograms,
    make_uniform,
    make_web_sessions,
)
from repro.workloads.queries import sample_database_queries

__all__ = [
    "make_astronomy",
    "make_gaussian_mixture",
    "make_image_histograms",
    "make_uniform",
    "make_web_sessions",
    "sample_database_queries",
]
