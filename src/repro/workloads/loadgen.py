"""Trace-driven load generator for the query service.

The multi-user scenario of Sec. 5 only exists once many clients arrive
*concurrently*; this module makes that arrival process a first-class,
replayable artifact:

* :func:`record_trace` draws a seeded **open-loop** arrival process --
  exponential inter-arrival times at a configured rate over the demo
  workload's query mix (pure k-NN or the heterogeneous ``--mix``) --
  and :func:`save_trace`/:func:`load_trace` persist it as JSONL.
  Traces are compact (dataset indices, not vectors), so recording
  10^5-10^6 arrivals is cheap; replay resolves the vectors from the
  seeded dataset named in the trace header.
* :func:`replay_in_process` pushes the trace straight through a
  :class:`~repro.service.QueryScheduler` -- the reference run the wire
  path must match byte for byte.
* :func:`replay_over_wire` drives a :class:`~repro.net.QueryServer`
  through real sockets with open-loop pacing: each arrival is submitted
  at its trace offset regardless of outstanding work, so overload shows
  up as latency and shedding, exactly like production traffic.

Both replays produce a :class:`LoadReport` (p50/p99 latency, TTFA,
throughput, shed/degraded counts) whose :meth:`LoadReport.snapshot`
re-uses the SLO engine's metric names, so ``ci/slo.yml`` evaluates the
*client-observed* service level with zero new machinery.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.core.answers import Answer
from repro.core.types import QueryType, knn_query, range_query

#: Trace file schema marker (header line of the JSONL file).
TRACE_SCHEMA = "repro-load/1"


@dataclass(frozen=True)
class TraceRecord:
    """One arrival: when, who, and what to ask."""

    #: Seconds since trace start at which the query arrives (open loop).
    offset: float
    #: Logical client the arrival belongs to.
    client: int
    #: Dataset index the query vector is resolved from.
    db_index: int
    qtype: QueryType


@dataclass
class LoadTrace:
    """A recorded arrival trace plus the workload it was drawn over."""

    meta: dict[str, Any]
    records: list[TraceRecord]

    def __len__(self) -> int:
        return len(self.records)

    @property
    def duration(self) -> float:
        """Offset of the last arrival (seconds)."""
        return self.records[-1].offset if self.records else 0.0


def _mixed_qtype(position: int, k: int) -> QueryType:
    """The serve demo's heterogeneous mix: alternating k-NN and range."""
    if position % 2:
        return knn_query(k)
    return range_query(0.12 * (1 + (position // 2) % 3))


def record_trace(
    n_queries: int,
    rate: float,
    n_clients: int = 8,
    objects: int = 15_000,
    k: int = 10,
    mix: bool = False,
    seed: int = 1,
) -> LoadTrace:
    """Draw a seeded open-loop trace over the demo workload.

    Arrivals form a Poisson process at ``rate`` queries/second
    (exponential inter-arrival times), assigned round-robin to
    ``n_clients`` logical clients; query objects are random database
    objects (the Sec. 6 independent-query workload) with the query mix
    of the serve demo.  Everything is a pure function of the arguments,
    so a recorded trace replays identically forever.
    """
    if n_queries < 1:
        raise ValueError("need at least one query")
    if rate <= 0:
        raise ValueError("arrival rate must be positive")
    from repro.workloads.generators import make_gaussian_mixture
    from repro.workloads.queries import sample_database_queries

    dataset = make_gaussian_mixture(
        n=objects, dimension=12, n_clusters=30, cluster_std=0.03, seed=0
    )
    indices = sample_database_queries(dataset, n_queries, seed=seed)
    rng = np.random.default_rng(seed + 0x10AD)
    offsets = np.cumsum(rng.exponential(1.0 / rate, size=n_queries))
    records = [
        TraceRecord(
            offset=float(offsets[position]),
            client=position % n_clients,
            db_index=int(indices[position]),
            qtype=_mixed_qtype(position, k) if mix else knn_query(k),
        )
        for position in range(n_queries)
    ]
    meta = {
        "objects": objects,
        "dimension": 12,
        "n_clients": n_clients,
        "rate": rate,
        "k": k,
        "mix": mix,
        "seed": seed,
    }
    return LoadTrace(meta=meta, records=records)


def save_trace(trace: LoadTrace, path: str) -> int:
    """Write a trace as JSONL (header line + one line per arrival)."""
    from repro.net.protocol import qtype_to_wire

    with open(path, "w", encoding="utf-8") as handle:
        header = {"schema": TRACE_SCHEMA, **trace.meta}
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for record in trace.records:
            handle.write(
                json.dumps(
                    {
                        "offset": record.offset,
                        "client": record.client,
                        "db_index": record.db_index,
                        "qtype": qtype_to_wire(record.qtype),
                    },
                    sort_keys=True,
                )
                + "\n"
            )
    return len(trace.records)


def load_trace(path: str) -> LoadTrace:
    """Read a trace written by :func:`save_trace`."""
    from repro.net.protocol import qtype_from_wire

    with open(path, "r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line.strip():
            raise ValueError(f"{path!r} is empty")
        header = json.loads(header_line)
        if header.get("schema") != TRACE_SCHEMA:
            raise ValueError(
                f"{path!r} is not a {TRACE_SCHEMA} trace "
                f"(schema {header.get('schema')!r})"
            )
        header.pop("schema")
        records = []
        for line in handle:
            if not line.strip():
                continue
            raw = json.loads(line)
            records.append(
                TraceRecord(
                    offset=float(raw["offset"]),
                    client=int(raw["client"]),
                    db_index=int(raw["db_index"]),
                    qtype=qtype_from_wire(raw["qtype"]),
                )
            )
    return LoadTrace(meta=header, records=records)


def trace_dataset(trace: LoadTrace) -> Any:
    """Rebuild the seeded dataset a trace was recorded over."""
    from repro.workloads.generators import make_gaussian_mixture

    return make_gaussian_mixture(
        n=int(trace.meta.get("objects", 15_000)),
        dimension=int(trace.meta.get("dimension", 12)),
        n_clusters=30,
        cluster_std=0.03,
        seed=0,
    )


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------


def _quantile(values: Sequence[float], q: float) -> float:
    if not values:
        return float("nan")
    return float(np.quantile(np.asarray(values, dtype=np.float64), q))


@dataclass
class LoadReport:
    """Client-observed service level of one replay."""

    mode: str
    n_queries: int
    completed: int
    shed: int
    degraded: int
    wall_seconds: float
    offered_rate: float
    latencies: list[float] = field(default_factory=list, repr=False)
    ttfas: list[float] = field(default_factory=list, repr=False)
    completenesses: list[float] = field(default_factory=list, repr=False)
    #: Per-record flags, aligned with the trace: degraded deliveries are
    #: excluded from byte-identity verification (their partial answers
    #: are bounded by completeness, not equality).
    degraded_mask: list[bool] = field(default_factory=list, repr=False)

    @property
    def throughput(self) -> float:
        """Completed queries per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds

    def as_dict(self) -> dict[str, Any]:
        """Flat JSON-ready summary (CI artifacts, ``BENCH_net.json``)."""
        return {
            "mode": self.mode,
            "n_queries": self.n_queries,
            "completed": self.completed,
            "shed": self.shed,
            "degraded": self.degraded,
            "wall_seconds": self.wall_seconds,
            "offered_rate": self.offered_rate,
            "queries_per_second": self.throughput,
            "latency_p50_ms": _quantile(self.latencies, 0.50) * 1e3,
            "latency_p99_ms": _quantile(self.latencies, 0.99) * 1e3,
            "latency_mean_ms": (
                float(np.mean(self.latencies)) * 1e3 if self.latencies else float("nan")
            ),
            "ttfa_p50_ms": _quantile(self.ttfas, 0.50) * 1e3,
            "ttfa_p99_ms": _quantile(self.ttfas, 0.99) * 1e3,
        }

    def snapshot(self) -> dict[str, Any]:
        """A metrics snapshot of the client-observed signals.

        Re-uses the service metric names (client latency, TTFA,
        ticket completeness), so an SLO spec written for ``repro serve
        --slo`` evaluates unchanged against load-generator results.
        """
        from repro.obs.metrics import MetricsRegistry
        from repro.service.scheduler import COMPLETENESS_BOUNDS

        registry = MetricsRegistry()
        for latency in self.latencies:
            registry.observe("service.client_latency.seconds", latency)
        for ttfa in self.ttfas:
            registry.observe("service.time_to_first_answer.seconds", ttfa)
        registry.inc("service.tickets.completed", self.completed - self.degraded)
        if self.degraded:
            registry.inc("service.tickets.degraded", self.degraded)
        completeness = registry.histogram(
            "service.completeness", COMPLETENESS_BOUNDS
        )
        for value in self.completenesses:
            completeness.observe(value)
        registry.inc("loadgen.shed", self.shed)
        registry.set_gauge("loadgen.offered_rate", self.offered_rate)
        registry.set_gauge("loadgen.throughput", self.throughput)
        return registry.snapshot()

    def render(self) -> str:
        """Human-readable report block."""
        stats = self.as_dict()
        lines = [
            f"loadgen [{self.mode}]: {self.completed}/{self.n_queries} "
            f"completed, {self.shed} shed, {self.degraded} degraded "
            f"in {self.wall_seconds:.3f}s wall "
            f"({self.throughput:,.0f} q/s, offered {self.offered_rate:,.0f} q/s)",
            f"  latency: p50 {stats['latency_p50_ms']:.3f} ms  "
            f"p99 {stats['latency_p99_ms']:.3f} ms  "
            f"mean {stats['latency_mean_ms']:.3f} ms",
        ]
        if self.ttfas:
            lines.append(
                f"  ttfa:    p50 {stats['ttfa_p50_ms']:.3f} ms  "
                f"p99 {stats['ttfa_p99_ms']:.3f} ms"
            )
        if self.completenesses:
            lines.append(
                f"  degraded completeness: mean "
                f"{float(np.mean(self.completenesses)):.3f}  "
                f"min {min(self.completenesses):.3f}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Replay: in process
# ----------------------------------------------------------------------


def replay_in_process(
    trace: LoadTrace,
    database: Any = None,
    access: str = "xtree",
    engine: str = "auto",
    block_target: int = 8,
    max_block: int = 32,
    max_wait: int = 16,
    order: str = "fifo",
) -> tuple[list[list[Answer] | None], LoadReport]:
    """Replay a trace through an in-process scheduler (the reference).

    Submits every arrival in trace order on the logical tick clock and
    drains -- the exact request sequence the wire path produces with
    the pump disabled, so answers are comparable record for record.
    Returns per-record answer lists and the report (latency here is
    modelled-work wall time, not network time).
    """
    from repro.core.database import Database

    if database is None:
        database = Database(trace_dataset(trace), access=access, engine=engine)
    dataset = database.dataset
    scheduler = database.serve(
        block_target=block_target,
        max_block=max_block,
        max_wait=max_wait,
        order=order,
    )
    started = time.perf_counter()
    tickets = [
        scheduler.submit(
            dataset[record.db_index], record.qtype, client_id=record.client
        )
        for record in trace.records
    ]
    scheduler.drain()
    wall = time.perf_counter() - started
    answers: list[list[Answer] | None] = []
    report = LoadReport(
        mode="in-process",
        n_queries=len(trace.records),
        completed=0,
        shed=0,
        degraded=0,
        wall_seconds=wall,
        offered_rate=float(trace.meta.get("rate", 0.0)),
    )
    for ticket in tickets:
        answers.append(list(ticket.answers) if ticket.answers is not None else None)
        report.degraded_mask.append(bool(ticket.degraded))
        if not ticket.done:
            continue
        report.completed += 1
        report.latencies.append(wall / max(1, len(tickets)))
        if ticket.degraded:
            report.degraded += 1
            report.completenesses.append(ticket.completeness or 0.0)
    return answers, report


# ----------------------------------------------------------------------
# Replay: over the wire
# ----------------------------------------------------------------------


async def replay_over_wire(
    trace: LoadTrace,
    host: str,
    port: int,
    speed: float = 0.0,
    stream: bool = False,
    max_connections: int = 8,
    connect_timeout: float = 15.0,
    client_name: str = "loadgen",
) -> tuple[list[list[Answer] | None], LoadReport]:
    """Replay a trace against a live server with open-loop pacing.

    ``speed`` scales the recorded arrival clock (2.0 replays twice as
    fast); ``0`` disables pacing entirely and fires arrivals as fast as
    the sockets accept them -- the stress configuration.  Each logical
    client maps onto one of ``max_connections`` connections; submits
    never wait for earlier results (open loop), so queueing delay is
    measured, not masked.

    Returns per-record answers (``None`` for shed arrivals) and the
    client-observed :class:`LoadReport`.
    """
    from repro.net.client import QueryClient

    dataset = trace_dataset(trace)
    n_clients = max(1, int(trace.meta.get("n_clients", 1)))
    n_connections = min(max_connections, n_clients)
    clients = [
        await QueryClient.connect(
            host,
            port,
            client=f"{client_name}-{i}",
            timeout=connect_timeout,
        )
        for i in range(n_connections)
    ]
    try:
        started = time.perf_counter()
        futures = []
        for record in trace.records:
            if speed > 0:
                due = started + record.offset / speed
                delay = due - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
            client = clients[record.client % n_connections]
            futures.append(
                await client.submit(
                    dataset[record.db_index], record.qtype, stream=stream
                )
            )
        # Goodbye first: it makes the server drain, which flushes any
        # sub-block tail still queued (the request-driven server never
        # times a partial block out on its own -- ticks are logical).
        for client in clients:
            await client.bye()
        results = await asyncio.gather(*futures)
        wall = time.perf_counter() - started
    finally:
        for client in clients:
            await client.close()
    answers: list[list[Answer] | None] = []
    report = LoadReport(
        mode="wire",
        n_queries=len(trace.records),
        completed=0,
        shed=0,
        degraded=0,
        wall_seconds=wall,
        offered_rate=(
            float(trace.meta.get("rate", 0.0)) * speed
            if speed > 0
            else float("inf")
        ),
    )
    for result in results:
        report.degraded_mask.append(bool(result.degraded))
        if result.shed:
            report.shed += 1
            answers.append(None)
            continue
        report.completed += 1
        answers.append(result.answers)
        report.latencies.append(result.latency)
        if result.ttfa is not None:
            report.ttfas.append(result.ttfa)
        if result.degraded:
            report.degraded += 1
            report.completenesses.append(
                result.completeness if result.completeness is not None else 0.0
            )
    if not np.isfinite(report.offered_rate):
        report.offered_rate = (
            report.n_queries / wall if wall > 0 else 0.0
        )
    return answers, report


# ----------------------------------------------------------------------
# Verification
# ----------------------------------------------------------------------


def compare_answers(
    wire: Sequence[list[Answer] | None],
    reference: Sequence[list[Answer] | None],
    skip: Sequence[bool] | None = None,
) -> list[int]:
    """Indices where delivered answers diverge from the reference run.

    ``skip[i]`` marks records excluded from the comparison (degraded
    deliveries under fault injection: their partial answers are bounded
    by completeness, not equality).  Shed records (``None`` answers)
    are skipped on the wire side -- the reference completed them, the
    server refused them, and both behaviours are correct.
    """
    if len(wire) != len(reference):
        raise ValueError(
            f"answer lists cover {len(wire)} vs {len(reference)} records"
        )
    divergent = []
    for position, (got, want) in enumerate(zip(wire, reference)):
        if got is None or want is None:
            continue
        if skip is not None and skip[position]:
            continue
        if got != want:
            divergent.append(position)
    return divergent
