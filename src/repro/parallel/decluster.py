"""Data declustering strategies for the shared-nothing simulator.

The paper names data declustering strategies as future work (Sec. 7);
four standard strategies are provided so their effect can be measured
(see the declustering ablation benchmark):

* **round robin** -- object ``i`` goes to server ``i mod s``; spreads
  every cluster over every server (best load balance);
* **random** -- like round robin in expectation, seedable;
* **hash** -- deterministic hash of the object index;
* **range** -- contiguous chunks in storage order; keeps clusters
  together (worst load balance for skewed query workloads, but the
  cheapest to maintain).
"""

from __future__ import annotations

import numpy as np


def _validate(n_objects: int, n_servers: int) -> None:
    if n_servers < 1:
        raise ValueError("need at least one server")
    if n_objects < n_servers:
        raise ValueError("need at least one object per server")


def round_robin_decluster(n_objects: int, n_servers: int) -> list[np.ndarray]:
    """Assign object ``i`` to server ``i mod n_servers``."""
    _validate(n_objects, n_servers)
    indices = np.arange(n_objects, dtype=np.intp)
    return [indices[s::n_servers] for s in range(n_servers)]


def random_decluster(
    n_objects: int, n_servers: int, seed: int = 0
) -> list[np.ndarray]:
    """Assign objects to servers uniformly at random (balanced sizes)."""
    _validate(n_objects, n_servers)
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(n_objects).astype(np.intp)
    return [np.sort(permutation[s::n_servers]) for s in range(n_servers)]


def hash_decluster(n_objects: int, n_servers: int) -> list[np.ndarray]:
    """Assign object ``i`` by a multiplicative hash of its index."""
    _validate(n_objects, n_servers)
    indices = np.arange(n_objects, dtype=np.uint64)
    hashed = (indices * np.uint64(2654435761)) % np.uint64(2**32)
    assignment = (hashed % np.uint64(n_servers)).astype(np.intp)
    return [
        np.flatnonzero(assignment == s).astype(np.intp) for s in range(n_servers)
    ]


def range_decluster(n_objects: int, n_servers: int) -> list[np.ndarray]:
    """Split the storage order into ``n_servers`` contiguous chunks."""
    _validate(n_objects, n_servers)
    bounds = np.linspace(0, n_objects, n_servers + 1).astype(int)
    indices = np.arange(n_objects, dtype=np.intp)
    return [indices[bounds[s] : bounds[s + 1]] for s in range(n_servers)]


DECLUSTER_STRATEGIES = {
    "round_robin": round_robin_decluster,
    "random": random_decluster,
    "hash": hash_decluster,
    "range": range_decluster,
}
