"""Simulated shared-nothing execution of multiple similarity queries.

Each server owns one partition of the data with its own disk, buffer and
access method, and processes the *same* multiple similarity query on its
local data.  Per-query answers are merged (k best of the union for k-NN,
union for range queries).  Modelled elapsed time is the maximum over the
servers' modelled costs -- the paper's communication overhead "is very
small" (Sec. 5.3) and is neglected, like the merge itself.

Global correctness of per-server pruning: every optimisation a server
applies (query-distance matrix seeding, avoidance, page pruning) only
suppresses local answers that are provably farther than the query's
current k-th candidate; such objects can never enter the merged global
top-k, so merging the per-server answer lists yields exactly the global
answer set.

Following the parallel similarity-search design the paper builds on
([1], Berchtold et al., SIGMOD 1997), servers coordinate through cheap
candidate bounds: with ``share_home_bounds`` every query object's *home*
server (the one storing it) first processes the query's best local page,
and the resulting k-candidate distance -- a sound upper bound on the
global k-th-NN distance, since local candidates are global candidates --
is broadcast to all servers as their initial query distance.  The
broadcast itself is communication and, like the answer merge, is
neglected in the cost model.

Two execution backends share this logic:

* ``"model"`` (default) -- every server runs sequentially in-process;
  elapsed time is *modelled* as the slowest server's counter-derived
  cost.  Deterministic, dependency-free, used by the Figure 11/12
  harness.
* ``"process"`` -- true multi-core execution: one
  :class:`~concurrent.futures.ProcessPoolExecutor` worker per simulated
  server (pinned, so per-server state such as the LRU buffer persists
  across blocks), with the dataset vectors shipped once via
  ``multiprocessing.shared_memory`` instead of being pickled per task.
  Answers and counters are identical to the model backend; in addition
  each server reports its *measured* wall-clock seconds, so the modelled
  super-linear speed-up of Sec. 5.3 can be compared against real elapsed
  time on multi-core hardware.

Fault tolerance (``fault_plan``): a seeded
:class:`~repro.faults.FaultPlan` arms each server's disk with a fault
gate (site ``"server:<id>"``).  Page-read errors are retried in place by
the gate itself; a :class:`~repro.faults.ServerCrash` or straggler
:class:`~repro.faults.ServerTimeout` aborts the server's in-flight block
phase, which is then *re-dispatched*: the failed partition's state is
rolled back (counters, buffer, disk head) and the block phase replayed
deterministically -- modelling a survivor server taking over the
partition's replica, with the triangle-inequality bounds re-derived by
the replay itself.  Because injection happens before any counter is
charged and replay restarts from the rollback point, recovered runs
produce answers *and* per-partition cost counters byte-identical to the
fault-free run, on both backends.  Recovery is bounded by the plan's
:class:`~repro.faults.RetryPolicy`; an exhausted budget surfaces the
typed :class:`~repro.faults.FaultError` to the caller (the service layer
degrades instead, see :mod:`repro.service.session`).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.answers import Answer
from repro.core.database import Database, MeasuredRun
from repro.core.types import QueryType
from repro.costmodel import Counters
from repro.data import Dataset, GenericDataset, VectorDataset, as_dataset
from repro.faults import FaultError, FaultInjector, RetryPolicy
from repro.metric.distances import DistanceFunction
from repro.obs.observer import Observer, maybe_phase
from repro.obs.tracing import Tracer
from repro.parallel.decluster import DECLUSTER_STRATEGIES
from repro.service.session import QuerySession
from repro.storage.page import DEFAULT_BLOCK_SIZE


@dataclass
class _Server:
    """One shared-nothing server: a partition plus its own database."""

    server_id: int
    global_indices: np.ndarray
    database: Database

    def to_global(self, answers: list[Answer]) -> list[Answer]:
        """Translate local answer indices to global dataset indices."""
        return [
            Answer(int(self.global_indices[a.index]), a.distance) for a in answers
        ]


def _block_key(db_indices: Sequence[int] | None, position: int) -> Any:
    """Buffer key of the query at ``position`` (stable per block)."""
    if db_indices is not None:
        return ("parallel", int(db_indices[position]))
    return ("parallel-pos", position)


@dataclass
class _Block:
    """One parallel multiple-query block."""

    objs: list[Any]
    qtypes: list[QueryType]
    db_indices: list[int] | None
    seed_radius: list[float] | None

    def key(self, position: int) -> Any:
        """Buffer key of the query at ``position`` (stable per block)."""
        return _block_key(self.db_indices, position)


@dataclass
class ParallelRun:
    """Result of one parallel multiple similarity query."""

    answers: list[list[Answer]]
    per_server: list[MeasuredRun]
    #: Measured per-server wall-clock seconds (``backend="process"``
    #: only; ``None`` for the modelled backend).
    wall_seconds: list[float] | None = field(default=None)

    @property
    def elapsed_io_seconds(self) -> float:
        """Modelled elapsed I/O time (slowest server)."""
        return max(run.io_seconds for run in self.per_server)

    @property
    def elapsed_cpu_seconds(self) -> float:
        """Modelled elapsed CPU time (slowest server)."""
        return max(run.cpu_seconds for run in self.per_server)

    @property
    def elapsed_seconds(self) -> float:
        """Modelled elapsed total time (slowest server, I/O + CPU)."""
        return max(run.total_seconds for run in self.per_server)

    @property
    def aggregate_seconds(self) -> float:
        """Total work across all servers (for efficiency analyses)."""
        return sum(run.total_seconds for run in self.per_server)

    @property
    def elapsed_wall_seconds(self) -> float:
        """Measured elapsed wall-clock time (slowest server).

        Only available for ``backend="process"`` runs.
        """
        if self.wall_seconds is None:
            raise ValueError(
                "wall-clock times are only measured with backend='process'"
            )
        return max(self.wall_seconds)

    @property
    def skew(self) -> float:
        """Per-server load imbalance: slowest / mean modelled seconds.

        1.0 means perfectly balanced servers; the parallel speed-up of
        Sec. 5.3 degrades by exactly this factor, since elapsed time is
        the slowest server while work is the sum.  Returns 1.0 when no
        server did measurable work.
        """
        return _skew([run.total_seconds for run in self.per_server])

    @property
    def wall_skew(self) -> float:
        """Measured wall-clock skew (``backend="process"`` only)."""
        if self.wall_seconds is None:
            raise ValueError(
                "wall-clock times are only measured with backend='process'"
            )
        return _skew(self.wall_seconds)


def _skew(values: Sequence[float]) -> float:
    """max/mean of per-server times; 1.0 for empty or all-zero input."""
    if not values:
        return 1.0
    mean = sum(values) / len(values)
    if mean <= 0.0:
        return 1.0
    return max(values) / mean


def _slice_dataset(dataset: Dataset, indices: np.ndarray) -> Dataset:
    labels = dataset.labels[indices] if dataset.labels is not None else None
    if isinstance(dataset, VectorDataset):
        return VectorDataset(dataset.vectors[indices], labels=labels)
    return GenericDataset(dataset.batch(indices), labels=labels)


# ----------------------------------------------------------------------
# Shared per-server block logic (both backends)
# ----------------------------------------------------------------------


def _admit_block(
    database: Database, payload: dict[str, Any], keys: list[Any]
) -> tuple[QuerySession, dict[int, float]]:
    """Phase 1 of one server's block: admit, seed, warm home queries.

    Opens a fresh session over ``database``, submits every query of the
    block, applies matrix seeding and explicit radius seeds, then warms
    the queries *homed* at this server (``payload["home_positions"]``)
    on their best local page.  Returns the session and the home
    candidate bounds to broadcast (position -> radius) -- each bound is
    sound for the merged result because home candidates are global
    candidates, so their k-th distance bounds the global k-th-NN
    distance.
    """
    session = database.session(
        use_avoidance=payload["use_avoidance"],
        warm_start=payload["warm_start"],
        seed_from_queries=payload["db_indices"] is not None,
    )
    for position, (obj, qtype) in enumerate(
        zip(payload["objs"], payload["qtypes"])
    ):
        session.submit(
            obj,
            qtype,
            key=keys[position],
            db_index=(
                payload["db_indices"][position]
                if payload["db_indices"] is not None
                else None
            ),
        )
    if payload["db_indices"] is not None:
        session.seed_radius_hints(keys)
    if payload["seed_radius"] is not None:
        for key, radius in zip(keys, payload["seed_radius"]):
            session.bound_radius(key, float(radius))
    bounds: dict[int, float] = {}
    for position in payload["home_positions"]:
        if not payload["qtypes"][position].adapts_radius:
            continue
        session.warm_up([keys[position]])
        radius = session.radius(keys[position])
        if radius < float("inf"):
            bounds[position] = radius
    return session, bounds


def _recover_block(
    database: Database,
    injector: FaultInjector,
    server_id: int,
    n_servers: int,
    counters_snapshot: Counters,
    disk_state: dict[str, Any],
    fn: Callable[[], Any],
    retry_fn: Callable[[], Any] | None = None,
) -> Any:
    """Run one server's block phase under crash/straggler recovery.

    On a :class:`~repro.faults.FaultError` the server's mutable state is
    rolled back to the phase-entry snapshot (counters, buffer pool, disk
    head) and the phase replayed via ``retry_fn`` (default: ``fn``) --
    the re-dispatch of the failed partition to the survivor
    ``(server_id + 1) % n_servers``, which processes the partition's
    replica deterministically.  The replay starts from the same state
    the fault-free run would have had, so its answers and counters are
    byte-identical; the fault schedule itself is *not* rewound (the
    plan's RNG streams advance past the fault), exactly as a survivor
    would see fresh I/O outcomes.  Bounded by the injector's
    :class:`~repro.faults.RetryPolicy`; an exhausted budget re-raises
    the last fault.
    """
    injector.begin_block()
    attempt = 0
    while True:
        try:
            if attempt == 0:
                return fn()
            return (retry_fn or fn)()
        except FaultError as fault:
            attempt += 1
            if not injector.policy.allows(attempt):
                raise
            survivor = (server_id + 1) % max(1, n_servers)
            injector.record_redispatch(
                server_id, survivor, type(fault).__name__
            )
            database.counters.restore(counters_snapshot)
            database.disk.restore_state(disk_state)
            injector.begin_block()


# ----------------------------------------------------------------------
# Process-backend worker side
# ----------------------------------------------------------------------
#
# Each simulated server is pinned to its own single-worker
# ProcessPoolExecutor, so consecutive tasks for one server run in the
# same OS process and can reuse per-server state cached here: the
# partition's database (index build happens once) and, between the two
# phases of one block, the admitted query session.

#: Per-process cache: ``(shm_name, server_id) -> {"database", "block"}``.
_WORKER_STATE: dict[tuple[str, int], dict[str, Any]] = {}


def _worker_server(setup: dict[str, Any]) -> dict[str, Any]:
    """Return (building on first use) this process's server state."""
    key = (setup["shm_name"], setup["server_id"])
    state = _WORKER_STATE.get(key)
    if state is None:
        shm = shared_memory.SharedMemory(name=setup["shm_name"])
        try:
            vectors = np.ndarray(
                setup["shape"], dtype=setup["dtype"], buffer=shm.buf
            )
            partition = np.array(vectors[setup["global_indices"]])
        finally:
            shm.close()
        database = Database(
            partition,
            metric=setup["metric"],
            access=setup["access"],
            block_size=setup["block_size"],
            buffer_fraction=setup["buffer_fraction"],
            engine=setup["engine"],
            index_options=setup["index_options"],
        )
        if setup.get("fault_plan") is not None:
            # The worker re-derives the same per-(spec, site) RNG
            # streams from the plan's seed, so the process backend
            # injects exactly the faults the model backend would.
            policy = (
                RetryPolicy.from_dict(setup["retry"])
                if setup.get("retry") is not None
                else None
            )
            database.inject_faults(
                setup["fault_plan"],
                site=f"server:{setup['server_id']}",
                policy=policy,
            )
        state = {"database": database, "block": None}
        _WORKER_STATE[key] = state
    return state


def _block_keys(db_indices: list[int] | None, n: int) -> list[Any]:
    return [_block_key(db_indices, position) for position in range(n)]


#: Span-id stride separating worker tracers: worker ``s`` allocates ids
#: from ``(s + 1) * _WORKER_ID_BASE``, so merged records never collide
#: with each other or with the parent tracer's ids.
_WORKER_ID_BASE = 1_000_000_000


def _worker_block_observer(
    state: dict[str, Any], setup: dict[str, Any], trace: dict[str, Any] | None
) -> Observer | None:
    """This worker's observer, bound to one block's trace context.

    Built lazily on the first traced block (and cached with the server
    state, so the instrumented database persists across blocks); with no
    trace context the worker stays completely uninstrumented.  The
    tracer carries the caller's ``trace_id``, this server's id and a
    disjoint span-id range, and adopts the caller's ``parent_span_id``
    as the parent of its top-level spans -- the cross-process causal
    link the provenance builder follows.
    """
    if trace is None:
        return None
    observer = state.get("observer")
    if observer is None:
        server_id = setup["server_id"]
        tracer = Tracer(
            enabled=True,
            server_id=server_id,
            id_base=(server_id + 1) * _WORKER_ID_BASE,
        )
        observer = Observer(tracer=tracer)
        state["observer"] = observer
        state["database"].attach_observer(observer)
    observer.tracer.trace_id = trace.get("trace_id")
    observer.tracer.root_parent_id = trace.get("parent_span_id")
    return observer


def _worker_phase1(
    setup: dict[str, Any], payload: dict[str, Any]
) -> dict[int, float]:
    """Admit a block and warm up the queries homed at this server.

    Returns the home candidate bounds to broadcast (position -> radius);
    the admitted session is cached for :func:`_worker_phase2`.  With a
    fault plan armed, a crash or straggler timeout during admission or
    warm-up is recovered worker-side by rolling back and replaying the
    phase (see :func:`_recover_block`).
    """
    state = _worker_server(setup)
    database = state["database"]
    observer = _worker_block_observer(state, setup, payload.get("trace"))
    injector = database.fault_injector
    start = time.perf_counter()
    snapshot = database.counters.copy()
    keys = _block_keys(payload["db_indices"], len(payload["objs"]))
    with maybe_phase(observer, "worker.phase1", server=setup["server_id"]):
        if injector is None:
            disk_state = None
            stats_before = None
            session, bounds = _admit_block(database, payload, keys)
        else:
            disk_state = database.disk.snapshot_state()
            stats_before = injector.stats()
            session, bounds = _recover_block(
                database,
                injector,
                setup["server_id"],
                setup["n_servers"],
                snapshot,
                disk_state,
                lambda: _admit_block(database, payload, keys),
            )
    state["block"] = {
        "session": session,
        "payload": payload,
        "keys": keys,
        "snapshot": snapshot,
        "disk_state": disk_state,
        "stats_before": stats_before,
        "observer": observer,
        "wall": time.perf_counter() - start,
    }
    return bounds


def _worker_phase2(
    setup: dict[str, Any], foreign_bounds: dict[int, float]
) -> tuple[
    list[list[tuple[int, float]]],
    dict[str, int],
    float,
    dict[str, int] | None,
    list[dict[str, Any]] | None,
]:
    """Apply broadcast bounds, run the block, return global answers.

    Returns ``(answers, counters, wall_seconds, fault_stats, trace)``
    where ``answers`` maps each query position to ``(global_index,
    distance)`` pairs, ``counters`` / ``wall_seconds`` cover both phases
    of this block, ``fault_stats`` is the worker injector's per-block
    stats delta (``None`` without a fault plan) for the parent to
    absorb, and ``trace`` is this worker's drained span/event records
    (``None`` without a trace context) for the parent tracer to absorb
    into the shared causal tree.

    With a fault plan armed, a crash mid-run is recovered by rolling the
    partition back to the *block entry* state and replaying phase 1 plus
    the run -- the survivor re-derives the admission, the home bounds
    (deterministically identical) and the answers from scratch.
    """
    state = _WORKER_STATE[(setup["shm_name"], setup["server_id"])]
    block = state["block"]
    database = state["database"]
    observer = block["observer"]
    injector = database.fault_injector
    payload = block["payload"]
    keys = block["keys"]
    start = time.perf_counter()

    def run(session: QuerySession) -> list[list[Answer]]:
        for position, bound in foreign_bounds.items():
            session.bound_radius(keys[position], float(bound))
        return session.run(
            payload["objs"],
            payload["qtypes"],
            keys=keys,
            db_indices=payload["db_indices"],
        )

    with maybe_phase(observer, "worker.phase2", server=setup["server_id"]):
        if injector is None:
            results = run(block["session"])
            fault_stats: dict[str, int] | None = None
        else:

            def replay() -> list[list[Answer]]:
                session, _ = _admit_block(database, payload, keys)
                return run(session)

            results = _recover_block(
                database,
                injector,
                setup["server_id"],
                setup["n_servers"],
                block["snapshot"],
                block["disk_state"],
                lambda: run(block["session"]),
                replay,
            )
            fault_stats = FaultInjector.stats_delta(
                injector.stats(), block["stats_before"]
            )
    wall = block["wall"] + (time.perf_counter() - start)
    counters = database.counters.diff(block["snapshot"]).as_dict()
    global_indices = setup["global_indices"]
    answers = [
        [(int(global_indices[a.index]), a.distance) for a in result]
        for result in results
    ]
    trace_records: list[dict[str, Any]] | None = None
    if observer is not None:
        trace_records = observer.tracer.records()
        observer.tracer.clear()
    state["block"] = None
    return answers, counters, wall, fault_stats, trace_records


class ParallelDatabase:
    """A metric database declustered over ``n_servers`` servers.

    Parameters mirror :class:`~repro.core.database.Database`; the extra
    ``decluster`` parameter picks the partitioning strategy
    (``"round_robin"``, ``"random"``, ``"hash"``, ``"range"``).

    ``fault_plan`` (optional :class:`~repro.faults.FaultPlan` or its
    dict form) arms every server's disk with a fault gate at site
    ``"server:<id>"`` and enables crash/straggler re-dispatch recovery
    on both backends; ``retry_policy`` overrides the plan's embedded
    :class:`~repro.faults.RetryPolicy`.  See the module docstring.
    """

    def __init__(
        self,
        data: Dataset | np.ndarray | Sequence[Any],
        n_servers: int,
        metric: str | DistanceFunction = "euclidean",
        access: str = "scan",
        decluster: str = "round_robin",
        block_size: int = DEFAULT_BLOCK_SIZE,
        buffer_fraction: float = 0.1,
        engine: str = "auto",
        index_options: dict[str, Any] | None = None,
        observer: Any = None,
        fault_plan: Any = None,
        retry_policy: RetryPolicy | None = None,
    ):
        self.dataset = as_dataset(data)
        #: Optional :class:`~repro.obs.Observer`: per-server ``worker.run``
        #: events, modelled/wall latency histograms and the skew gauge.
        self.observer = observer
        try:
            strategy = DECLUSTER_STRATEGIES[decluster]
        except KeyError:
            known = ", ".join(sorted(DECLUSTER_STRATEGIES))
            raise ValueError(
                f"unknown decluster strategy {decluster!r}; known: {known}"
            )
        partitions = strategy(len(self.dataset), n_servers)
        self.n_servers = n_servers
        self._worker_config = {
            "metric": metric,
            "access": access,
            "block_size": block_size,
            "buffer_fraction": buffer_fraction,
            "engine": engine,
            "index_options": dict(index_options) if index_options else None,
        }
        self._shm: shared_memory.SharedMemory | None = None
        self._pools: list[ProcessPoolExecutor] | None = None
        self._setups: list[dict[str, Any]] | None = None
        self.servers = [
            _Server(
                server_id=s,
                global_indices=np.asarray(part, dtype=np.intp),
                database=Database(
                    _slice_dataset(self.dataset, np.asarray(part, dtype=np.intp)),
                    metric=metric,
                    access=access,
                    block_size=block_size,
                    buffer_fraction=buffer_fraction,
                    engine=engine,
                    index_options=dict(index_options) if index_options else None,
                ),
            )
            for s, part in enumerate(partitions)
        ]
        self._home_server: dict[int, int] = {}
        self._local_index: dict[int, int] = {}
        for server in self.servers:
            for local, global_index in enumerate(server.global_indices):
                self._home_server[int(global_index)] = server.server_id
                self._local_index[int(global_index)] = local
        if observer is not None:
            for server in self.servers:
                # Attach directly rather than via ``attach_observer``:
                # per-server cost/buffer collectors would collide in the
                # shared registry, but the session/engine/access-method
                # instrumentation (spans, events) nests under the shared
                # tracer so every server's page work lands in one tree.
                server.database.observer = observer
                server.database.access_method.observer = observer
        self.fault_injector: FaultInjector | None = None
        if fault_plan is not None:
            self.fault_injector = FaultInjector(
                fault_plan, policy=retry_policy, observer=observer
            )
            for server in self.servers:
                server.database.fault_injector = self.fault_injector
                server.database.disk.faults = self.fault_injector.gate(
                    f"server:{server.server_id}"
                )

    def cold(self) -> None:
        """Clear every server's buffer."""
        for server in self.servers:
            server.database.cold()

    # ------------------------------------------------------------------
    # Process backend lifecycle
    # ------------------------------------------------------------------

    def _ensure_process_backend(self) -> None:
        """Lazily create the shared-memory segment and worker pools."""
        if self._pools is not None:
            return
        if not self.dataset.is_vector:
            raise ValueError("backend='process' requires a vector dataset")
        vectors = np.ascontiguousarray(self.dataset.vectors, dtype=float)
        shm = shared_memory.SharedMemory(create=True, size=vectors.nbytes)
        np.ndarray(vectors.shape, dtype=vectors.dtype, buffer=shm.buf)[:] = vectors
        self._shm = shm
        injector = self.fault_injector
        self._setups = [
            {
                "shm_name": shm.name,
                "server_id": server.server_id,
                "n_servers": self.n_servers,
                "shape": vectors.shape,
                "dtype": str(vectors.dtype),
                "global_indices": server.global_indices,
                "fault_plan": (
                    injector.plan.to_dict() if injector is not None else None
                ),
                "retry": (
                    injector.policy.to_dict() if injector is not None else None
                ),
                **self._worker_config,
            }
            for server in self.servers
        ]
        # One single-worker pool per server pins each simulated server
        # to one OS process, so its index and LRU buffer persist there.
        self._pools = [
            ProcessPoolExecutor(max_workers=1) for _ in self.servers
        ]

    def close(self) -> None:
        """Shut down worker processes and release the shared memory."""
        if self._pools is not None:
            for pool in self._pools:
                pool.shutdown(wait=False, cancel_futures=True)
            self._pools = None
            self._setups = None
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._shm = None

    def __enter__(self) -> "ParallelDatabase":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass

    def multiple_similarity_query(
        self,
        query_objs: Sequence[Any],
        qtypes: Sequence[QueryType] | QueryType,
        block_size: int | None = None,
        use_avoidance: bool = True,
        warm_start: bool = False,
        seed_radius: Sequence[float] | None = None,
        db_indices: Sequence[int] | None = None,
        share_home_bounds: bool = True,
        backend: str = "model",
    ) -> ParallelRun:
        """Process a batch of queries on all servers and merge.

        ``block_size`` bounds the per-server multiple-query block (the
        paper uses ``m * s`` for the whole batch, i.e. one block);
        ``seed_radius`` optionally supplies a per-query upper bound on
        the final query distance, and ``db_indices`` (global dataset
        indices) enables radius seeding from the query distance matrix
        plus, with ``share_home_bounds``, the home-server candidate-bound
        broadcast.  Both only suppress local answers provably outside the
        global top-k, so the merged answers are unaffected.

        ``backend`` selects sequential in-process execution with
        modelled elapsed time (``"model"``, the default) or true
        multi-core execution on one worker process per server
        (``"process"``), which additionally measures per-server
        wall-clock seconds (:attr:`ParallelRun.wall_seconds`).  Answers
        and counters are identical across backends.
        """
        if isinstance(qtypes, QueryType):
            qtypes = [qtypes] * len(query_objs)
        qtypes = list(qtypes)
        if len(qtypes) != len(query_objs):
            raise ValueError("need one query type per query object")
        if db_indices is not None and len(db_indices) != len(query_objs):
            raise ValueError("need one dataset index per query object")
        if backend not in ("model", "process"):
            raise ValueError(f"unknown backend {backend!r}")
        effective_block = block_size if block_size is not None else len(query_objs)
        if effective_block < 1:
            raise ValueError("block size must be positive")
        if backend == "process":
            self._ensure_process_backend()
            totals = [Counters() for _ in self.servers]
            walls = [0.0 for _ in self.servers]
        else:
            snapshots = [server.database.counters.copy() for server in self.servers]
        timeline = self.observer.timeline if self.observer is not None else None

        per_server_answers: list[list[list[Answer]]] = [[] for _ in self.servers]
        for start in range(0, len(query_objs), effective_block):
            stop = start + effective_block
            block = _Block(
                objs=list(query_objs[start:stop]),
                qtypes=qtypes[start:stop],
                db_indices=(
                    list(db_indices[start:stop]) if db_indices is not None else None
                ),
                seed_radius=(
                    list(seed_radius[start:stop])
                    if seed_radius is not None
                    else None
                ),
            )
            with maybe_phase(
                self.observer,
                "parallel.block",
                backend=backend,
                size=len(block.objs),
                offset=start,
            ) as block_phase:
                if backend == "process":
                    outcome = self._run_block_process(
                        block,
                        use_avoidance,
                        warm_start,
                        share_home_bounds,
                        self._trace_context(block_phase),
                    )
                    for s, (
                        answers,
                        counter_dict,
                        wall,
                        fault_stats,
                        trace_records,
                    ) in enumerate(outcome):
                        per_server_answers[s].extend(
                            [Answer(index, distance) for index, distance in result]
                            for result in answers
                        )
                        totals[s].add(Counters(**counter_dict))
                        walls[s] += wall
                        if fault_stats and self.fault_injector is not None:
                            self.fault_injector.absorb(fault_stats)
                        if trace_records and self.observer is not None:
                            self.observer.tracer.absorb(trace_records)
                        if timeline is not None:
                            # The worker's per-block counter delta is
                            # already the picklable dict the timeline
                            # wants -- the same path the fault stats
                            # take home.
                            timeline.record_block(counter_dict, server_id=s)
                else:
                    if timeline is not None:
                        block_snapshots = [
                            server.database.counters.copy()
                            for server in self.servers
                        ]
                    block_results = self._run_block(
                        block, use_avoidance, warm_start, share_home_bounds
                    )
                    for s, local in enumerate(block_results):
                        per_server_answers[s].extend(
                            self.servers[s].to_global(result) for result in local
                        )
                        if timeline is not None:
                            timeline.record_block(
                                self.servers[s]
                                .database.counters.diff(block_snapshots[s])
                                .as_dict(),
                                server_id=s,
                            )
            if timeline is not None:
                # No scheduler clock here either: one tick per block,
                # matching ``run_in_blocks``.
                timeline.advance()

        if backend == "process":
            per_server_runs = [
                MeasuredRun(totals[s], server.database.cost_model)
                for s, server in enumerate(self.servers)
            ]
            wall_seconds: list[float] | None = walls
        else:
            per_server_runs = [
                MeasuredRun(
                    server.database.counters.diff(snapshot),
                    server.database.cost_model,
                )
                for server, snapshot in zip(self.servers, snapshots)
            ]
            wall_seconds = None
        merged = [
            self._merge(
                qtypes[q],
                [per_server_answers[s][q] for s in range(self.n_servers)],
            )
            for q in range(len(query_objs))
        ]
        run = ParallelRun(
            answers=merged, per_server=per_server_runs, wall_seconds=wall_seconds
        )
        if self.observer is not None:
            self._observe_run(run, backend)
        return run

    def _observe_run(self, run: ParallelRun, backend: str) -> None:
        """Report one parallel query to the attached observer.

        Emits one ``worker.run`` event per server (modelled seconds,
        counters headline, measured wall seconds on the process
        backend), feeds the per-server latency histograms, and sets the
        skew gauges -- the per-server imbalance the Sec. 5.3 speed-up
        divides by.
        """
        observer = self.observer
        for s, server_run in enumerate(run.per_server):
            attrs: dict[str, Any] = {
                "server": s,
                "backend": backend,
                "modelled_seconds": server_run.total_seconds,
                "page_reads": server_run.counters.page_reads,
                "distance_calculations": server_run.counters.distance_calculations,
                "queries_completed": server_run.counters.queries_completed,
            }
            observer.metrics.observe(
                "server.modelled_seconds", server_run.total_seconds
            )
            if run.wall_seconds is not None:
                attrs["wall_seconds"] = run.wall_seconds[s]
                observer.metrics.observe("server.wall_seconds", run.wall_seconds[s])
            observer.event("worker.run", **attrs)
        observer.metrics.set_gauge("parallel.skew", run.skew)
        if run.wall_seconds is not None:
            observer.metrics.set_gauge("parallel.wall_skew", run.wall_skew)

    def _trace_context(self, block_phase: Any) -> dict[str, Any] | None:
        """Trace context shipped to workers for one block, or ``None``.

        Only produced when the attached observer is actively tracing:
        carries the parent's ``trace_id`` and the ``parallel.block``
        span id, which worker tracers adopt as the parent of their
        top-level spans (see :func:`_worker_block_observer`).
        """
        observer = self.observer
        if observer is None or not observer.tracer.enabled:
            return None
        return {
            "trace_id": observer.tracer.trace_id,
            "parent_span_id": getattr(block_phase, "span_id", None),
        }

    def _run_block_process(
        self,
        block: _Block,
        use_avoidance: bool,
        warm_start: bool,
        share_home_bounds: bool,
        trace_context: dict[str, Any] | None = None,
    ) -> list[
        tuple[
            list[list[tuple[int, float]]],
            dict[str, int],
            float,
            dict[str, int] | None,
            list[dict[str, Any]] | None,
        ]
    ]:
        """One block on the process backend (true multi-core execution).

        Phase 1 admits the block on every server concurrently and warms
        the queries homed at each server; the gathered candidate bounds
        are then broadcast and phase 2 runs the block to completion on
        all servers concurrently.  The ``result()`` barrier between the
        phases is the (cost-neglected) broadcast synchronisation point.
        """
        assert self._pools is not None and self._setups is not None
        home_positions = self._home_positions(block, share_home_bounds)
        payload = {
            "objs": block.objs,
            "qtypes": block.qtypes,
            "db_indices": block.db_indices,
            "seed_radius": block.seed_radius,
            "use_avoidance": use_avoidance,
            "warm_start": warm_start,
            "trace": trace_context,
        }
        phase1 = [
            pool.submit(
                _worker_phase1,
                setup,
                {**payload, "home_positions": home_positions[s]},
            )
            for s, (pool, setup) in enumerate(zip(self._pools, self._setups))
        ]
        bounds: dict[int, float] = {}
        for future in phase1:
            bounds.update(future.result())
        phase2: list[Any] = []
        for s, (pool, setup) in enumerate(zip(self._pools, self._setups)):
            foreign = {
                position: bound
                for position, bound in bounds.items()
                if position not in home_positions[s]
            }
            phase2.append(pool.submit(_worker_phase2, setup, foreign))
        return [future.result() for future in phase2]

    def _home_positions(
        self, block: _Block, share_home_bounds: bool
    ) -> list[list[int]]:
        """Block positions homed at each server (bound-broadcast phase 1)."""
        home_positions: list[list[int]] = [[] for _ in self.servers]
        if share_home_bounds and block.db_indices is not None:
            for position, global_index in enumerate(block.db_indices):
                home = self._home_server.get(int(global_index))
                if home is not None:
                    home_positions[home].append(position)
        return home_positions

    def _run_block(
        self,
        block: _Block,
        use_avoidance: bool,
        warm_start: bool,
        share_home_bounds: bool,
    ) -> list[list[list[Answer]]]:
        """One parallel multiple similarity query over all servers.

        The same two phases as the process backend, run sequentially:
        phase 1 admits the block on every server and warms the queries
        homed there (the coordinated parallel k-NN after [1] -- home
        candidates are global candidates, so their k-th distance bounds
        the global k-th-NN distance); the gathered bounds are broadcast
        and phase 2 runs each server's block to completion.  With a
        fault plan armed, each server phase runs under
        :func:`_recover_block`: a crash or straggler timeout rolls the
        partition back and replays the phase as the survivor's
        re-dispatch.
        """
        keys = [block.key(p) for p in range(len(block.objs))]
        home_positions = self._home_positions(block, share_home_bounds)
        injector = self.fault_injector
        payloads = [
            {
                "objs": block.objs,
                "qtypes": block.qtypes,
                "db_indices": block.db_indices,
                "seed_radius": block.seed_radius,
                "use_avoidance": use_avoidance,
                "warm_start": warm_start,
                "home_positions": home_positions[s],
            }
            for s in range(self.n_servers)
        ]
        snapshots: list[tuple[Counters, dict[str, Any]] | None] = [
            None
        ] * self.n_servers
        if injector is not None:
            snapshots = [
                (
                    server.database.counters.copy(),
                    server.database.disk.snapshot_state(),
                )
                for server in self.servers
            ]

        sessions: list[QuerySession] = [None] * self.n_servers  # type: ignore[list-item]
        bounds: dict[int, float] = {}

        def phase1(s: int) -> dict[int, float]:
            session, server_bounds = _admit_block(
                self.servers[s].database, payloads[s], keys
            )
            sessions[s] = session
            return server_bounds

        for s in range(self.n_servers):
            if injector is None:
                server_bounds = phase1(s)
            else:
                snapshot = snapshots[s]
                assert snapshot is not None
                server_bounds = _recover_block(
                    self.servers[s].database,
                    injector,
                    s,
                    self.n_servers,
                    snapshot[0],
                    snapshot[1],
                    lambda s=s: phase1(s),
                )
            bounds.update(server_bounds)

        def phase2(s: int) -> list[list[Answer]]:
            session = sessions[s]
            for position, bound in bounds.items():
                if position in payloads[s]["home_positions"]:
                    continue
                session.bound_radius(keys[position], bound)
            return session.run(
                block.objs,
                block.qtypes,
                keys=keys,
                db_indices=block.db_indices,
            )

        results: list[list[list[Answer]]] = []
        for s in range(self.n_servers):
            if injector is None:
                results.append(phase2(s))
            else:
                snapshot = snapshots[s]
                assert snapshot is not None

                def replay(s: int = s) -> list[list[Answer]]:
                    phase1(s)
                    return phase2(s)

                results.append(
                    _recover_block(
                        self.servers[s].database,
                        injector,
                        s,
                        self.n_servers,
                        snapshot[0],
                        snapshot[1],
                        lambda s=s: phase2(s),
                        replay,
                    )
                )
        return results

    @staticmethod
    def _merge(qtype: QueryType, per_server: list[list[Answer]]) -> list[Answer]:
        union = [answer for answers in per_server for answer in answers]
        union.sort(key=lambda a: (a.distance, a.index))
        if qtype.adapts_radius:
            return union[: qtype.k]
        return union

    def summary(self) -> dict[str, Any]:
        """Structural summary of the cluster."""
        return {
            "servers": self.n_servers,
            "objects": len(self.dataset),
            "per_server": [len(s.database) for s in self.servers],
            "access": self.servers[0].database.access_method.name,
        }
