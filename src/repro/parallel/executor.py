"""Simulated shared-nothing execution of multiple similarity queries.

Each server owns one partition of the data with its own disk, buffer and
access method, and processes the *same* multiple similarity query on its
local data.  Per-query answers are merged (k best of the union for k-NN,
union for range queries).  Modelled elapsed time is the maximum over the
servers' modelled costs -- the paper's communication overhead "is very
small" (Sec. 5.3) and is neglected, like the merge itself.

Global correctness of per-server pruning: every optimisation a server
applies (query-distance matrix seeding, avoidance, page pruning) only
suppresses local answers that are provably farther than the query's
current k-th candidate; such objects can never enter the merged global
top-k, so merging the per-server answer lists yields exactly the global
answer set.

Following the parallel similarity-search design the paper builds on
([1], Berchtold et al., SIGMOD 1997), servers coordinate through cheap
candidate bounds: with ``share_home_bounds`` every query object's *home*
server (the one storing it) first processes the query's best local page,
and the resulting k-candidate distance -- a sound upper bound on the
global k-th-NN distance, since local candidates are global candidates --
is broadcast to all servers as their initial query distance.  The
broadcast itself is communication and, like the answer merge, is
neglected in the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.answers import Answer
from repro.core.database import Database, MeasuredRun
from repro.core.multi_query import MultiQueryProcessor
from repro.core.types import QueryType
from repro.data import Dataset, GenericDataset, VectorDataset, as_dataset
from repro.metric.distances import DistanceFunction
from repro.parallel.decluster import DECLUSTER_STRATEGIES
from repro.storage.page import DEFAULT_BLOCK_SIZE


@dataclass
class _Server:
    """One shared-nothing server: a partition plus its own database."""

    server_id: int
    global_indices: np.ndarray
    database: Database

    def to_global(self, answers: list[Answer]) -> list[Answer]:
        """Translate local answer indices to global dataset indices."""
        return [
            Answer(int(self.global_indices[a.index]), a.distance) for a in answers
        ]


@dataclass
class _Block:
    """One parallel multiple-query block."""

    objs: list[Any]
    qtypes: list[QueryType]
    db_indices: list[int] | None
    seed_radius: list[float] | None

    def key(self, position: int) -> Any:
        """Buffer key of the query at ``position`` (stable per block)."""
        if self.db_indices is not None:
            return ("parallel", int(self.db_indices[position]))
        return ("parallel-pos", position)


@dataclass
class ParallelRun:
    """Result of one parallel multiple similarity query."""

    answers: list[list[Answer]]
    per_server: list[MeasuredRun]

    @property
    def elapsed_io_seconds(self) -> float:
        """Modelled elapsed I/O time (slowest server)."""
        return max(run.io_seconds for run in self.per_server)

    @property
    def elapsed_cpu_seconds(self) -> float:
        """Modelled elapsed CPU time (slowest server)."""
        return max(run.cpu_seconds for run in self.per_server)

    @property
    def elapsed_seconds(self) -> float:
        """Modelled elapsed total time (slowest server, I/O + CPU)."""
        return max(run.total_seconds for run in self.per_server)

    @property
    def aggregate_seconds(self) -> float:
        """Total work across all servers (for efficiency analyses)."""
        return sum(run.total_seconds for run in self.per_server)


def _slice_dataset(dataset: Dataset, indices: np.ndarray) -> Dataset:
    labels = dataset.labels[indices] if dataset.labels is not None else None
    if isinstance(dataset, VectorDataset):
        return VectorDataset(dataset.vectors[indices], labels=labels)
    return GenericDataset(dataset.batch(indices), labels=labels)


class ParallelDatabase:
    """A metric database declustered over ``n_servers`` servers.

    Parameters mirror :class:`~repro.core.database.Database`; the extra
    ``decluster`` parameter picks the partitioning strategy
    (``"round_robin"``, ``"random"``, ``"hash"``, ``"range"``).
    """

    def __init__(
        self,
        data: Dataset | np.ndarray | Sequence[Any],
        n_servers: int,
        metric: str | DistanceFunction = "euclidean",
        access: str = "scan",
        decluster: str = "round_robin",
        block_size: int = DEFAULT_BLOCK_SIZE,
        buffer_fraction: float = 0.1,
        engine: str = "auto",
        index_options: dict[str, Any] | None = None,
    ):
        self.dataset = as_dataset(data)
        try:
            strategy = DECLUSTER_STRATEGIES[decluster]
        except KeyError:
            known = ", ".join(sorted(DECLUSTER_STRATEGIES))
            raise ValueError(
                f"unknown decluster strategy {decluster!r}; known: {known}"
            )
        partitions = strategy(len(self.dataset), n_servers)
        self.n_servers = n_servers
        self.servers = [
            _Server(
                server_id=s,
                global_indices=np.asarray(part, dtype=np.intp),
                database=Database(
                    _slice_dataset(self.dataset, np.asarray(part, dtype=np.intp)),
                    metric=metric,
                    access=access,
                    block_size=block_size,
                    buffer_fraction=buffer_fraction,
                    engine=engine,
                    index_options=dict(index_options) if index_options else None,
                ),
            )
            for s, part in enumerate(partitions)
        ]
        self._home_server: dict[int, int] = {}
        self._local_index: dict[int, int] = {}
        for server in self.servers:
            for local, global_index in enumerate(server.global_indices):
                self._home_server[int(global_index)] = server.server_id
                self._local_index[int(global_index)] = local

    def cold(self) -> None:
        """Clear every server's buffer."""
        for server in self.servers:
            server.database.cold()

    def multiple_similarity_query(
        self,
        query_objs: Sequence[Any],
        qtypes: Sequence[QueryType] | QueryType,
        block_size: int | None = None,
        use_avoidance: bool = True,
        warm_start: bool = False,
        seed_radius: Sequence[float] | None = None,
        db_indices: Sequence[int] | None = None,
        share_home_bounds: bool = True,
    ) -> ParallelRun:
        """Process a batch of queries on all servers and merge.

        ``block_size`` bounds the per-server multiple-query block (the
        paper uses ``m * s`` for the whole batch, i.e. one block);
        ``seed_radius`` optionally supplies a per-query upper bound on
        the final query distance, and ``db_indices`` (global dataset
        indices) enables radius seeding from the query distance matrix
        plus, with ``share_home_bounds``, the home-server candidate-bound
        broadcast.  Both only suppress local answers provably outside the
        global top-k, so the merged answers are unaffected.
        """
        if isinstance(qtypes, QueryType):
            qtypes = [qtypes] * len(query_objs)
        qtypes = list(qtypes)
        if len(qtypes) != len(query_objs):
            raise ValueError("need one query type per query object")
        if db_indices is not None and len(db_indices) != len(query_objs):
            raise ValueError("need one dataset index per query object")
        effective_block = block_size if block_size is not None else len(query_objs)
        if effective_block < 1:
            raise ValueError("block size must be positive")

        snapshots = [server.database.counters.copy() for server in self.servers]
        per_server_answers: list[list[list[Answer]]] = [[] for _ in self.servers]
        for start in range(0, len(query_objs), effective_block):
            stop = start + effective_block
            block = _Block(
                objs=list(query_objs[start:stop]),
                qtypes=qtypes[start:stop],
                db_indices=(
                    list(db_indices[start:stop]) if db_indices is not None else None
                ),
                seed_radius=(
                    list(seed_radius[start:stop])
                    if seed_radius is not None
                    else None
                ),
            )
            block_results = self._run_block(
                block, use_avoidance, warm_start, share_home_bounds
            )
            for s, local in enumerate(block_results):
                per_server_answers[s].extend(local)

        per_server_runs = [
            MeasuredRun(
                server.database.counters.diff(snapshot),
                server.database.cost_model,
            )
            for server, snapshot in zip(self.servers, snapshots)
        ]
        merged = [
            self._merge(
                qtypes[q],
                [
                    self.servers[s].to_global(per_server_answers[s][q])
                    for s in range(self.n_servers)
                ],
            )
            for q in range(len(query_objs))
        ]
        return ParallelRun(answers=merged, per_server=per_server_runs)

    def _run_block(
        self,
        block: _Block,
        use_avoidance: bool,
        warm_start: bool,
        share_home_bounds: bool,
    ) -> list[list[list[Answer]]]:
        """One parallel multiple similarity query over all servers."""
        processors: list[MultiQueryProcessor] = []
        for server in self.servers:
            processor = server.database.processor(
                use_avoidance=use_avoidance,
                warm_start=warm_start,
                seed_from_queries=block.db_indices is not None,
            )
            pendings = [
                processor.admit(
                    obj,
                    qtype,
                    key=block.key(position),
                    db_index=(
                        block.db_indices[position]
                        if block.db_indices is not None
                        else None
                    ),
                )
                for position, (obj, qtype) in enumerate(
                    zip(block.objs, block.qtypes)
                )
            ]
            if block.db_indices is not None:
                processor._seed_radius_hints(pendings)
            if block.seed_radius is not None:
                for pending, radius in zip(pendings, block.seed_radius):
                    if radius < pending.radius_hint:
                        pending.radius_hint = float(radius)
            processors.append(processor)

        if share_home_bounds and block.db_indices is not None:
            self._broadcast_home_bounds(processors, block)

        return [
            processor.query_all(
                block.objs,
                block.qtypes,
                keys=[block.key(p) for p in range(len(block.objs))],
                db_indices=block.db_indices,
            )
            for processor in processors
        ]

    def _broadcast_home_bounds(
        self, processors: list[MultiQueryProcessor], block: _Block
    ) -> None:
        """Phase 1 of the coordinated parallel k-NN (after [1]).

        Each query's home server warms the query up on its best local
        page; the resulting candidate bound is broadcast to the other
        servers as an initial query distance.  The bound is sound for the
        merged result because the home candidates are global candidates,
        so their k-th distance bounds the global k-th-NN distance.
        """
        assert block.db_indices is not None
        bounds: dict[int, float] = {}
        for position, global_index in enumerate(block.db_indices):
            home = self._home_server.get(int(global_index))
            if home is None:
                continue
            processor = processors[home]
            pending = processor._pending[block.key(position)]
            if not pending.qtype.adapts_radius:
                continue
            processor._warm_up([pending])
            radius = pending.radius
            if radius < float("inf"):
                bounds[position] = radius
        for s, processor in enumerate(processors):
            for position, bound in bounds.items():
                if self._home_server.get(int(block.db_indices[position])) == s:
                    continue
                pending = processor._pending[block.key(position)]
                if bound < pending.radius_hint:
                    pending.radius_hint = bound

    @staticmethod
    def _merge(qtype: QueryType, per_server: list[list[Answer]]) -> list[Answer]:
        union = [answer for answers in per_server for answer in answers]
        union.sort(key=lambda a: (a.distance, a.index))
        if qtype.adapts_radius:
            return union[: qtype.k]
        return union

    def summary(self) -> dict[str, Any]:
        """Structural summary of the cluster."""
        return {
            "servers": self.n_servers,
            "objects": len(self.dataset),
            "per_server": [len(s.database) for s in self.servers],
            "access": self.servers[0].database.access_method.name,
        }
