"""Shared-nothing parallel processing of multiple similarity queries (Sec. 5.3).

The paper's parallel setting: the data is *declustered* over ``s``
servers; every server answers the same multiple similarity query on its
local partition (1/s of the data), and the per-query answer sets are
merged.  Because every server also gets s times the aggregate buffer
memory, the block size of a multiple query grows to ``m * s``, which is
what produces super-linear speed-ups -- until the O(m^2) query-distance
matrix and avoidance overheads catch up (the sub-linear regime the
paper observes on the smaller image database).

:class:`ParallelDatabase` simulates this: one :class:`Database` per
server partition, elapsed cost = max over the servers' modelled costs.
"""

from repro.parallel.decluster import (
    hash_decluster,
    random_decluster,
    range_decluster,
    round_robin_decluster,
)
from repro.parallel.executor import ParallelDatabase, ParallelRun

__all__ = [
    "ParallelDatabase",
    "ParallelRun",
    "hash_decluster",
    "random_decluster",
    "range_decluster",
    "round_robin_decluster",
]
