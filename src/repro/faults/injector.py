"""Fault injection runtime: contexts, the disk gate, and accounting.

A :class:`FaultInjector` owns one :class:`~repro.faults.plan.FaultPlan`
plus the logical tick clock and the fault/retry/re-dispatch accounting.
Components consult it through two thin handles:

* :class:`FaultContext` -- per-site draw state (operation counter, one
  RNG and fault budget per matching spec);
* :class:`DiskFaultGate` -- what a
  :class:`~repro.storage.disk.SimulatedDisk` holds: consulted once per
  page read *before* any cost counter is charged, it injects latency,
  retries recoverable read errors in place (backoff on the tick
  clock), and raises :class:`~repro.faults.errors.ServerCrash` /
  :class:`~repro.faults.errors.ServerTimeout` for the block-level
  recovery paths to handle.

Because every injection happens strictly before the read is charged,
and a retried read is charged exactly once on success, recovered runs
keep the paper's deterministic cost counters byte-identical to the
fault-free run -- the invariant the chaos CI matrix asserts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.faults.errors import PageReadError, ServerCrash, ServerTimeout
from repro.faults.plan import (
    KIND_LATENCY,
    KIND_SERVER_CRASH,
    KIND_SERVER_TIMEOUT,
    FaultDecision,
    FaultPlan,
    SiteSpec,
)
from repro.faults.retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    import random


class FaultContext:
    """Draw state of one site: op counter plus per-spec RNG and budget."""

    __slots__ = ("site", "op", "_specs")

    def __init__(self, plan: FaultPlan, site: str):
        self.site = site
        self.op = 0
        #: ``[spec, rng, remaining_budget]`` per matching spec.
        self._specs: list[list[Any]] = [
            [spec, plan.rng_for(spec, site), spec.max_faults]
            for spec in plan.specs_for(site)
        ]

    def draw(self) -> FaultDecision | None:
        """Decide the fault (if any) of the next operation at this site.

        Each probability spec consumes exactly one uniform variate per
        operation whether or not it fires, so a site's fault schedule
        depends only on its own operation sequence.  The first firing
        spec (sorted pattern order) wins.
        """
        op = self.op
        self.op += 1
        fired: FaultDecision | None = None
        for entry in self._specs:
            spec: SiteSpec = entry[0]
            rng: random.Random = entry[1]
            budget = entry[2]
            if spec.at_ops is not None:
                fires = op in spec.at_ops
            elif spec.probability > 0.0:
                fires = rng.random() < spec.probability
            else:
                fires = False
            if not fires or (budget is not None and budget <= 0) or fired:
                continue
            if budget is not None:
                entry[2] = budget - 1
            kind = spec.kinds[0]
            if len(spec.kinds) > 1:
                kind = spec.kinds[rng.randrange(len(spec.kinds))]
            fired = FaultDecision(
                kind=kind, site=self.site, latency_ticks=spec.latency_ticks
            )
        return fired


class DiskFaultGate:
    """Read-path hook a :class:`~repro.storage.disk.SimulatedDisk` holds.

    ``before_read`` runs the whole page-level fault protocol: latency
    injections advance the tick clock (and may trip the straggler
    deadline), recoverable read errors are retried in place with
    backoff, and server-level faults propagate to the block-recovery
    layers.  It never touches the paper's cost counters.
    """

    __slots__ = ("injector", "context")

    def __init__(self, injector: "FaultInjector", site: str):
        self.injector = injector
        self.context = injector.context(site)

    def before_read(self, page_id: int) -> None:
        """Consult the plan for one page read; raise or return.

        Raises
        ------
        PageReadError
            When a read error persists past the retry budget.
        ServerCrash
            When a crash fault fires (handled by block recovery).
        ServerTimeout
            When a timeout fault fires, or accumulated latency pushes
            the block past the policy deadline.
        """
        injector = self.injector
        policy = injector.policy
        site = self.context.site
        attempt = 0
        while True:
            decision = self.context.draw()
            if decision is None:
                return
            kind = decision.kind
            injector.record_injected(kind, site, page_id=page_id)
            if kind == KIND_LATENCY:
                injector.advance(decision.latency_ticks)
                deadline = policy.deadline_ticks
                if deadline is not None and injector.block_ticks > deadline:
                    raise ServerTimeout(site, injector.block_ticks, deadline)
                return
            if kind == KIND_SERVER_CRASH:
                raise ServerCrash(site)
            if kind == KIND_SERVER_TIMEOUT:
                raise ServerTimeout(site, injector.block_ticks, -1)
            # Recoverable page-read error: retry in place with backoff.
            attempt += 1
            if not policy.allows(attempt):
                raise PageReadError(page_id, site, attempts=attempt)
            injector.record_retry(site, attempt)
            injector.advance(policy.backoff(attempt))


class FaultInjector:
    """One plan, one tick clock, one set of fault statistics.

    Parameters
    ----------
    plan:
        The :class:`~repro.faults.plan.FaultPlan` (or its dict form).
    policy:
        Overrides the plan's embedded retry policy when given.
    observer:
        Optional :class:`~repro.obs.Observer`; injections, retries and
        re-dispatches are mirrored as ``fault.injected`` /
        ``retry.attempt`` / ``server.redispatch`` counters and trace
        events.  Without one, only the internal stats are kept.
    """

    def __init__(
        self,
        plan: FaultPlan | Mapping[str, Any],
        policy: RetryPolicy | None = None,
        observer: Any = None,
    ):
        if not isinstance(plan, FaultPlan):
            plan = FaultPlan.from_dict(plan)
        self.plan = plan
        self.policy = policy if policy is not None else plan.retry
        self.observer = observer
        #: Logical tick clock: advanced by injected latency and backoff.
        self.tick = 0
        #: Ticks accumulated since :meth:`begin_block` (deadline scope).
        self.block_ticks = 0
        self._contexts: dict[str, FaultContext] = {}
        self._injected: dict[str, int] = {}
        self._retries = 0
        self._redispatches = 0
        self._degraded = 0
        self._completeness_lost = 0.0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def context(self, site: str) -> FaultContext:
        """The (cached) draw context of one site."""
        found = self._contexts.get(site)
        if found is None:
            found = FaultContext(self.plan, site)
            self._contexts[site] = found
        return found

    def gate(self, site: str) -> DiskFaultGate:
        """A disk read gate bound to ``site``."""
        return DiskFaultGate(self, site)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    def begin_block(self) -> None:
        """Start a new block: reset the per-block deadline scope."""
        self.block_ticks = 0

    def advance(self, ticks: int) -> None:
        """Advance the logical clock (latency injection or backoff)."""
        self.tick += ticks
        self.block_ticks += ticks

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def record_injected(self, kind: str, site: str, **attrs: Any) -> None:
        """Count one injected fault (and mirror it to the observer)."""
        self._injected[kind] = self._injected.get(kind, 0) + 1
        observer = self.observer
        if observer is not None:
            observer.metrics.inc("fault.injected")
            observer.metrics.inc(f"fault.injected.{kind}")
            observer.event("fault.injected", kind=kind, site=site, **attrs)

    def record_retry(self, site: str, attempt: int) -> None:
        """Count one page-read retry attempt."""
        self._retries += 1
        observer = self.observer
        if observer is not None:
            observer.metrics.inc("retry.attempt")
            observer.event(
                "retry.attempt",
                site=site,
                attempt=attempt,
                backoff_ticks=self.policy.backoff(attempt),
            )

    def record_redispatch(
        self, from_server: int, to_server: int, reason: str
    ) -> None:
        """Count one crashed/straggling block re-dispatched to a survivor."""
        self._redispatches += 1
        observer = self.observer
        if observer is not None:
            observer.metrics.inc("server.redispatch")
            observer.event(
                "server.redispatch",
                from_server=from_server,
                to_server=to_server,
                reason=reason,
            )

    def record_degraded(self, completeness: float) -> None:
        """Count one ticket answered degraded at ``completeness`` < 1.

        Degradation is decided at the scheduler (parent) level, never
        inside worker processes, so -- unlike injections and retries --
        it needs no :meth:`stats` key for cross-process merging.  The
        shortfall ``1 - completeness`` is the error-budget burn the SLO
        engine's completeness objective accounts against.
        """
        self._degraded += 1
        self._completeness_lost += max(0.0, 1.0 - completeness)
        observer = self.observer
        if observer is not None:
            observer.metrics.inc("fault.degraded_ticket")
            observer.metrics.histogram(
                "fault.completeness_burn",
                tuple(k / 20 for k in range(21)),
            ).observe(max(0.0, 1.0 - completeness))

    # ------------------------------------------------------------------
    # Stats (merging across worker processes, reporting)
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Flat cumulative statistics (mergeable across processes)."""
        flat = {f"injected.{kind}": n for kind, n in self._injected.items()}
        flat["retries"] = self._retries
        flat["redispatches"] = self._redispatches
        flat["ticks"] = self.tick
        return flat

    @staticmethod
    def stats_delta(
        current: Mapping[str, int], previous: Mapping[str, int]
    ) -> dict[str, int]:
        """Per-block difference of two :meth:`stats` snapshots."""
        return {
            key: current[key] - previous.get(key, 0)
            for key in current
            if current[key] != previous.get(key, 0)
        }

    def absorb(self, delta: Mapping[str, int]) -> None:
        """Fold a worker process's stats delta into this injector.

        Worker-side injectors run without an observer; the parent
        mirrors the absorbed counts to its own metrics so process- and
        model-backend runs report through the same names.
        """
        observer = self.observer
        for key, value in delta.items():
            if value <= 0:
                continue
            if key.startswith("injected."):
                kind = key[len("injected."):]
                self._injected[kind] = self._injected.get(kind, 0) + value
                if observer is not None:
                    observer.metrics.inc("fault.injected", value)
                    observer.metrics.inc(f"fault.injected.{kind}", value)
            elif key == "retries":
                self._retries += value
                if observer is not None:
                    observer.metrics.inc("retry.attempt", value)
            elif key == "redispatches":
                self._redispatches += value
                if observer is not None:
                    observer.metrics.inc("server.redispatch", value)
            elif key == "ticks":
                self.tick += value

    def summary(self) -> dict[str, Any]:
        """Human-oriented totals for CLI output and reports."""
        return {
            "injected": dict(sorted(self._injected.items())),
            "injected_total": sum(self._injected.values()),
            "retries": self._retries,
            "redispatches": self._redispatches,
            "degraded_tickets": self._degraded,
            "completeness_lost": self._completeness_lost,
            "ticks": self.tick,
        }
