"""Typed failures raised by the fault-injection layer.

The hierarchy mirrors the recovery granularity: a
:class:`PageReadError` is retryable in place at the disk (bounded
retries with backoff on the logical tick clock), while a
:class:`ServerCrash` or :class:`ServerTimeout` aborts the server's
whole in-flight block and is handled by re-dispatching the block to a
survivor (:mod:`repro.parallel.executor`) or by degrading the session
(:mod:`repro.service.session`).
"""

from __future__ import annotations

from typing import Any


class FaultError(RuntimeError):
    """Base class of every injected (or surfaced) fault."""

    #: Site the fault was injected at (e.g. ``"server:2"``).
    site: str

    def __init__(self, message: str, site: str = ""):
        super().__init__(message)
        self.site = site

    def __reduce__(self) -> tuple[Any, ...]:
        # Custom __init__ signatures break default exception pickling;
        # the process backend ships these across worker boundaries.
        return (type(self), (self.args[0], self.site))


class PageReadError(FaultError):
    """A page read failed after exhausting its retry budget."""

    def __init__(self, page_id: int, site: str, attempts: int):
        super().__init__(
            f"page {page_id} unreadable at {site!r} after "
            f"{attempts} attempt(s)",
            site,
        )
        self.page_id = page_id
        self.attempts = attempts

    def __reduce__(self) -> tuple[Any, ...]:
        return (type(self), (self.page_id, self.site, self.attempts))


class ServerCrash(FaultError):
    """A server died mid-block; its in-flight work is lost."""

    def __init__(self, site: str):
        super().__init__(f"server at {site!r} crashed", site)

    def __reduce__(self) -> tuple[Any, ...]:
        return (type(self), (self.site,))


class ServerTimeout(FaultError):
    """A server exceeded the per-block deadline (straggler)."""

    def __init__(self, site: str, ticks: int, deadline: int):
        super().__init__(
            f"server at {site!r} exceeded the block deadline "
            f"({ticks} > {deadline} ticks)",
            site,
        )
        self.ticks = ticks
        self.deadline = deadline

    def __reduce__(self) -> tuple[Any, ...]:
        return (type(self), (self.site, self.ticks, self.deadline))
