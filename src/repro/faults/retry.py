"""Retry policy: bounded attempts, backoff on the logical tick clock.

Faults are recovered on the same deterministic logical clock the
:class:`~repro.service.scheduler.QueryScheduler` batches on: a retry
does not sleep, it *advances ticks*, so recovery schedules are a pure
function of the fault plan and the request sequence -- reproducible in
tests and across the two parallel backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry schedule shared by page reads and re-dispatch.

    Parameters
    ----------
    max_retries:
        Recovery attempts allowed per fault episode (a page-read retry
        loop, or the re-dispatch loop of one server block).  0 disables
        recovery entirely: the first fault surfaces to the caller.
    backoff_ticks:
        Logical ticks charged before the first retry.
    backoff_factor:
        Multiplier applied per further attempt (exponential backoff).
    deadline_ticks:
        Per-block straggler bound: once a block has accumulated more
        injected-latency/backoff ticks than this, the next latency
        injection raises :class:`~repro.faults.errors.ServerTimeout`
        instead of stalling further.  ``None`` disables the deadline.
    """

    max_retries: int = 3
    backoff_ticks: int = 1
    backoff_factor: float = 2.0
    deadline_ticks: int | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.backoff_ticks < 0:
            raise ValueError("backoff_ticks cannot be negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.deadline_ticks is not None and self.deadline_ticks < 0:
            raise ValueError("deadline_ticks cannot be negative")

    def allows(self, attempt: int) -> bool:
        """Whether recovery attempt number ``attempt`` (1-based) may run."""
        return attempt <= self.max_retries

    def backoff(self, attempt: int) -> int:
        """Ticks to wait before recovery attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempts are numbered from 1")
        return int(self.backoff_ticks * self.backoff_factor ** (attempt - 1))

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "max_retries": self.max_retries,
            "backoff_ticks": self.backoff_ticks,
            "backoff_factor": self.backoff_factor,
            "deadline_ticks": self.deadline_ticks,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RetryPolicy":
        """Build a policy from a plan-file ``retry`` section."""
        known = {"max_retries", "backoff_ticks", "backoff_factor", "deadline_ticks"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown retry-policy fields: {sorted(unknown)}")
        return cls(**dict(payload))
