"""Deterministic, seedable fault plans.

A :class:`FaultPlan` describes *what goes wrong where*: per-site
specifications of fault kind, probability (or explicit operation
indices), injected latency and fault budget, plus the
:class:`~repro.faults.retry.RetryPolicy` recovery is allowed to spend.

Determinism is the load-bearing property.  Every ``(spec, site)`` pair
gets its own :class:`random.Random` seeded from
``(plan seed, spec pattern, site name)`` -- string seeding hashes via
SHA-512, so draws are stable across processes and platforms, and each
site's fault sequence is independent of how other sites interleave.
The same plan over the same workload therefore injects the same faults
on the model backend, the process backend, and on every re-run, which
is what lets tests assert byte-identical recovery.

Plans serialise to JSON (see ``ci/chaos-*.json`` for committed
examples)::

    {
      "seed": 11,
      "retry": {"max_retries": 4, "backoff_ticks": 1},
      "sites": {
        "server:*": {
          "kinds": ["page_read_error", "latency"],
          "probability": 0.05,
          "latency_ticks": 2,
          "max_faults": null
        }
      }
    }
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Mapping

from repro.faults.retry import RetryPolicy

KIND_PAGE_READ_ERROR = "page_read_error"
KIND_LATENCY = "latency"
KIND_SERVER_CRASH = "server_crash"
KIND_SERVER_TIMEOUT = "server_timeout"

#: Every fault kind a plan may schedule.
FAULT_KINDS = (
    KIND_PAGE_READ_ERROR,
    KIND_LATENCY,
    KIND_SERVER_CRASH,
    KIND_SERVER_TIMEOUT,
)


@dataclass(frozen=True)
class FaultDecision:
    """One fired fault: what to inject at the current operation."""

    kind: str
    site: str
    latency_ticks: int = 0


@dataclass(frozen=True)
class SiteSpec:
    """Fault schedule for the sites matching one pattern.

    Parameters
    ----------
    pattern:
        ``fnmatch`` pattern over site names (``"server:1"``,
        ``"server:*"``, ``"*"``).  A disk consults the specs whose
        pattern matches its own site name, in sorted pattern order.
    probability:
        Per-operation firing probability (one page read = one
        operation).  Ignored when ``at_ops`` is given.
    kinds:
        Fault kinds this spec may inject; when several are listed, one
        is drawn uniformly (from the spec's own RNG) per firing.
    latency_ticks:
        Logical ticks a ``latency`` injection stalls the server for.
    max_faults:
        Total fault budget of this spec per site (``None`` = unbounded).
    at_ops:
        Explicit 0-based operation indices to fire at -- the
        deterministic schedule used by tests and the recovery bench.
    """

    pattern: str
    probability: float = 0.0
    kinds: tuple[str, ...] = (KIND_PAGE_READ_ERROR,)
    latency_ticks: int = 1
    max_faults: int | None = None
    at_ops: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not self.pattern:
            raise ValueError("site pattern cannot be empty")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if not self.kinds:
            raise ValueError("need at least one fault kind")
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; known: {', '.join(FAULT_KINDS)}"
                )
        if self.latency_ticks < 0:
            raise ValueError("latency_ticks cannot be negative")
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError("max_faults cannot be negative")

    def matches(self, site: str) -> bool:
        """Whether this spec applies to ``site``."""
        return fnmatchcase(site, self.pattern)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (without the pattern key)."""
        payload: dict[str, Any] = {
            "probability": self.probability,
            "kinds": list(self.kinds),
            "latency_ticks": self.latency_ticks,
            "max_faults": self.max_faults,
        }
        if self.at_ops is not None:
            payload["at_ops"] = list(self.at_ops)
        return payload

    @classmethod
    def from_dict(cls, pattern: str, payload: Mapping[str, Any]) -> "SiteSpec":
        """Build a spec from one ``sites`` entry of a plan file."""
        known = {"probability", "kinds", "latency_ticks", "max_faults", "at_ops"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown site-spec fields for {pattern!r}: {sorted(unknown)}"
            )
        kinds = payload.get("kinds", [KIND_PAGE_READ_ERROR])
        if isinstance(kinds, str):
            kinds = [kinds]
        at_ops = payload.get("at_ops")
        return cls(
            pattern=pattern,
            probability=float(payload.get("probability", 0.0)),
            kinds=tuple(kinds),
            latency_ticks=int(payload.get("latency_ticks", 1)),
            max_faults=(
                int(payload["max_faults"])
                if payload.get("max_faults") is not None
                else None
            ),
            at_ops=tuple(int(op) for op in at_ops) if at_ops is not None else None,
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seedable description of every fault a run may inject."""

    seed: int = 0
    sites: tuple[SiteSpec, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def specs_for(self, site: str) -> list[SiteSpec]:
        """Specs applying to one site, in deterministic pattern order."""
        return sorted(
            (spec for spec in self.sites if spec.matches(site)),
            key=lambda spec: spec.pattern,
        )

    def rng_for(self, spec: SiteSpec, site: str) -> random.Random:
        """The private RNG of one ``(spec, site)`` pair.

        String seeding is hashed with SHA-512 by :mod:`random`, so the
        stream is stable across processes (``PYTHONHASHSEED``-free).
        """
        return random.Random(f"{self.seed}/{spec.pattern}/{site}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "seed": self.seed,
            "retry": self.retry.to_dict(),
            "sites": {spec.pattern: spec.to_dict() for spec in self.sites},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        """Build a plan from parsed JSON."""
        known = {"seed", "retry", "sites"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown fault-plan fields: {sorted(unknown)}")
        retry = RetryPolicy.from_dict(payload.get("retry", {}))
        sites = tuple(
            SiteSpec.from_dict(pattern, spec)
            for pattern, spec in sorted(payload.get("sites", {}).items())
        )
        return cls(seed=int(payload.get("seed", 0)), sites=sites, retry=retry)

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        """Load a plan from a JSON file (``repro serve --faults``)."""
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def save(self, path: str) -> None:
        """Write the plan as JSON."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
