"""Deterministic fault injection and recovery for the query stack.

See :mod:`repro.faults.plan` for the seedable fault plans,
:mod:`repro.faults.injector` for the runtime, and
``docs/robustness.md`` for the fault model and recovery semantics.
"""

from repro.faults.errors import (
    FaultError,
    PageReadError,
    ServerCrash,
    ServerTimeout,
)
from repro.faults.injector import DiskFaultGate, FaultContext, FaultInjector
from repro.faults.plan import (
    FAULT_KINDS,
    KIND_LATENCY,
    KIND_PAGE_READ_ERROR,
    KIND_SERVER_CRASH,
    KIND_SERVER_TIMEOUT,
    FaultDecision,
    FaultPlan,
    SiteSpec,
)
from repro.faults.retry import RetryPolicy

__all__ = [
    "FAULT_KINDS",
    "KIND_LATENCY",
    "KIND_PAGE_READ_ERROR",
    "KIND_SERVER_CRASH",
    "KIND_SERVER_TIMEOUT",
    "DiskFaultGate",
    "FaultContext",
    "FaultDecision",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "PageReadError",
    "RetryPolicy",
    "ServerCrash",
    "ServerTimeout",
    "SiteSpec",
]
