"""Self-time phase profiler over the recorded span tree.

The tracer already records every ``maybe_phase`` span with a duration,
a span id and its parent's id -- including worker-process spans merged
back by :meth:`~repro.obs.tracing.Tracer.absorb` with disjoint id
ranges.  This module aggregates that tree after the fact:

* per-phase **inclusive** time (the span's own duration) and **self**
  time (duration minus the time spent in child spans, clamped at zero
  so clock jitter between a parent and its children never goes
  negative), with call counts;
* **folded stacks** -- one line per unique root-to-leaf phase path,
  ``parent;child;leaf <self_time_µs>`` -- the interchange format that
  flamegraph.pl, speedscope and ``inferno`` all load directly.

``repro profile <trace.jsonl[.gz]>`` runs both over a recorded trace
and is pure post-processing: nothing here runs during a workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping


@dataclass
class PhaseStat:
    """Aggregated times for one phase name across the whole trace."""

    name: str
    count: int = 0
    inclusive_s: float = 0.0
    self_s: float = 0.0


@dataclass
class ProfileResult:
    """Everything ``repro profile`` renders and exports."""

    phases: list[PhaseStat]
    #: ``"a;b;c" -> self seconds`` aggregated over identical stacks.
    folded: dict[str, float]
    n_spans: int
    total_s: float = field(init=False)

    def __post_init__(self) -> None:
        self.total_s = sum(stat.self_s for stat in self.phases)


def _span_records(
    records: Iterable[Mapping[str, Any]],
) -> list[Mapping[str, Any]]:
    return [
        r
        for r in records
        if r.get("kind") == "span" and r.get("span_id") is not None
    ]


def profile_trace(records: Iterable[Mapping[str, Any]]) -> ProfileResult:
    """Aggregate a trace's span records into a :class:`ProfileResult`.

    Works on any record list :func:`repro.obs.tracing.read_jsonl`
    returns; event records are ignored.  Spans whose parent never made
    it into the ring buffer (dropped, or a cross-process root) are
    treated as roots.
    """
    spans = _span_records(records)
    by_id: dict[int, Mapping[str, Any]] = {s["span_id"]: s for s in spans}
    child_time: dict[int, float] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent in by_id:
            child_time[parent] = child_time.get(parent, 0.0) + float(
                span.get("dur_s", 0.0)
            )

    stats: dict[str, PhaseStat] = {}
    folded: dict[str, float] = {}
    for span in spans:
        name = str(span.get("name", "?"))
        inclusive = float(span.get("dur_s", 0.0))
        self_s = max(0.0, inclusive - child_time.get(span["span_id"], 0.0))
        stat = stats.setdefault(name, PhaseStat(name))
        stat.count += 1
        stat.inclusive_s += inclusive
        stat.self_s += self_s
        if self_s > 0.0:
            stack = _stack_of(span, by_id)
            folded[stack] = folded.get(stack, 0.0) + self_s

    ordered = sorted(
        stats.values(), key=lambda s: (-s.self_s, -s.inclusive_s, s.name)
    )
    return ProfileResult(phases=ordered, folded=folded, n_spans=len(spans))


def _stack_of(
    span: Mapping[str, Any], by_id: Mapping[int, Mapping[str, Any]]
) -> str:
    """Root-to-leaf ``;``-joined phase path via the parent chain."""
    names = [str(span.get("name", "?"))]
    seen = {span["span_id"]}
    parent = span.get("parent_id")
    while parent is not None and parent in by_id and parent not in seen:
        seen.add(parent)
        node = by_id[parent]
        names.append(str(node.get("name", "?")))
        parent = node.get("parent_id")
    return ";".join(reversed(names))


def folded_lines(result: ProfileResult) -> list[str]:
    """The folded-stack file, one ``stack <self_µs>`` line per stack.

    Weights are integer microseconds (the format's convention is an
    integer sample count); zero-weight stacks are dropped.  Lines are
    sorted so repeated runs of a deterministic trace diff cleanly.
    """
    lines = []
    for stack in sorted(result.folded):
        micros = round(result.folded[stack] * 1e6)
        if micros > 0:
            lines.append(f"{stack} {micros}")
    return lines


def write_folded(result: ProfileResult, path: str) -> int:
    """Write the folded-stack file; returns the number of stacks."""
    lines = folded_lines(result)
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


def render_profile(result: ProfileResult, top: int = 20) -> str:
    """Aligned per-phase table, heaviest self time first (CLI output)."""
    title = "phase profile"
    lines = [title, "-" * len(title)]
    if not result.phases:
        lines.append("  (no spans -- was the run traced?)")
        return "\n".join(lines)
    lines.append(
        f"  {'phase':<28}{'count':>8}{'inclusive':>12}{'self':>12}{'self %':>8}"
    )
    total = result.total_s or 1.0
    for stat in result.phases[:top]:
        lines.append(
            f"  {stat.name:<28}{stat.count:>8}"
            f"{stat.inclusive_s:>11.4f}s{stat.self_s:>11.4f}s"
            f"{100.0 * stat.self_s / total:>7.1f}%"
        )
    if len(result.phases) > top:
        lines.append(f"  ... {len(result.phases) - top} more phases")
    lines.append(
        f"  {result.n_spans} spans, {len(result.folded)} unique stacks, "
        f"{result.total_s:.4f}s total self time"
    )
    return "\n".join(lines)
