"""Declarative service-level objectives over the metrics snapshot.

An :class:`SLOObjective` states what "good" means for one signal the
observability layer already records -- no new instrumentation, the
engine is a pure read of :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`:

* ``kind="latency"`` -- at least ``target`` of the observations in the
  named histogram must be <= ``threshold`` seconds.  Compliance is
  counted *conservatively* from the cumulative buckets: an observation
  is good only when its whole bucket's upper bound is <= the threshold,
  so bucket-resolution error can under- but never over-state compliance.
* ``kind="completeness"`` -- the per-ticket answer completeness (1.0
  for normally completed tickets, the recorded fraction for tickets the
  degraded-service path answered partially) must average at least
  ``threshold``, and the fraction of fully-complete tickets must reach
  ``target``.

Each evaluation yields the compliance ratio, the remaining error
budget, and the **burn rate** ``(1 - compliance) / (1 - target)`` --
the standard SRE framing: 1.0 means failures arrive exactly as fast as
the budget allows; above 1.0 the objective is burning budget it does
not have and the result is a breach.

Specs load from a dict, a JSON file, or a small YAML subset
(``load_slo_spec``) -- parsed by a dependency-free reader since the
toolchain deliberately has no YAML library.  ``repro serve --slo`` and
``repro report --slo`` evaluate and render them (see
``docs/observability.md`` for the spec format).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

#: Valid objective kinds.
KIND_LATENCY = "latency"
KIND_COMPLETENESS = "completeness"

#: Counters the completeness objective reads (stamped by the scheduler).
COMPLETED_COUNTER = "service.tickets.completed"
DEGRADED_COUNTER = "service.tickets.degraded"
COMPLETENESS_HISTOGRAM = "service.completeness"


@dataclass(frozen=True)
class SLOObjective:
    """One declarative objective over an existing metric.

    Parameters
    ----------
    name:
        Display name (``client-latency-p95`` style).
    kind:
        ``"latency"`` or ``"completeness"``.
    metric:
        Histogram name the objective reads.  Latency objectives require
        it; completeness objectives default to the scheduler's
        ``service.completeness`` histogram.
    threshold:
        Latency: the good/bad boundary in seconds.  Completeness: the
        minimum acceptable mean answer completeness.
    target:
        Required fraction of good events (the SLO itself), in (0, 1).
    """

    name: str
    kind: str
    threshold: float
    target: float
    metric: str = ""

    def __post_init__(self) -> None:
        if self.kind not in (KIND_LATENCY, KIND_COMPLETENESS):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be in (0, 1)")
        if self.kind == KIND_LATENCY and not self.metric:
            raise ValueError("latency objectives need a metric name")
        if self.threshold <= 0.0:
            raise ValueError("threshold must be positive")


@dataclass(frozen=True)
class SLOResult:
    """Evaluation of one objective against one snapshot."""

    objective: SLOObjective
    #: Fraction of good events, or ``None`` with no observations.
    compliance: float | None
    #: Good / total event counts behind the compliance ratio.
    good: float
    total: float
    #: ``(1 - compliance) / (1 - target)``; ``None`` without data.
    burn_rate: float | None
    #: Mean completeness (completeness objectives only).
    mean_completeness: float | None = None

    @property
    def status(self) -> str:
        """``"ok"``, ``"breach"``, or ``"no-data"``."""
        if self.compliance is None:
            return "no-data"
        if self.compliance + 1e-12 < self.objective.target:
            return "breach"
        if (
            self.mean_completeness is not None
            and self.mean_completeness + 1e-12 < self.objective.threshold
        ):
            return "breach"
        return "ok"

    @property
    def ok(self) -> bool:
        """Whether the objective holds (no data counts as holding)."""
        return self.status != "breach"

    def summary(self) -> dict[str, Any]:
        """Flat JSON-ready form (CI artifacts, ``--json`` output)."""
        return {
            "name": self.objective.name,
            "kind": self.objective.kind,
            "metric": self.objective.metric,
            "threshold": self.objective.threshold,
            "target": self.objective.target,
            "compliance": self.compliance,
            "good": self.good,
            "total": self.total,
            "burn_rate": self.burn_rate,
            "mean_completeness": self.mean_completeness,
            "status": self.status,
        }


def _histogram_good_total(
    histogram: Mapping[str, Any], threshold: float
) -> tuple[float, float]:
    """Conservative (good, total) from a histogram snapshot.

    The snapshot lists only non-empty buckets as ``{"le": count}`` with
    the upper bound formatted via ``%.3g`` (infinity as ``"inf"``); a
    bucket is good only when its *upper* bound is <= the threshold, so
    observations straddling the boundary bucket are counted bad.
    """
    total = float(histogram.get("count", 0))
    good = 0.0
    for le_text, count in histogram.get("buckets", {}).items():
        le = float(le_text)
        if le <= threshold:
            good += count
    return good, total


def evaluate_slo(
    objective: SLOObjective, snapshot: Mapping[str, Any]
) -> SLOResult:
    """Evaluate one objective against one metrics snapshot."""
    histograms = snapshot.get("histograms", {})
    if objective.kind == KIND_LATENCY:
        histogram = histograms.get(objective.metric, {})
        good, total = _histogram_good_total(histogram, objective.threshold)
        compliance = good / total if total else None
        burn = _burn_rate(compliance, objective.target)
        return SLOResult(
            objective=objective,
            compliance=compliance,
            good=good,
            total=total,
            burn_rate=burn,
        )
    # Completeness: fully-completed tickets are good; degraded tickets
    # are bad events whose recorded partial completeness still counts
    # toward the mean (the error budget burns by the shortfall).
    counters = snapshot.get("counters", {})
    completed = float(counters.get(COMPLETED_COUNTER, 0))
    metric = objective.metric or COMPLETENESS_HISTOGRAM
    degraded_hist = histograms.get(metric, {})
    degraded = float(degraded_hist.get("count", counters.get(DEGRADED_COUNTER, 0)))
    partial_sum = float(degraded_hist.get("sum", 0.0))
    total = completed + degraded
    compliance = completed / total if total else None
    mean_completeness = (
        (completed + partial_sum) / total if total else None
    )
    burn = _burn_rate(compliance, objective.target)
    return SLOResult(
        objective=objective,
        compliance=compliance,
        good=completed,
        total=total,
        burn_rate=burn,
        mean_completeness=mean_completeness,
    )


def evaluate_slos(
    objectives: Sequence[SLOObjective], snapshot: Mapping[str, Any]
) -> list[SLOResult]:
    """Evaluate every objective against one metrics snapshot."""
    return [evaluate_slo(objective, snapshot) for objective in objectives]


def _burn_rate(compliance: float | None, target: float) -> float | None:
    if compliance is None:
        return None
    budget = 1.0 - target
    burn = (1.0 - compliance) / budget
    return burn if math.isfinite(burn) else None


# ---------------------------------------------------------------------------
# Spec loading
# ---------------------------------------------------------------------------


def parse_slo_spec(spec: Mapping[str, Any]) -> list[SLOObjective]:
    """Build objectives from the dict form of a spec.

    The spec is ``{"objectives": [{name, kind, metric, threshold,
    target}, ...]}``; unknown keys raise so typos fail loudly in CI
    rather than silently weakening an objective.
    """
    raw = spec.get("objectives")
    if not isinstance(raw, list) or not raw:
        raise ValueError("SLO spec needs a non-empty 'objectives' list")
    allowed = {"name", "kind", "metric", "threshold", "target"}
    objectives = []
    for i, entry in enumerate(raw):
        if not isinstance(entry, Mapping):
            raise ValueError(f"objective #{i} is not a mapping")
        unknown = set(entry) - allowed
        if unknown:
            raise ValueError(
                f"objective #{i} has unknown keys: {sorted(unknown)}"
            )
        objectives.append(
            SLOObjective(
                name=str(entry.get("name", f"objective-{i}")),
                kind=str(entry["kind"]),
                metric=str(entry.get("metric", "")),
                threshold=float(entry["threshold"]),
                target=float(entry["target"]),
            )
        )
    return objectives


def load_slo_spec(source: Mapping[str, Any] | str) -> list[SLOObjective]:
    """Load objectives from a dict, a JSON file, or a YAML-subset file.

    A string is a file path; JSON is tried first, then the
    :func:`_parse_mini_yaml` subset (block mappings, ``- `` item lists,
    scalars) -- enough for ``ci/slo.yml`` without a YAML dependency.
    """
    if isinstance(source, Mapping):
        return parse_slo_spec(source)
    with open(source, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        data = _parse_mini_yaml(text)
    if not isinstance(data, Mapping):
        raise ValueError(f"SLO spec {source!r} is not a mapping")
    return parse_slo_spec(data)


def _parse_scalar(text: str) -> Any:
    text = text.strip()
    if text and text[0] in "\"'" and text[-1:] == text[0]:
        return text[1:-1]
    lowered = text.lower()
    if lowered in ("true", "yes"):
        return True
    if lowered in ("false", "no"):
        return False
    if lowered in ("null", "~", ""):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _parse_mini_yaml(text: str) -> dict[str, Any]:
    """Parse the YAML subset SLO specs use (no external dependency).

    Supported: nested block mappings (``key:`` / ``key: value``), lists
    of scalars or flat mappings (``- key: value`` with aligned
    continuation lines), comments, and plain scalars.  Anchors, flow
    collections and multi-line strings are not -- specs needing them
    should use JSON, which every loader path accepts first.
    """
    lines: list[tuple[int, str]] = []
    for raw in text.splitlines():
        without_comment = raw.split("#", 1)[0].rstrip()
        if not without_comment.strip():
            continue
        indent = len(without_comment) - len(without_comment.lstrip())
        lines.append((indent, without_comment.strip()))

    def parse_block(start: int, indent: int) -> tuple[Any, int]:
        # List block?
        if start < len(lines) and lines[start][1].startswith("- "):
            items: list[Any] = []
            i = start
            while i < len(lines) and lines[i][0] == indent and lines[i][1].startswith("- "):
                head = lines[i][1][2:].strip()
                item_indent = lines[i][0] + 2
                if ":" in head:
                    # Inline first key of a mapping item; continuation
                    # lines are the keys indented past the dash.
                    key, _, rest = head.partition(":")
                    mapping: dict[str, Any] = {key.strip(): _parse_scalar(rest)}
                    i += 1
                    while (
                        i < len(lines)
                        and lines[i][0] >= item_indent
                        and not lines[i][1].startswith("- ")
                    ):
                        key, _, rest = lines[i][1].partition(":")
                        if rest.strip():
                            mapping[key.strip()] = _parse_scalar(rest)
                            i += 1
                        else:
                            value, i = parse_block(i + 1, lines[i][0] + 2)
                            mapping[key.strip()] = value
                    items.append(mapping)
                else:
                    items.append(_parse_scalar(head))
                    i += 1
            return items, i
        # Mapping block.
        result: dict[str, Any] = {}
        i = start
        while i < len(lines) and lines[i][0] == indent and not lines[i][1].startswith("- "):
            key, sep, rest = lines[i][1].partition(":")
            if not sep:
                raise ValueError(f"cannot parse line: {lines[i][1]!r}")
            if rest.strip():
                result[key.strip()] = _parse_scalar(rest)
                i += 1
            else:
                next_indent = lines[i + 1][0] if i + 1 < len(lines) else indent
                if next_indent > indent:
                    value, i = parse_block(i + 1, next_indent)
                    result[key.strip()] = value
                else:
                    result[key.strip()] = None
                    i += 1
        return result, i

    parsed, _ = parse_block(0, lines[0][0] if lines else 0)
    if not isinstance(parsed, dict):
        raise ValueError("top level of an SLO spec must be a mapping")
    return parsed


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def render_slo(results: Sequence[SLOResult]) -> str:
    """Aligned text table of SLO evaluations (CLI output)."""
    lines = ["service-level objectives", "-" * len("service-level objectives")]
    header = (
        f"  {'objective':<24}{'kind':<14}{'target':>8}{'compliance':>12}"
        f"{'burn':>8}  status"
    )
    lines.append(header)
    for result in results:
        objective = result.objective
        compliance = (
            f"{result.compliance:12.4f}" if result.compliance is not None else f"{'-':>12}"
        )
        burn = (
            f"{result.burn_rate:8.2f}" if result.burn_rate is not None else f"{'-':>8}"
        )
        lines.append(
            f"  {objective.name:<24}{objective.kind:<14}"
            f"{objective.target:>8.3f}{compliance}{burn}  {result.status}"
        )
        if result.mean_completeness is not None:
            lines.append(
                f"  {'':<24}{'mean completeness':<14}"
                f"{objective.threshold:>8.3f}{result.mean_completeness:>12.4f}"
            )
    breaches = sum(1 for r in results if r.status == "breach")
    lines.append("")
    lines.append(
        f"  {len(results)} objectives, {breaches} breached"
        if breaches
        else f"  {len(results)} objectives, all within budget"
    )
    return "\n".join(lines)
