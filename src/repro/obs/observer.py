"""The Observer: one metrics registry + one tracer per run.

An :class:`Observer` is the handle the pipeline components report
through.  It is *opt-in*: a :class:`~repro.core.database.Database`
without an attached observer runs the exact uninstrumented code (the
page engines are resolved to the raw functions), so the default path
pays nothing.  With an observer attached, every phase is timed into a
latency histogram and (when tracing is enabled) recorded as a span.
"""

from __future__ import annotations

import contextlib
import time
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import DEFAULT_TRACE_CAPACITY, Tracer

#: Shared reusable no-op context for ``maybe_phase`` without an observer.
_NULL_CONTEXT = contextlib.nullcontext()


def maybe_phase(observer: "Observer | None", name: str, **attrs: Any) -> Any:
    """``observer.phase(name, ...)`` or a shared no-op context manager.

    The guard the mining drivers use around their iteration loops: with
    no observer the call costs one ``is None`` check and returns a
    shared :func:`contextlib.nullcontext`, keeping the fast path free of
    tracer state.
    """
    if observer is None:
        return _NULL_CONTEXT
    return observer.phase(name, **attrs)


class _PhaseTimer:
    """Times one phase into ``phase.<name>.seconds`` plus a span."""

    __slots__ = ("_observer", "_name", "_span", "_start")

    def __init__(self, observer: "Observer", name: str, attrs: dict[str, Any]):
        self._observer = observer
        self._name = name
        self._span = observer.tracer.span(name, **attrs)

    def __enter__(self) -> "_PhaseTimer":
        self._span.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        elapsed = time.perf_counter() - self._start
        self._observer.metrics.observe(f"phase.{self._name}.seconds", elapsed)
        self._span.__exit__(*exc_info)

    @property
    def span_id(self) -> int | None:
        """Span id of the live phase, or ``None`` when tracing is off.

        Used to hand a parent span id across process boundaries so
        worker-side spans can link into the caller's causal tree.
        """
        return getattr(self._span, "span_id", None)


class Observer:
    """Bundle of a :class:`MetricsRegistry` and a :class:`Tracer`.

    Parameters
    ----------
    trace:
        Whether to record spans/events.  With ``False`` the tracer's
        no-op fast path is taken everywhere and only metrics (phase
        histograms, event counters, collectors) are gathered.
    trace_capacity:
        Ring-buffer size of the tracer (oldest entries are dropped
        beyond this; drops are counted in the snapshot).
    """

    def __init__(
        self,
        trace: bool = True,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = (
            tracer
            if tracer is not None
            else Tracer(capacity=trace_capacity, enabled=trace)
        )
        #: Optional windowed time-series collector (see
        #: :mod:`repro.obs.timeline`); ``None`` keeps every tick-clock
        #: call site on its existing one-attribute-check fast path.
        self.timeline: Any = None

    def attach_timeline(self, timeline: Any) -> Any:
        """Attach a :class:`~repro.obs.timeline.TimelineCollector`.

        Sets the back-reference the collector uses to surface anomaly
        firings as observer events, and returns the collector.
        """
        self.timeline = timeline
        timeline.observer = self
        return timeline

    def event(self, name: str, **attrs: Any) -> None:
        """Count an event and (when tracing) record it with attributes."""
        self.metrics.inc(f"events.{name}")
        self.tracer.event(name, **attrs)

    def phase(self, name: str, **attrs: Any) -> _PhaseTimer:
        """Context manager: histogram ``phase.<name>.seconds`` + span."""
        return _PhaseTimer(self, name, attrs)

    # -- output --------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Metrics snapshot plus tracer buffer statistics."""
        snapshot = self.metrics.snapshot()
        snapshot["trace"] = {
            "enabled": self.tracer.enabled,
            "buffered": len(self.tracer),
            "emitted": self.tracer.n_emitted,
            "dropped": self.tracer.n_dropped,
            "capacity": self.tracer.capacity,
        }
        return snapshot

    def write_metrics(self, path: str) -> None:
        """Write the metrics snapshot (incl. trace stats) as JSON.

        The output is deterministic -- keys sorted at every level,
        floats rounded to 9 significant digits -- so sidecars from
        repeated runs of a deterministic workload diff cleanly.
        """
        import json

        from repro.obs.metrics import _json_default, stable_floats

        with open(path, "w") as handle:
            json.dump(
                stable_floats(self.snapshot()),
                handle,
                indent=2,
                sort_keys=True,
                default=_json_default,
            )
            handle.write("\n")

    def write_prometheus(self, path: str) -> None:
        """Write the registry in Prometheus text exposition format.

        With a timeline attached, the latest closed window additionally
        surfaces as per-counter ``_rate`` gauges.
        """
        with open(path, "w") as handle:
            handle.write(self.metrics.to_prometheus(timeline=self.timeline))

    def write_timeline(self, path: str, deterministic: bool = True) -> int:
        """Flush and export the attached timeline as JSONL(.gz).

        Returns the number of windows written; raises when no timeline
        collector is attached.
        """
        if self.timeline is None:
            raise ValueError("no timeline collector attached")
        self.timeline.flush()
        return self.timeline.export_jsonl(path, deterministic=deterministic)

    def write_trace(self, path: str) -> int:
        """Write the trace ring buffer as JSONL; returns entry count.

        Paths ending in ``.gz`` (e.g. ``trace.jsonl.gz``) are
        gzip-compressed; :func:`repro.obs.tracing.read_jsonl` reads
        them back transparently.
        """
        return self.tracer.export_jsonl(path)
