"""Curses-free live terminal dashboard for a serving episode.

``repro top`` drives the same multi-client trace as ``repro serve`` but
renders this dashboard after every scheduler round: queue depth and
occupancy, time-to-first-answer p50/p99, completed/degraded ticket
counts, per-window rate sparklines from the live (unfiltered) timeline
ring, and the most recent anomaly firings.  Rendering is plain text --
a frame is one string, the CLI repaints with an ANSI home+clear when
stdout is a TTY and just prints frames sequentially when it is not
(CI logs stay readable).  Everything here reads existing state; nothing
is recorded dashboard-side.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.timeline import TimelineCollector
    from repro.service.scheduler import QueryScheduler

#: Eight-level block characters, lowest to highest.
SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 32) -> str:
    """Render a numeric series as a fixed-width unicode sparkline.

    The series is resampled to ``width`` points (last ``width`` values
    when longer, left-padded when shorter) and scaled to its own
    min/max; a flat series renders mid-height.  Non-finite values
    render as spaces.
    """
    if width < 1:
        return ""
    tail = [float(v) for v in values[-width:]]
    finite = [v for v in tail if math.isfinite(v)]
    if not finite:
        return " " * width
    low, high = min(finite), max(finite)
    span = high - low
    chars = []
    for value in tail:
        if not math.isfinite(value):
            chars.append(" ")
        elif span <= 0.0:
            chars.append(SPARK_CHARS[len(SPARK_CHARS) // 2])
        else:
            level = int((value - low) / span * (len(SPARK_CHARS) - 1))
            chars.append(SPARK_CHARS[level])
    return " " * (width - len(chars)) + "".join(chars)


def _quantiles(histogram: dict[str, Any]) -> tuple[float, float]:
    return (
        float(histogram.get("p50", float("nan"))),
        float(histogram.get("p99", float("nan"))),
    )


def _fmt_s(value: float) -> str:
    if not math.isfinite(value):
        return "-"
    if value >= 1.0:
        return f"{value:.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.1f}ms"
    return f"{value * 1e6:.0f}µs"


def render_dashboard(
    scheduler: "QueryScheduler",
    timeline: "TimelineCollector | None" = None,
    width: int = 44,
) -> str:
    """One dashboard frame for the current scheduler/timeline state."""
    observer = scheduler.observer
    snapshot = observer.snapshot() if observer is not None else {}
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})

    ttfa_p50, ttfa_p99 = _quantiles(
        histograms.get("service.time_to_first_answer.seconds", {})
    )
    occupancy = histograms.get("service.batch_occupancy", {})
    completed = counters.get("service.tickets.completed", 0)
    degraded = counters.get("service.tickets.degraded", 0)

    title = "repro top"
    lines = [title, "-" * len(title)]
    lines.append(
        f"  tick {scheduler.tick:<8} queue {scheduler.queue_depth:<6} "
        f"block target {scheduler.block_target:<4} "
        f"degraded sessions {gauges.get('service.degraded_sessions', 0):.0f}"
    )
    lines.append(
        f"  tickets: {completed} completed, {degraded} degraded | "
        f"occupancy mean {occupancy.get('mean', 0.0):.1f} "
        f"(n={occupancy.get('count', 0)})"
    )
    lines.append(
        f"  TTFA p50 {_fmt_s(ttfa_p50):<9} p99 {_fmt_s(ttfa_p99):<9} "
        f"anomalies fired {counters.get('anomaly.fired', 0)} "
        f"replans {getattr(scheduler, 'anomaly_replans', 0)}"
    )

    if timeline is not None and timeline.windows:
        windows = list(timeline.windows)
        lines.append(
            f"  timeline: {timeline.n_closed} windows closed "
            f"({timeline.window_ticks} ticks each)"
        )
        for label, key in (
            ("pages/tick", "pages_per_tick"),
            ("queries/tick", "queries_per_tick"),
            ("sharing", "sharing_factor"),
            ("skew", "server_skew"),
        ):
            series = [
                float(w.get("rates", {}).get(key, float("nan")))
                for w in windows
            ]
            if any(math.isfinite(v) for v in series):
                latest = next(
                    (v for v in reversed(series) if math.isfinite(v)),
                    float("nan"),
                )
                lines.append(
                    f"  {label:<13}{sparkline(series, width)}  {latest:.2f}"
                )
    else:
        lines.append("  timeline: (no closed windows yet)")

    feed = list(timeline.anomaly_log)[-5:] if timeline is not None else []
    if feed:
        lines.append("  anomaly feed:")
        for firing in feed:
            lines.append(
                f"    [w{firing.get('window', '?')}] {firing['rule']} "
                f"({firing['kind']}) {firing['series']} = "
                f"{firing['value']:.3g}"
                + ("  -> replan" if firing.get("replan") else "")
            )
    else:
        lines.append("  anomaly feed: (quiet)")
    return "\n".join(lines)
