"""Online anomaly detection over timeline windows.

Declarative rules -- loaded from JSON or the same dependency-free
mini-YAML subset :mod:`repro.obs.slo` parses -- are evaluated by an
:class:`AnomalyEngine` against every window the
:class:`~repro.obs.timeline.TimelineCollector` closes.  Three rule
kinds cover the ROADMAP's "replan adaptively from live metrics" loop:

* ``kind="threshold"`` -- fire when the windowed series compares true
  against a fixed value (``counters.service.tickets.degraded > 0``).
* ``kind="ewma"`` -- fire when the series drifts from its exponentially
  weighted moving average by more than a relative ``tolerance``; the
  first ``warmup`` windows only feed the average, so startup transients
  never fire.
* ``kind="ratio_to_baseline"`` -- fire when the series exceeds
  ``max_ratio`` times a committed baseline value from
  ``benchmarks/baselines.json`` (optionally rescaled, e.g. a per-window
  budget derived from a whole-run baseline).

Series are addressed as ``<section>.<name>`` into the window record --
``counters.*`` / ``gauges.*`` / ``collected.*`` are windowed registry
series, ``cost.*`` the block-level cost-counter deltas, ``rates.*`` the
derived rates, and ``observations.<name>.count|sum|mean`` windowed
histogram deltas.  A series absent from a window is *skipped*, not
fired: no data is not an anomaly, mirroring the SLO engine's
no-data-is-not-a-breach stance.

Each firing increments ``anomaly.fired`` (and a per-rule counter),
emits an ``anomaly.fired`` observer event, lands in the window record,
and -- the part that closes the loop -- is queued on the collector for
:meth:`repro.service.scheduler.QueryScheduler.replan`, which reacts to
rules marked ``replan: true`` by halving its block target.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.obs.slo import _parse_mini_yaml

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.observer import Observer

KIND_THRESHOLD = "threshold"
KIND_EWMA = "ewma"
KIND_RATIO = "ratio_to_baseline"

_KINDS = (KIND_THRESHOLD, KIND_EWMA, KIND_RATIO)

#: Comparison operators (YAML authors must quote the symbol forms).
_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}
_OP_ALIASES = {"gt": ">", "ge": ">=", "lt": "<", "le": "<="}

_WINDOW_SECTIONS = (
    "counters",
    "gauges",
    "collected",
    "cost",
    "rates",
    "observations",
    "servers",
)


@dataclass
class AnomalyRule:
    """One declarative rule over a windowed series.

    Parameters
    ----------
    name:
        Display name (``degraded-tickets`` style); also the suffix of
        the per-rule ``anomaly.fired.<name>`` counter.
    kind:
        ``"threshold"``, ``"ewma"`` or ``"ratio_to_baseline"``.
    series:
        Window series selector, ``<section>.<name>`` (see module doc).
    op / value:
        Threshold rules: fire when ``series op value`` holds.
    alpha / tolerance / warmup:
        EWMA rules: smoothing factor, relative drift bound, and the
        number of windows that only feed the average before any firing.
    baseline / baseline_field / max_ratio / scale:
        Ratio rules: entry key in the baseline store, dotted field path
        inside the entry (default ``seconds``), the firing ratio, and a
        rescaling factor applied to the baseline value first.
    replan:
        Whether the scheduler should react (halve its block target).
    """

    name: str
    kind: str
    series: str
    op: str = ">"
    value: float = 0.0
    alpha: float = 0.3
    tolerance: float = 0.5
    warmup: int = 3
    baseline: str = ""
    baseline_field: str = "seconds"
    max_ratio: float = 2.0
    scale: float = 1.0
    replan: bool = False
    # EWMA state (mutated across windows).
    _ewma: float | None = field(default=None, repr=False, compare=False)
    _seen: int = field(default=0, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown anomaly kind {self.kind!r}")
        self.op = _OP_ALIASES.get(self.op, self.op)
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison op {self.op!r}")
        section = self.series.split(".", 1)[0]
        if "." not in self.series or section not in _WINDOW_SECTIONS:
            raise ValueError(
                f"series {self.series!r} must be <section>.<name> with "
                f"section in {_WINDOW_SECTIONS}"
            )
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        if self.warmup < 1:
            raise ValueError("warmup must be >= 1")
        if self.kind == KIND_RATIO and not self.baseline:
            raise ValueError("ratio_to_baseline rules need a baseline key")
        if self.max_ratio <= 0.0 or self.scale <= 0.0:
            raise ValueError("max_ratio and scale must be positive")


def series_value(window: Mapping[str, Any], series: str) -> float | None:
    """Resolve a ``<section>.<name>`` selector against one window.

    Returns ``None`` when the series is absent (skip, don't fire).
    Observation selectors take a trailing ``.count`` / ``.sum`` /
    ``.mean`` accessor (default ``mean``).
    """
    section, _, name = series.partition(".")
    values = window.get(section)
    if not isinstance(values, Mapping) or not name:
        return None
    if section == "observations":
        accessor = "mean"
        base, _, tail = name.rpartition(".")
        if tail in ("count", "sum", "mean") and base:
            name, accessor = base, tail
        entry = values.get(name)
        if not isinstance(entry, Mapping):
            return None
        count = float(entry.get("count", 0))
        total = float(entry.get("sum", 0.0))
        if accessor == "count":
            return count
        if accessor == "sum":
            return total
        return total / count if count else None
    value = values.get(name)
    return float(value) if isinstance(value, (int, float)) else None


class AnomalyEngine:
    """Evaluates a rule set against every closed timeline window."""

    def __init__(
        self,
        rules: Sequence[AnomalyRule],
        baselines: Mapping[str, Any] | None = None,
    ):
        if not rules:
            raise ValueError("anomaly engine needs at least one rule")
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names in {names}")
        self.rules = list(rules)
        #: ``entry key -> entry dict`` view of a baseline store.
        self.baselines = dict(baselines) if baselines else {}
        self.n_fired = 0

    def evaluate(
        self,
        window: Mapping[str, Any],
        observer: "Observer | None" = None,
    ) -> list[dict[str, Any]]:
        """One pass of every rule over one window; returns the firings.

        Firing side effects (counters, observer event) happen here so
        callers -- the timeline collector, primarily -- only have to
        route the returned firing records.
        """
        firings = []
        for rule in self.rules:
            firing = self._evaluate_rule(rule, window)
            if firing is None:
                continue
            firings.append(firing)
            self.n_fired += 1
            if observer is not None:
                observer.metrics.inc("anomaly.fired")
                observer.metrics.inc(f"anomaly.fired.{rule.name}")
                observer.event(
                    "anomaly.fired",
                    rule=rule.name,
                    kind=rule.kind,
                    series=rule.series,
                    value=firing["value"],
                    window=firing["window"],
                )
        return firings

    def _evaluate_rule(
        self, rule: AnomalyRule, window: Mapping[str, Any]
    ) -> dict[str, Any] | None:
        value = series_value(window, rule.series)
        if value is None:
            return None
        detail: dict[str, Any]
        if rule.kind == KIND_THRESHOLD:
            fired = _OPS[rule.op](value, rule.value)
            detail = {"op": rule.op, "threshold": rule.value}
        elif rule.kind == KIND_EWMA:
            previous, seen = rule._ewma, rule._seen
            rule._seen = seen + 1
            rule._ewma = (
                value
                if previous is None
                else rule.alpha * value + (1.0 - rule.alpha) * previous
            )
            if previous is None or seen < rule.warmup:
                return None
            bound = rule.tolerance * max(abs(previous), 1e-9)
            fired = abs(value - previous) > bound
            detail = {"ewma": previous, "tolerance": rule.tolerance}
        else:  # ratio_to_baseline
            entry = self.baselines.get(rule.baseline)
            if entry is None:
                return None
            reference = _field(entry, rule.baseline_field)
            if reference is None or reference <= 0.0:
                return None
            reference *= rule.scale
            ratio = value / reference
            fired = ratio > rule.max_ratio
            detail = {
                "baseline": rule.baseline,
                "reference": reference,
                "ratio": ratio,
                "max_ratio": rule.max_ratio,
            }
        if not fired:
            return None
        firing = {
            "rule": rule.name,
            "kind": rule.kind,
            "series": rule.series,
            "value": value,
            "window": window.get("window"),
            "tick_end": window.get("tick_end"),
            "replan": rule.replan,
        }
        firing.update(detail)
        return firing


def _field(entry: Mapping[str, Any], path: str) -> float | None:
    """Dotted-path lookup into a baseline entry (``counters.x`` etc.)."""
    node: Any = entry
    for part in path.split("."):
        if not isinstance(node, Mapping) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


# ---------------------------------------------------------------------------
# Spec loading
# ---------------------------------------------------------------------------

_RULE_KEYS = {
    "name",
    "kind",
    "series",
    "op",
    "value",
    "alpha",
    "tolerance",
    "warmup",
    "baseline",
    "baseline_field",
    "max_ratio",
    "scale",
    "replan",
}

_FLOAT_KEYS = ("value", "alpha", "tolerance", "max_ratio", "scale")


def parse_anomaly_spec(spec: Mapping[str, Any]) -> list[AnomalyRule]:
    """Build rules from the dict form of a spec.

    The spec is ``{"rules": [{name, kind, series, ...}, ...]}`` plus an
    optional top-level ``baseline_store`` path; unknown keys raise so
    typos fail loudly rather than silently disarming a rule.
    """
    raw = spec.get("rules")
    if not isinstance(raw, list) or not raw:
        raise ValueError("anomaly spec needs a non-empty 'rules' list")
    rules = []
    for i, entry in enumerate(raw):
        if not isinstance(entry, Mapping):
            raise ValueError(f"rule #{i} is not a mapping")
        unknown = set(entry) - _RULE_KEYS
        if unknown:
            raise ValueError(f"rule #{i} has unknown keys: {sorted(unknown)}")
        kwargs: dict[str, Any] = {
            "name": str(entry.get("name", f"rule-{i}")),
            "kind": str(entry["kind"]),
            "series": str(entry["series"]),
        }
        for key in ("op", "baseline", "baseline_field"):
            if key in entry:
                kwargs[key] = str(entry[key])
        for key in _FLOAT_KEYS:
            if key in entry:
                kwargs[key] = float(entry[key])
        if "warmup" in entry:
            kwargs["warmup"] = int(entry["warmup"])
        if "replan" in entry:
            kwargs["replan"] = bool(entry["replan"])
        rules.append(AnomalyRule(**kwargs))
    return rules


def load_anomaly_spec(
    source: Mapping[str, Any] | str,
) -> tuple[list[AnomalyRule], str | None]:
    """Load ``(rules, baseline_store_path)`` from a dict/JSON/YAML spec.

    A string is a file path; JSON is tried first, then the mini-YAML
    subset shared with :mod:`repro.obs.slo`.  A relative
    ``baseline_store`` in a file-loaded spec is resolved against the
    working directory first, then the spec file's directory, then the
    spec's parent directory -- so the committed ``ci/anomaly.yml``
    (which names ``benchmarks/baselines.json`` relative to the
    repository root) works from any working directory.
    """
    spec_dir: str | None = None
    if isinstance(source, Mapping):
        data: Mapping[str, Any] = source
    else:
        spec_dir = os.path.dirname(os.path.abspath(source))
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
        try:
            data = json.loads(text)
        except json.JSONDecodeError:
            data = _parse_mini_yaml(text)
        if not isinstance(data, Mapping):
            raise ValueError(f"anomaly spec {source!r} is not a mapping")
    store = str(data["baseline_store"]) if data.get("baseline_store") else None
    if store and spec_dir is not None and not os.path.isabs(store):
        for root in (os.getcwd(), spec_dir, os.path.dirname(spec_dir)):
            candidate = os.path.normpath(os.path.join(root, store))
            if os.path.exists(candidate):
                store = candidate
                break
    return parse_anomaly_spec(data), store


def load_anomaly_engine(
    source: Mapping[str, Any] | str,
    baseline_store: str | None = None,
) -> AnomalyEngine:
    """Build an engine from a spec, resolving its baseline store.

    ``baseline_store`` overrides the spec's own ``baseline_store``
    path.  The store is the schema-checked ``repro bench`` format (see
    :func:`repro.obs.regression.load_store`); without one,
    ``ratio_to_baseline`` rules simply never fire.
    """
    rules, spec_store = load_anomaly_spec(source)
    store_path = baseline_store or spec_store
    baselines: Mapping[str, Any] = {}
    if store_path:
        from repro.obs.regression import load_store

        baselines = load_store(store_path)
    return AnomalyEngine(rules, baselines=baselines)
