"""Metrics registry: counters, gauges, latency histograms, collectors.

The registry is the *reporting* half of the observability layer.  It
deliberately does not replace :class:`repro.costmodel.Counters` -- the
paper's cost accounting stays a dataclass of plain ints incremented on
the hot paths -- but subsumes it: a :class:`CountersAdapter` registered
as a snapshot-time collector publishes every counter field plus the
derived sharing/avoidance rates under stable metric names (see
``docs/observability.md`` for the full name catalogue).
"""

from __future__ import annotations

import json
import math
import re
from bisect import bisect_left
from typing import Any, Callable, Mapping

from repro.costmodel import Counters

#: Default latency bucket upper bounds: 1 us .. ~316 s in half-decade
#: steps.  Page processing sits around 10 us - 10 ms; whole blocks and
#: figure sweeps reach seconds.
DEFAULT_LATENCY_BOUNDS: tuple[float, ...] = tuple(
    1e-6 * 10 ** (k / 2) for k in range(18)
)


class CounterMetric:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class GaugeMetric:
    """Last-value-wins numeric metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class HistogramMetric:
    """Fixed-bucket latency histogram with quantile estimation.

    Buckets are defined by ascending upper bounds; an observation lands
    in the first bucket whose bound is >= the value (values beyond the
    last bound land in an implicit overflow bucket).  Quantiles are
    estimated as the upper bound of the bucket where the cumulative
    count crosses the requested rank -- coarse, but monotone and cheap,
    which is all a phase profile needs.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, bounds: tuple[float, ...] | None = None):
        self.name = name
        self.bounds = tuple(bounds) if bounds is not None else DEFAULT_LATENCY_BOUNDS
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile, linearly interpolated within its bucket.

        The covering bucket is the one where the cumulative count
        crosses ``q * count``; the estimate interpolates between the
        bucket's bounds by how far into the bucket the rank falls
        (clamped to the observed min/max, so a single-observation
        histogram reports the observation itself rather than its
        bucket's upper bound -- keeping ``repro report`` p50/p99 and
        the SLO engine's conservative bucket counting consistent on
        single-bucket data).

        An empty histogram has no quantiles: returns ``float("nan")``
        deterministically (rather than an arbitrary bucket bound) so
        callers can distinguish "no observations" from "observed zero".
        Report rendering shows such cells as ``-``.
        """
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n and cumulative + n >= rank:
                lower = self.bounds[i - 1] if i > 0 else self.min
                lower = max(lower, self.min)
                upper = (
                    min(self.bounds[i], self.max)
                    if i < len(self.bounds)
                    else self.max
                )
                if upper <= lower:
                    return upper
                fraction = min(1.0, max(0.0, (rank - cumulative) / n))
                return lower + (upper - lower) * fraction
            cumulative += n
        return self.max

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready summary (only non-empty buckets are listed)."""
        buckets = {}
        for i, n in enumerate(self.counts):
            if n:
                le = self.bounds[i] if i < len(self.bounds) else math.inf
                buckets[f"{le:.3g}"] = n
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": buckets,
        }


class MetricsRegistry:
    """Named metrics plus snapshot-time collectors.

    Collectors are zero-argument callables returning a flat
    ``name -> number`` mapping, evaluated only when :meth:`snapshot` is
    called; they are how always-on state (cost counters, buffer pools)
    is published without any write-path coupling.
    """

    def __init__(self) -> None:
        self._counters: dict[str, CounterMetric] = {}
        self._gauges: dict[str, GaugeMetric] = {}
        self._histograms: dict[str, HistogramMetric] = {}
        self._collectors: list[Callable[[], Mapping[str, float]]] = []

    # -- creation / lookup ---------------------------------------------

    def counter(self, name: str) -> CounterMetric:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = CounterMetric(name)
        return metric

    def gauge(self, name: str) -> GaugeMetric:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = GaugeMetric(name)
        return metric

    def histogram(
        self, name: str, bounds: tuple[float, ...] | None = None
    ) -> HistogramMetric:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = HistogramMetric(name, bounds)
        return metric

    # -- convenience write paths ---------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def register_collector(
        self, collector: Callable[[], Mapping[str, float]]
    ) -> None:
        """Add a snapshot-time source of ``name -> number`` values."""
        self._collectors.append(collector)

    # -- output --------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """One JSON-ready view of every metric and collector."""
        collected: dict[str, float] = {}
        for collector in self._collectors:
            collected.update(collector())
        return {
            "counters": {n: m.value for n, m in sorted(self._counters.items())},
            "gauges": {n: m.value for n, m in sorted(self._gauges.items())},
            "histograms": {
                n: m.snapshot() for n, m in sorted(self._histograms.items())
            },
            "collected": dict(sorted(collected.items())),
        }

    def write_json(self, path: str) -> None:
        """Write :meth:`snapshot` to ``path`` as indented JSON."""
        with open(path, "w") as handle:
            json.dump(self.snapshot(), handle, indent=2, default=_json_default)
            handle.write("\n")

    def to_prometheus(self, prefix: str = "repro_", timeline: Any = None) -> str:
        """Render every metric in Prometheus text exposition format.

        Counters, gauges and collected values become ``counter`` /
        ``gauge`` samples; histograms become the standard cumulative
        ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.  Metric
        names are mangled to the Prometheus charset (dots become
        underscores) under ``prefix``; a leading digit after mangling
        gets an underscore prepended.  Distinct registry names can
        mangle to the same exposition name -- each ``# TYPE`` line is
        emitted once per exposition name (first metric wins), since
        duplicated metadata lines make scrapers reject the whole page.

        With a :class:`~repro.obs.timeline.TimelineCollector` passed as
        ``timeline``, the latest closed window is exposed as windowed
        gauges: ``<counter>_rate`` (per-tick delta rate) for every
        counter that moved, plus ``<prefix>timeline_<rate>`` for the
        window's derived rates.
        """
        lines: list[str] = []
        typed: set[str] = set()

        def type_line(pname: str, kind: str) -> None:
            if pname not in typed:
                typed.add(pname)
                lines.append(f"# TYPE {pname} {kind}")

        collected: dict[str, float] = {}
        for collector in self._collectors:
            collected.update(collector())
        for name, counter in sorted(self._counters.items()):
            pname = _prometheus_name(name, prefix)
            type_line(pname, "counter")
            lines.append(f"{pname} {counter.value}")
        for name, gauge in sorted(self._gauges.items()):
            pname = _prometheus_name(name, prefix)
            type_line(pname, "gauge")
            lines.append(f"{pname} {_prometheus_value(gauge.value)}")
        for name, value in sorted(collected.items()):
            pname = _prometheus_name(name, prefix)
            type_line(pname, "gauge")
            lines.append(f"{pname} {_prometheus_value(value)}")
        for name, histogram in sorted(self._histograms.items()):
            pname = _prometheus_name(name, prefix)
            type_line(pname, "histogram")
            cumulative = 0
            for bound, count in zip(histogram.bounds, histogram.counts):
                cumulative += count
                le = _escape_label(_prometheus_value(float(bound)))
                lines.append(f'{pname}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f'{pname}_bucket{{le="+Inf"}} {histogram.count}')
            lines.append(f"{pname}_sum {_prometheus_value(histogram.sum)}")
            lines.append(f"{pname}_count {histogram.count}")
        window = timeline.windows[-1] if timeline is not None and timeline.windows else None
        if window is not None:
            ticks = max(1, int(window.get("ticks", 1)))
            for name, delta in sorted(window.get("counters", {}).items()):
                pname = _prometheus_name(name, prefix) + "_rate"
                type_line(pname, "gauge")
                lines.append(f"{pname} {_prometheus_value(delta / ticks)}")
            for name, value in sorted(window.get("rates", {}).items()):
                pname = _prometheus_name(f"timeline.{name}", prefix)
                type_line(pname, "gauge")
                lines.append(f"{pname} {_prometheus_value(float(value))}")
        return "\n".join(lines) + "\n"


def _prometheus_name(name: str, prefix: str) -> str:
    mangled = prefix + re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    # The exposition charset forbids a leading digit (possible with an
    # empty prefix).
    if mangled and mangled[0].isdigit():
        mangled = "_" + mangled
    return mangled


def _escape_label(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prometheus_value(value: float) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            return "NaN"
        if value.is_integer():
            return str(int(value))
        return repr(value)
    return str(value)


def _json_default(value: Any) -> Any:
    if isinstance(value, float) and math.isinf(value):
        return "inf" if value > 0 else "-inf"
    raise TypeError(f"not JSON serializable: {value!r}")


def stable_floats(value: Any, sigfigs: int = 9) -> Any:
    """Recursively round floats to ``sigfigs`` significant digits.

    Applied before serialising snapshots so repeated runs of a
    deterministic workload produce byte-identical files apart from
    genuinely different measurements; non-finite floats pass through
    (handled by :func:`_json_default`).
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        if not math.isfinite(value) or value == 0.0:
            return value
        return float(f"{value:.{sigfigs}g}")
    if isinstance(value, dict):
        return {key: stable_floats(item, sigfigs) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [stable_floats(item, sigfigs) for item in value]
    return value


class CountersAdapter:
    """Publish a :class:`~repro.costmodel.Counters` into a registry.

    The adapter reads the dataclass only at snapshot time, so the
    existing counters keep their exact semantics and hot-path cost
    (plain int increments); every existing test of ``Counters`` is
    untouched.  Each field appears as ``cost.<field>``; the derived
    Sec. 5.1/5.2 effectiveness ratios appear under ``derived.``.
    """

    def __init__(self, counters: Counters, prefix: str = "cost."):
        self.counters = counters
        self.prefix = prefix

    def collect(self) -> dict[str, float]:
        counters = self.counters
        prefix = self.prefix
        out: dict[str, float] = {
            prefix + name: value for name, value in counters.as_dict().items()
        }
        out[prefix + "page_reads"] = counters.page_reads
        out[prefix + "total_distance_calculations"] = (
            counters.total_distance_calculations
        )
        out["derived.sharing_factor"] = counters.sharing_factor
        out["derived.avoidance_hit_rate"] = counters.avoidance_hit_rate
        return out


def attach_counters(
    registry: MetricsRegistry, counters: Counters, prefix: str = "cost."
) -> CountersAdapter:
    """Register a :class:`CountersAdapter` as a snapshot collector."""
    adapter = CountersAdapter(counters, prefix)
    registry.register_collector(adapter.collect)
    return adapter
