"""Benchmark baseline store and performance-regression comparison.

Backs the ``repro bench`` CLI subcommand: benchmark results are kept in
a schema-versioned JSON *baseline store* keyed by
``benchmark/.../engine-or-access-method``, and fresh runs are compared
against the committed store with configurable relative thresholds.

Two signals per entry, with very different reliability:

* ``counters`` -- the paper's deterministic cost accounting (page
  reads, distance calculations, avoided calculations, ...).  With fixed
  seeds these are machine-independent, so the comparison is (near-)
  exact and catches algorithmic regressions -- a pruning bound loosened,
  an avoidance test dropped -- even on noisy CI runners.
* ``seconds`` -- wall-clock time, compared with a loose relative
  threshold; catches implementation-level slowdowns on a quiet machine.

The *quick suite* (:func:`run_quick_suite`) is a fixed-seed k-NN block
workload over every registered access method plus a DBSCAN mining run;
it finishes in seconds and is what CI checks on every push.  Results of
the heavyweight standalone benchmarks (``benchmarks/bench_*.py``) are
imported into the same store via :func:`entries_from_bench_file`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

#: Store schema identifier; bump on incompatible layout changes.
SCHEMA_VERSION = "repro-bench/1"

#: Access methods exercised by the quick suite, in run order.
QUICK_ACCESS_METHODS = ("scan", "xtree", "rstar", "mtree", "vafile")

#: Counter fields recorded per quick-suite entry (all deterministic
#: under fixed seeds).
_COUNTER_FIELDS = (
    "page_reads",
    "distance_calculations",
    "avoidance_tries",
    "avoided_calculations",
    "queries_completed",
)


def make_entry(
    seconds: float,
    counters: Mapping[str, int] | None = None,
    meta: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """One baseline-store entry (plain dict, JSON-ready)."""
    entry: dict[str, Any] = {"seconds": float(seconds)}
    if counters:
        entry["counters"] = {k: int(v) for k, v in sorted(counters.items())}
    if meta:
        entry["meta"] = dict(meta)
    return entry


# ----------------------------------------------------------------------
# Baseline store I/O
# ----------------------------------------------------------------------


def save_store(path: str, entries: Mapping[str, dict[str, Any]]) -> None:
    """Write ``entries`` as a schema-versioned baseline store."""
    store = {
        "schema": SCHEMA_VERSION,
        "entries": {key: entries[key] for key in sorted(entries)},
    }
    with open(path, "w") as handle:
        json.dump(store, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_store(path: str) -> dict[str, dict[str, Any]]:
    """Load a baseline store; raises on a schema mismatch."""
    with open(path) as handle:
        store = json.load(handle)
    schema = store.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"baseline store {path!r} has schema {schema!r}, "
            f"expected {SCHEMA_VERSION!r}"
        )
    return dict(store.get("entries", {}))


# ----------------------------------------------------------------------
# Converters for the standalone benchmark result files
# ----------------------------------------------------------------------


def entries_from_engine_kernels(result: Mapping[str, Any]) -> dict[str, dict]:
    """Convert a ``BENCH_engine_kernels.json`` payload into store entries."""
    entries: dict[str, dict] = {}
    for row in result.get("rows", []):
        stem = (
            f"engine_kernels/{row['metric']}/{row['scenario']}"
            f"/page{row['page_size']}/batch{row['batch_size']}"
        )
        for engine, seconds in row["seconds"].items():
            entries[f"{stem}/{engine}"] = make_entry(
                seconds,
                meta={
                    "dimension": row.get("dimension"),
                    "use_avoidance": row.get("use_avoidance"),
                },
            )
    return entries


def entries_from_obs_overhead(result: Mapping[str, Any]) -> dict[str, dict]:
    """Convert a ``BENCH_obs_overhead.json`` payload into store entries."""
    entries: dict[str, dict] = {}
    for row in result.get("rows", []):
        for mode, seconds in row["seconds"].items():
            entries[f"obs_overhead/{row['engine']}/{mode}"] = make_entry(
                seconds,
                meta={
                    "n_objects": row.get("n_objects"),
                    "n_queries": row.get("n_queries"),
                    "block_size": row.get("block_size"),
                },
            )
    return entries


def entries_from_service(result: Mapping[str, Any]) -> dict[str, dict]:
    """Convert a ``BENCH_service.json`` payload into store entries.

    Each row carries wall-clock seconds *and* the run's deterministic
    cost counters, so the scheduler-throughput guard has the same exact
    counter signal as the quick suite.
    """
    entries: dict[str, dict] = {}
    for row in result.get("rows", []):
        entries[f"service/{row['order']}/knn"] = make_entry(
            row["seconds"],
            counters=row.get("counters"),
            meta={
                "n_objects": row.get("n_objects"),
                "n_clients": row.get("n_clients"),
                "n_queries": row.get("n_queries"),
                "block_target": row.get("block_target"),
                "queries_per_second": row.get("queries_per_second"),
            },
        )
    return entries


def entries_from_faults(result: Mapping[str, Any]) -> dict[str, dict]:
    """Convert a ``BENCH_faults.json`` payload into store entries.

    One entry per fault scenario (``no_faults``, ``empty_plan``,
    ``one_crash``, ``straggler``...).  Counters are recorded for every
    scenario; because recovery is counter-neutral they must all equal
    the ``no_faults`` row's, so any drift -- including overhead creeping
    into the faults-disabled path -- fails ``repro bench --check``
    exactly.
    """
    entries: dict[str, dict] = {}
    for row in result.get("rows", []):
        entries[f"faults/{row['scenario']}"] = make_entry(
            row["seconds"],
            counters=row.get("counters"),
            meta={
                "n_objects": result.get("n_objects"),
                "n_queries": result.get("n_queries"),
                "access": result.get("access"),
                "injected": row.get("injected"),
                "redispatches": row.get("redispatches"),
            },
        )
    return entries


def entries_from_prefilter(result: Mapping[str, Any]) -> dict[str, dict]:
    """Convert a ``BENCH_prefilter.json`` payload into store entries.

    One entry per run mode (``off``, ``exact``, ``exact_noavoid``,
    ``approx...``).  Counters are recorded for every mode; the exact
    modes must match the ``off`` row's counters byte-for-byte (the
    pre-filter's identity guarantee), so any drift fails
    ``repro bench --check`` exactly.  Page-candidate reduction and
    measured recall ride along as metadata.
    """
    entries: dict[str, dict] = {}
    for row in result.get("rows", []):
        entries[f"prefilter/{row['mode']}"] = make_entry(
            row["seconds"],
            counters=row.get("counters"),
            meta={
                "n_objects": result.get("n_objects"),
                "n_queries": result.get("n_queries"),
                "access": result.get("access"),
                "pages_pruned": row.get("pages_pruned"),
                "pages_skipped": row.get("pages_skipped"),
                "candidate_reduction": row.get("candidate_reduction"),
                "measured_recall": row.get("measured_recall"),
            },
        )
    return entries


def entries_from_optimizer(result: Mapping[str, Any]) -> dict[str, dict]:
    """Convert a ``BENCH_optimizer.json`` payload into store entries.

    One entry per optimizer mode (``v1``, ``v2``).  Counters are
    recorded for both; wall-clock carries the throughput headline, and
    the v2-vs-v1 speedup plus the identity-sweep verdict (v2 forced to
    one partition must match v1 byte-for-byte across every access
    method x engine cell) ride along as metadata.
    """
    entries: dict[str, dict] = {}
    for row in result.get("rows", []):
        entries[f"optimizer/{row['mode']}"] = make_entry(
            row["seconds"],
            counters=row.get("counters"),
            meta={
                "n_objects": result.get("n_objects"),
                "n_queries": result.get("n_queries"),
                "speedup_vs_v1": row.get("speedup_vs_v1"),
                "queries_per_second": row.get("queries_per_second"),
                "partitions_mean": row.get("partitions_mean"),
                "identity_cells": result.get("identity_cells"),
            },
        )
    return entries


def entries_from_net(result: Mapping[str, Any]) -> dict[str, dict]:
    """Convert a ``BENCH_net.json`` payload into store entries.

    One entry per replay mode (``in-process``, ``wire``).  Counters are
    the served database's deterministic cost accounting -- identical
    across modes by the wire path's byte-identity guarantee, so any
    drift between the socket path and the in-process path fails
    ``repro bench --check`` exactly.  Client-observed latency
    percentiles and shed/degraded totals ride along as metadata.
    """
    entries: dict[str, dict] = {}
    for row in result.get("rows", []):
        entries[f"net/{row['mode']}/knn"] = make_entry(
            row["seconds"],
            counters=row.get("counters"),
            meta={
                "n_objects": result.get("n_objects"),
                "n_queries": result.get("n_queries"),
                "offered_rate": result.get("offered_rate"),
                "queries_per_second": row.get("queries_per_second"),
                "latency_p50_ms": row.get("latency_p50_ms"),
                "latency_p99_ms": row.get("latency_p99_ms"),
                "shed": row.get("shed"),
                "degraded": row.get("degraded"),
                "identical_to_in_process": result.get(
                    "identical_to_in_process"
                ),
            },
        )
    return entries


def entries_from_bench_file(path: str) -> dict[str, dict]:
    """Convert a committed ``BENCH_*.json`` file, dispatching on its kind."""
    with open(path) as handle:
        result = json.load(handle)
    kind = result.get("benchmark")
    if kind == "engine_kernels":
        return entries_from_engine_kernels(result)
    if kind == "obs_overhead":
        return entries_from_obs_overhead(result)
    if kind == "service":
        return entries_from_service(result)
    if kind == "faults":
        return entries_from_faults(result)
    if kind == "prefilter":
        return entries_from_prefilter(result)
    if kind == "optimizer":
        return entries_from_optimizer(result)
    if kind == "net":
        return entries_from_net(result)
    raise ValueError(f"unknown benchmark kind {kind!r} in {path!r}")


# ----------------------------------------------------------------------
# The quick suite
# ----------------------------------------------------------------------


def run_quick_suite(
    n_objects: int = 2000,
    dimension: int = 16,
    n_queries: int = 24,
    block_size: int = 8,
    seed: int = 0,
) -> dict[str, dict]:
    """Fixed-seed k-NN blocks over every access method, plus DBSCAN.

    Every entry records wall-clock seconds *and* the deterministic cost
    counters of the run, so the comparison has a machine-independent
    exact signal next to the noisy timing one.
    """
    from repro.core.database import Database
    from repro.core.types import knn_query
    from repro.mining.dbscan import dbscan
    from repro.workloads import make_gaussian_mixture, sample_database_queries

    dataset = make_gaussian_mixture(
        n=n_objects, dimension=dimension, n_clusters=16, cluster_std=0.05, seed=seed
    )
    indices = sample_database_queries(dataset, n_queries, seed=seed + 1)
    queries = [dataset[i] for i in indices]
    meta = {
        "n_objects": n_objects,
        "dimension": dimension,
        "n_queries": n_queries,
        "block_size": block_size,
        "seed": seed,
    }

    entries: dict[str, dict] = {}
    for access in QUICK_ACCESS_METHODS:
        database = Database(dataset, access=access, block_size=2048)
        start = time.perf_counter()
        with database.measure() as run:
            database.run_in_blocks(
                queries, knn_query(10), block_size=block_size, db_indices=indices
            )
        seconds = time.perf_counter() - start
        counters = {
            name: getattr(run.counters, name) for name in _COUNTER_FIELDS
        }
        entries[f"quick/{access}/knn"] = make_entry(seconds, counters, meta)

    # DBSCAN mining run on a smaller slice (it queries every object).
    n_mine = min(n_objects, 600)
    mine_data = make_gaussian_mixture(
        n=n_mine, dimension=8, n_clusters=8, cluster_std=0.03, seed=seed
    )
    database = Database(mine_data, access="xtree", block_size=2048)
    start = time.perf_counter()
    with database.measure() as run:
        result = dbscan(database, eps=0.25, min_pts=4, batch_size=block_size)
    seconds = time.perf_counter() - start
    counters = {name: getattr(run.counters, name) for name in _COUNTER_FIELDS}
    counters["n_clusters"] = result.n_clusters
    counters["queries_issued"] = result.queries_issued
    entries["quick/dbscan/xtree"] = make_entry(
        seconds, counters, {"n_objects": n_mine, "batch_size": block_size}
    )
    return entries


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------


@dataclass
class ComparisonRow:
    """Verdict for one benchmark key."""

    key: str
    status: str  # "ok" | "improved" | "regression" | "new" | "missing"
    seconds_base: float | None = None
    seconds_current: float | None = None
    seconds_ratio: float | None = None
    counter_regressions: list[tuple[str, int, int]] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "status": self.status,
            "seconds_base": self.seconds_base,
            "seconds_current": self.seconds_current,
            "seconds_ratio": self.seconds_ratio,
            "counter_regressions": [
                {"counter": name, "base": base, "current": current}
                for name, base, current in self.counter_regressions
            ],
        }


@dataclass
class ComparisonReport:
    """Outcome of comparing a run against a baseline store."""

    rows: list[ComparisonRow]
    seconds_threshold: float
    counter_threshold: float

    @property
    def regressions(self) -> list[ComparisonRow]:
        return [row for row in self.rows if row.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "seconds_threshold": self.seconds_threshold,
            "counter_threshold": self.counter_threshold,
            "ok": self.ok,
            "regressions": [row.key for row in self.regressions],
            "rows": [row.to_json() for row in self.rows],
        }


def compare(
    current: Mapping[str, dict[str, Any]],
    baseline: Mapping[str, dict[str, Any]],
    seconds_threshold: float = 0.5,
    counter_threshold: float = 0.0,
) -> ComparisonReport:
    """Compare ``current`` entries against a ``baseline`` store.

    A key regresses when its wall-clock ratio exceeds
    ``1 + seconds_threshold`` or any shared counter exceeds its baseline
    by more than ``counter_threshold`` (relative; 0 means exact, with a
    small absolute slack of 2 once a tolerance is given).  Keys only in
    ``current`` are ``new``; keys only in ``baseline`` are ``missing``;
    neither fails the check.
    """
    rows: list[ComparisonRow] = []
    for key in sorted(current):
        cur = current[key]
        base = baseline.get(key)
        if base is None:
            rows.append(
                ComparisonRow(key, "new", seconds_current=cur.get("seconds"))
            )
            continue
        base_seconds = float(base.get("seconds", 0.0))
        cur_seconds = float(cur.get("seconds", 0.0))
        if base_seconds > 0:
            ratio = cur_seconds / base_seconds
        else:
            ratio = float("inf") if cur_seconds > 0 else 1.0

        counter_regressions: list[tuple[str, int, int]] = []
        base_counters = base.get("counters") or {}
        cur_counters = cur.get("counters") or {}
        slack = 2 if counter_threshold > 0 else 0
        for name in sorted(set(base_counters) & set(cur_counters)):
            base_value = int(base_counters[name])
            cur_value = int(cur_counters[name])
            if cur_value > base_value * (1.0 + counter_threshold) + slack:
                counter_regressions.append((name, base_value, cur_value))

        if counter_regressions or ratio > 1.0 + seconds_threshold:
            status = "regression"
        elif ratio < 1.0 / (1.0 + seconds_threshold):
            status = "improved"
        else:
            status = "ok"
        rows.append(
            ComparisonRow(
                key,
                status,
                seconds_base=base_seconds,
                seconds_current=cur_seconds,
                seconds_ratio=ratio,
                counter_regressions=counter_regressions,
            )
        )
    for key in sorted(set(baseline) - set(current)):
        rows.append(
            ComparisonRow(
                key, "missing", seconds_base=baseline[key].get("seconds")
            )
        )
    return ComparisonReport(rows, seconds_threshold, counter_threshold)


def render_comparison(report: ComparisonReport) -> str:
    """Aligned text table of a comparison, regressions spelled out."""
    lines = [
        f"  {'benchmark':<52}{'base':>10}{'current':>10}{'ratio':>8}  status"
    ]
    for row in report.rows:
        base = f"{row.seconds_base * 1e3:8.2f}ms" if row.seconds_base else "-"
        cur = (
            f"{row.seconds_current * 1e3:8.2f}ms" if row.seconds_current else "-"
        )
        ratio = f"{row.seconds_ratio:7.2f}x" if row.seconds_ratio else "-"
        lines.append(f"  {row.key:<52}{base:>10}{cur:>10}{ratio:>8}  {row.status}")
        for name, base_value, cur_value in row.counter_regressions:
            lines.append(
                f"      counter {name}: {base_value:,} -> {cur_value:,}"
            )
    for row in report.regressions:
        detail = []
        if row.seconds_ratio is not None and (
            row.seconds_ratio > 1.0 + report.seconds_threshold
        ):
            detail.append(f"seconds {row.seconds_ratio:.2f}x baseline")
        for name, base_value, cur_value in row.counter_regressions:
            detail.append(f"{name} {base_value:,} -> {cur_value:,}")
        lines.append(f"REGRESSION: {row.key} ({'; '.join(detail)})")
    if report.ok:
        lines.append(
            f"ok: {sum(1 for r in report.rows if r.status != 'missing')} "
            "benchmarks within thresholds"
        )
    return "\n".join(lines)
