"""Pretty-printed run summaries from metrics snapshots and traces.

Powers the ``repro report`` CLI subcommand: given the JSON written by
:meth:`~repro.obs.observer.Observer.write_metrics` (and optionally the
JSONL trace), render the headline sharing/avoidance figures, the
per-phase latency table and the event counts as aligned text.

Reading a sharing-factor report: ``derived.sharing_factor`` is queries
completed per physical page read (Sec. 5.1) -- 1.0 means every page
read served exactly one query (no I/O sharing, the single-query
regime); m means perfect sharing across a block of m queries.
``derived.avoidance_hit_rate`` is the fraction of candidate distance
calculations proven unnecessary by Lemmas 1/2 (Sec. 5.2).
"""

from __future__ import annotations

import math
from typing import Any, Iterable


def _fmt_seconds(value: float) -> str:
    # Empty-histogram quantiles are NaN (see HistogramMetric.quantile);
    # render the cell as "-" rather than a nonsense duration.
    if isinstance(value, float) and math.isnan(value):
        return f"{'-':>10}"
    if value >= 1.0:
        return f"{value:8.3f} s"
    if value >= 1e-3:
        return f"{value * 1e3:8.3f} ms"
    return f"{value * 1e6:8.1f} us"


def _fmt_number(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return f"{'-':>10}"
    return f"{value:10.2f}"


def _section(title: str) -> list[str]:
    return [title, "-" * len(title)]


def summarize_metrics(snapshot: dict[str, Any]) -> str:
    """Render a metrics snapshot as an aligned text summary."""
    collected = snapshot.get("collected", {})
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    lines = _section("run summary")

    headline = [
        ("queries completed", collected.get("cost.queries_completed")),
        ("physical page reads", collected.get("cost.page_reads")),
        ("buffer hit rate", collected.get("derived.buffer_hit_rate")),
        ("sharing factor (queries/page read)", collected.get("derived.sharing_factor")),
        ("distance calculations", collected.get("cost.distance_calculations")),
        ("avoided calculations", collected.get("cost.avoided_calculations")),
        ("avoidance hit rate", collected.get("derived.avoidance_hit_rate")),
    ]
    for label, value in headline:
        if value is None:
            continue
        if isinstance(value, float):
            lines.append(f"  {label:<36}{value:12.4f}")
        else:
            lines.append(f"  {label:<36}{value:12,}")
    for name, value in gauges.items():
        lines.append(f"  {name:<36}{value:12.4f}")

    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("")
        lines.extend(_section("phase latencies"))
        lines.append(
            f"  {'phase':<28}{'count':>8}{'total':>12}{'mean':>12}"
            f"{'p50':>12}{'p95':>12}{'p99':>12}{'max':>12}"
        )
        for name, h in histograms.items():
            label = name
            if label.startswith("phase.") and label.endswith(".seconds"):
                label = label[len("phase."):-len(".seconds")]
            # Histograms whose name does not end in ".seconds" hold
            # plain quantities (batch occupancy, queue waits in ticks),
            # not latencies.  planner.prediction_error.seconds is a
            # ratio histogram despite its suffix (observed/predicted
            # seconds -- dimensionless).
            fmt = (
                _fmt_seconds
                if name.endswith(".seconds")
                and not name.startswith("planner.prediction_error.")
                else _fmt_number
            )
            lines.append(
                f"  {label:<28}{h['count']:>8}"
                f"{fmt(h['sum']):>12}{fmt(h['mean']):>12}"
                f"{fmt(h['p50']):>12}{fmt(h['p95']):>12}"
                f"{fmt(h['p99']):>12}{fmt(h['max']):>12}"
            )

    # Fault/recovery accounting (see docs/robustness.md): injections by
    # kind, retry attempts, survivor re-dispatches, degraded sessions.
    failures = {
        name: value
        for name, value in counters.items()
        if name == "retry.attempt"
        or name == "server.redispatch"
        or name.startswith("fault.")
    }
    degraded = gauges.get("service.degraded_sessions")
    if failures or degraded is not None:
        lines.append("")
        lines.extend(_section("failures"))
        for name, value in sorted(failures.items()):
            lines.append(f"  {name:<36}{value:>10,}")
        if degraded is not None:
            lines.append(f"  {'service.degraded_sessions':<36}{degraded:>10.0f}")

    events = {
        name[len("events."):]: value
        for name, value in counters.items()
        if name.startswith("events.")
    }
    if events:
        lines.append("")
        lines.extend(_section("events"))
        for name, value in sorted(events.items()):
            lines.append(f"  {name:<28}{value:>10,}")

    trace = snapshot.get("trace")
    if trace:
        lines.append("")
        lines.extend(_section("trace buffer"))
        lines.append(
            f"  enabled={trace['enabled']}  buffered={trace['buffered']:,}"
            f"  emitted={trace['emitted']:,}  dropped={trace['dropped']:,}"
            f"  capacity={trace['capacity']:,}"
        )
    return "\n".join(lines)


def summarize_trace(records: Iterable[dict[str, Any]], top: int = 5) -> str:
    """Render a parsed JSONL trace: entry counts and slowest spans."""
    records = list(records)
    by_name: dict[str, int] = {}
    spans: list[dict[str, Any]] = []
    for record in records:
        by_name[record["name"]] = by_name.get(record["name"], 0) + 1
        if record.get("kind") == "span":
            spans.append(record)
    lines = _section(f"trace ({len(records):,} entries)")
    for name, count in sorted(by_name.items()):
        lines.append(f"  {name:<28}{count:>10,}")
    if spans:
        spans.sort(key=lambda r: r.get("dur_s", 0.0), reverse=True)
        lines.append("")
        lines.extend(_section(f"slowest {min(top, len(spans))} spans"))
        for span in spans[:top]:
            attrs = span.get("attrs", {})
            attr_text = " ".join(f"{k}={v}" for k, v in attrs.items())
            lines.append(
                f"  {span['name']:<16}{_fmt_seconds(span['dur_s']):>12}"
                f"  depth={span['depth']}  {attr_text}"
            )
    return "\n".join(lines)


def render_report(
    metrics: dict[str, Any] | None,
    trace_records: Iterable[dict[str, Any]] | None = None,
) -> str:
    """Combine metrics and trace summaries into one report."""
    parts: list[str] = []
    if metrics is not None:
        parts.append(summarize_metrics(metrics))
    if trace_records is not None:
        parts.append(summarize_trace(trace_records))
    return "\n\n".join(parts)
