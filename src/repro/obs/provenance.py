"""Causal per-query provenance: :class:`QueryCard` from trace records.

The tracer (:mod:`repro.obs.tracing`) records what happened; this module
reconstructs *why*, per query: which pages were read and evaluated for
it, which the pre-filter pruned, what the triangle-inequality avoidance
saved, where its wall-time went, and -- on the process backend -- which
simulated server did each piece of the work.

The reconstruction is purely structural: records are indexed by
``span_id``, children grouped by ``parent_id``, and every
``query.drive`` span's subtree is walked.  Worker-process records merge
into the same tree because their tracers adopt the caller's
``parallel.block`` span id as ``root_parent_id`` and allocate span ids
from a disjoint range (see :func:`repro.parallel.executor._worker_block_observer`),
so a page processed in worker process 2 still walks up to the block that
caused it.  Queries are joined on the ``query`` attribute stamped on
``query.admit`` / ``query.drive`` / ``session.first_answer`` records
(:func:`repro.core.multi_query.query_label`) -- process-stable, so the
same logical query lands in one card no matter which servers served it.

``repro explain <query-idx>`` renders one card (see
:mod:`repro.cli`); ``docs/observability.md`` documents the schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


@dataclass(frozen=True)
class PageVisit:
    """One page evaluated (engine kernel ran) while driving a query."""

    page_id: int
    engine: str
    #: Queries of the batch served by this page evaluation.
    batch: int
    seconds: float
    #: Simulated server that processed the page (``None`` in-process).
    server_id: int | None
    span_id: int


@dataclass(frozen=True)
class PrunedPage:
    """One page dropped before the engines while driving a query.

    ``mode`` is ``"exact"`` (sketch bound proved the page empty for the
    whole batch; counters identical, kernels skipped) or ``"approx"``
    (bounded-recall skip before the page was even read).
    """

    page_id: int
    mode: str
    server_id: int | None


@dataclass
class QueryCard:
    """Everything the trace knows about one logical query.

    One card aggregates every ``query.drive`` span carrying the same
    ``query`` label -- on the parallel backends that is one drive per
    server, all within the same block.
    """

    query: str
    kind: str | None = None
    admissions: int = 0
    drives: int = 0
    drive_seconds: float = 0.0
    pages: list[PageVisit] = field(default_factory=list)
    pruned: list[PrunedPage] = field(default_factory=list)
    avoidance_tries: int = 0
    avoided_calculations: int = 0
    computed_calculations: int = 0
    #: ``{"seconds", "pages", "early"}`` of the first streamed answer.
    first_answer: dict[str, Any] | None = None
    #: Sorted simulated-server ids that did work for this query.
    servers: list[int] = field(default_factory=list)
    #: ``ts`` of the first admission (buffer-relative ordering only).
    admitted_ts: float | None = None
    #: Optimizer-v2 partition this query was planned into (from the
    #: ``planner.plan`` event): ``{"partition", "size", "access",
    #: "engine", "block_size", "predicted_ms_per_query", "sharing"}``.
    plan: dict[str, Any] | None = None

    @property
    def engine_seconds(self) -> float:
        """Wall-time spent in page-engine kernels for this query."""
        return sum(visit.seconds for visit in self.pages)

    @property
    def avoidance_rate(self) -> float:
        """Fraction of candidate distances the avoidance lemmas saved."""
        total = self.avoided_calculations + self.computed_calculations
        return self.avoided_calculations / total if total else 0.0

    def summary(self) -> dict[str, Any]:
        """Flat JSON-ready form (the ``repro explain --json`` payload)."""
        return {
            "query": self.query,
            "kind": self.kind,
            "admissions": self.admissions,
            "drives": self.drives,
            "drive_seconds": self.drive_seconds,
            "engine_seconds": self.engine_seconds,
            "pages_processed": len(self.pages),
            "pages_pruned": len(self.pruned),
            "avoidance_tries": self.avoidance_tries,
            "avoided_calculations": self.avoided_calculations,
            "computed_calculations": self.computed_calculations,
            "avoidance_rate": self.avoidance_rate,
            "first_answer": self.first_answer,
            "servers": self.servers,
            "plan": self.plan,
        }


def index_spans(
    records: Sequence[dict[str, Any]],
) -> tuple[dict[int, dict[str, Any]], dict[int, list[dict[str, Any]]]]:
    """Index trace records: ``span_id -> span`` and ``parent -> children``.

    Children include both spans and events; records without a
    ``parent_id`` (or whose parent was evicted from the ring buffer)
    simply root their own subtree.
    """
    by_id: dict[int, dict[str, Any]] = {}
    children: dict[int, list[dict[str, Any]]] = {}
    for record in records:
        span_id = record.get("span_id")
        if span_id is not None:
            by_id[span_id] = record
        parent_id = record.get("parent_id")
        if parent_id is not None:
            children.setdefault(parent_id, []).append(record)
    return by_id, children


def ancestry(
    records: Sequence[dict[str, Any]], span_id: int
) -> list[dict[str, Any]]:
    """The parent chain of one span, nearest first (for tree checks).

    Follows ``parent_id`` links through the merged record list --
    including cross-process links, where a worker span's parent lives in
    another process's id range -- until a root (or an evicted parent) is
    reached.
    """
    by_id, _ = index_spans(records)
    chain: list[dict[str, Any]] = []
    seen: set[int] = set()
    current = by_id.get(span_id)
    while current is not None:
        parent_id = current.get("parent_id")
        if parent_id is None or parent_id in seen:
            break
        seen.add(parent_id)
        parent = by_id.get(parent_id)
        if parent is None:
            break
        chain.append(parent)
        current = parent
    return chain


def _subtree(
    root: dict[str, Any], children: dict[int, list[dict[str, Any]]]
) -> Iterable[dict[str, Any]]:
    """Every record (spans and events) beneath one span, root excluded."""
    stack = [root]
    while stack:
        node = stack.pop()
        span_id = node.get("span_id")
        if span_id is None:
            continue
        for child in children.get(span_id, ()):
            yield child
            stack.append(child)


def build_cards(records: Sequence[dict[str, Any]]) -> dict[str, QueryCard]:
    """Reconstruct one :class:`QueryCard` per logical query.

    Cards are keyed and ordered by the ``query`` label, first admission
    first.  Records without a ``query`` attribute anywhere in their
    ancestry (e.g. warm-up page reads, which Definition 4 charges to the
    session rather than a single driver) are not attributed to any card.
    """
    _, children = index_spans(records)
    cards: dict[str, QueryCard] = {}

    def card(label: str) -> QueryCard:
        existing = cards.get(label)
        if existing is None:
            existing = cards[label] = QueryCard(query=label)
        return existing

    for record in records:
        name = record.get("name")
        attrs = record.get("attrs", {})
        if name == "planner.plan":
            # Optimizer-v2 partition assignments carry all their member
            # queries in one event; fan the plan out to each card.
            plan = {
                key: attrs.get(key)
                for key in (
                    "partition",
                    "size",
                    "access",
                    "engine",
                    "block_size",
                    "predicted_ms_per_query",
                    "sharing",
                )
            }
            for member in str(attrs.get("queries", "")).split("|"):
                if member:
                    card(member).plan = plan
            continue
        label = attrs.get("query")
        if label is None:
            continue
        if name == "query.admit":
            c = card(label)
            c.admissions += 1
            c.kind = attrs.get("kind", c.kind)
            ts = record.get("ts")
            if c.admitted_ts is None and ts is not None:
                c.admitted_ts = ts
        elif name == "session.first_answer":
            c = card(label)
            if c.first_answer is None:
                c.first_answer = {
                    "seconds": attrs.get("seconds"),
                    "pages": attrs.get("pages"),
                    "early": attrs.get("early"),
                }
        elif name == "query.drive" and record.get("kind") == "span":
            c = card(label)
            c.drives += 1
            c.drive_seconds += record.get("dur_s", 0.0)
            server = record.get("server_id")
            if server is not None and server not in c.servers:
                c.servers.append(server)
            for node in _subtree(record, children):
                _fold(c, node)

    for c in cards.values():
        c.servers.sort()
    return dict(
        sorted(
            cards.items(),
            key=lambda item: (
                item[1].admitted_ts if item[1].admitted_ts is not None else 0.0,
                item[0],
            ),
        )
    )


def _fold(card: QueryCard, node: dict[str, Any]) -> None:
    """Fold one drive-subtree record into its query's card."""
    name = node.get("name")
    attrs = node.get("attrs", {})
    server = node.get("server_id")
    if name == "page.process" and node.get("kind") == "span":
        card.pages.append(
            PageVisit(
                page_id=attrs.get("page_id", -1),
                engine=attrs.get("engine", "?"),
                batch=attrs.get("batch", 0),
                seconds=node.get("dur_s", 0.0),
                server_id=server,
                span_id=node["span_id"],
            )
        )
    elif name == "prefilter.prune":
        card.pruned.append(
            PrunedPage(
                page_id=attrs.get("page_id", -1), mode="exact", server_id=server
            )
        )
    elif name == "prefilter.skip":
        card.pruned.append(
            PrunedPage(
                page_id=attrs.get("page_id", -1), mode="approx", server_id=server
            )
        )
    elif name == "avoidance.try":
        card.avoidance_tries += attrs.get("tries", 0)
        card.avoided_calculations += attrs.get("avoided", 0)
        card.computed_calculations += attrs.get("computed", 0)


def render_card(card: QueryCard) -> str:
    """Human-readable causal card (the ``repro explain`` output)."""
    lines = [f"query {card.query}"]
    kind = card.kind if card.kind is not None else "?"
    lines.append(
        f"  kind={kind}  admissions={card.admissions}  drives={card.drives}"
    )
    where = (
        "servers " + ", ".join(str(s) for s in card.servers)
        if card.servers
        else "in-process"
    )
    lines.append(
        f"  wall: drive {card.drive_seconds * 1e3:.3f} ms"
        f"  (engine kernels {card.engine_seconds * 1e3:.3f} ms)  on {where}"
    )
    if card.plan is not None:
        plan = card.plan
        predicted = plan.get("predicted_ms_per_query")
        predicted_text = (
            f"{predicted:.3f} ms/query" if predicted is not None else "?"
        )
        sharing = plan.get("sharing")
        sharing_text = f"{sharing:.2f}x" if sharing is not None else "?"
        lines.append(
            f"  plan: partition {plan.get('partition')}"
            f" (size {plan.get('size')})  access={plan.get('access')}"
            f" engine={plan.get('engine')} block={plan.get('block_size')}"
            f"  predicted {predicted_text}, sharing {sharing_text}"
        )
    if card.first_answer is not None:
        first = card.first_answer
        seconds = first.get("seconds")
        ttfa = f"{seconds * 1e3:.3f} ms" if seconds is not None else "?"
        lines.append(
            f"  first answer: after {ttfa}, {first.get('pages')} pages"
            f" (early={first.get('early')})"
        )
    lines.append(
        f"  pages: {len(card.pages)} evaluated, {len(card.pruned)} pruned"
    )
    for visit in card.pages:
        origin = (
            f" [server {visit.server_id}]" if visit.server_id is not None else ""
        )
        lines.append(
            f"    page {visit.page_id}: engine={visit.engine}"
            f" batch={visit.batch} {visit.seconds * 1e6:.1f} us{origin}"
        )
    for pruned in card.pruned:
        origin = (
            f" [server {pruned.server_id}]" if pruned.server_id is not None else ""
        )
        lines.append(f"    page {pruned.page_id}: pruned ({pruned.mode}){origin}")
    lines.append(
        f"  avoidance: {card.avoidance_tries} tries,"
        f" {card.avoided_calculations} avoided /"
        f" {card.computed_calculations} computed"
        f" ({card.avoidance_rate:.1%} saved)"
    )
    return "\n".join(lines)
