"""Structured observability for the multi-query pipeline.

The paper's argument (Sec. 5-6) is entirely about *where* cost goes:
pages read once but serving many queries, distance calculations avoided
via Lemmas 1 and 2, servers finishing early or late.  This package turns
those claims into live, per-run telemetry:

* :class:`~repro.obs.metrics.MetricsRegistry` -- counters, gauges and
  latency histograms, plus *collectors* that publish the existing
  :class:`~repro.costmodel.Counters` (via
  :class:`~repro.obs.metrics.CountersAdapter`) without touching its hot
  increment paths;
* :class:`~repro.obs.tracing.Tracer` -- lightweight spans and events
  (``query.admit``, ``page.process``, ``avoidance.try``,
  ``block.flush``, ``worker.run``) in a bounded in-memory ring buffer
  with JSONL export, and a strict no-op fast path when disabled;
* :class:`~repro.obs.observer.Observer` -- the bundle a
  :class:`~repro.core.database.Database` (or
  :class:`~repro.parallel.executor.ParallelDatabase`) attaches to; the
  page engines, the multiple-query processor, the buffer pool and the
  parallel backends all report through it.

Nothing here runs unless an observer is attached: every instrumentation
site is guarded by an ``observer is None`` check, and with no observer
the page engines are the exact uninstrumented functions, so the default
path pays nothing.

Quick start::

    from repro import Database, knn_query
    from repro.obs import Observer

    obs = Observer()                      # tracing + metrics
    db = Database(data, access="xtree", observer=obs)
    db.multiple_similarity_query(queries, knn_query(10))
    obs.write_trace("trace.jsonl")        # spans + events
    obs.write_metrics("metrics.json")     # incl. sharing factor,
                                          # avoidance hit-rate, phase
                                          # latency histograms
"""

from repro.obs.anomaly import (
    AnomalyEngine,
    AnomalyRule,
    load_anomaly_engine,
    load_anomaly_spec,
)
from repro.obs.audit import (
    CALIBRATION_DRIFT_GAUGE,
    PREDICTION_ERROR_DISTANCES,
    PREDICTION_ERROR_IO,
    PREDICTION_ERROR_SECONDS,
    PlanAudit,
)
from repro.obs.dashboard import render_dashboard, sparkline
from repro.obs.metrics import (
    CountersAdapter,
    HistogramMetric,
    MetricsRegistry,
    attach_counters,
    stable_floats,
)
from repro.obs.observer import Observer, maybe_phase
from repro.obs.profiler import (
    ProfileResult,
    folded_lines,
    profile_trace,
    render_profile,
    write_folded,
)
from repro.obs.provenance import (
    QueryCard,
    ancestry,
    build_cards,
    render_card,
)
from repro.obs.regression import (
    compare,
    entries_from_bench_file,
    load_store,
    render_comparison,
    run_quick_suite,
    save_store,
)
from repro.obs.report import render_report, summarize_metrics, summarize_trace
from repro.obs.slo import (
    SLOObjective,
    SLOResult,
    evaluate_slos,
    load_slo_spec,
    render_slo,
)
from repro.obs.timeline import (
    TimelineCollector,
    deterministic_series,
    read_timeline,
    render_timeline,
)
from repro.obs.tracing import (
    EVENT_AVOIDANCE_TRY,
    EVENT_BLOCK_FLUSH,
    EVENT_INDEX_FILTER,
    EVENT_INDEX_NODE_VISIT,
    EVENT_INDEX_PRUNE,
    EVENT_MINE_ITERATION,
    EVENT_PAGE_PROCESS,
    EVENT_QUERY_ADMIT,
    EVENT_WORKER_RUN,
    Tracer,
    read_jsonl,
)

__all__ = [
    "AnomalyEngine",
    "AnomalyRule",
    "CALIBRATION_DRIFT_GAUGE",
    "CountersAdapter",
    "EVENT_AVOIDANCE_TRY",
    "EVENT_BLOCK_FLUSH",
    "EVENT_INDEX_FILTER",
    "EVENT_INDEX_NODE_VISIT",
    "EVENT_INDEX_PRUNE",
    "EVENT_MINE_ITERATION",
    "EVENT_PAGE_PROCESS",
    "EVENT_QUERY_ADMIT",
    "EVENT_WORKER_RUN",
    "HistogramMetric",
    "MetricsRegistry",
    "Observer",
    "PREDICTION_ERROR_DISTANCES",
    "PREDICTION_ERROR_IO",
    "PREDICTION_ERROR_SECONDS",
    "PlanAudit",
    "ProfileResult",
    "QueryCard",
    "SLOObjective",
    "SLOResult",
    "TimelineCollector",
    "Tracer",
    "ancestry",
    "attach_counters",
    "build_cards",
    "compare",
    "deterministic_series",
    "entries_from_bench_file",
    "evaluate_slos",
    "folded_lines",
    "load_anomaly_engine",
    "load_anomaly_spec",
    "load_slo_spec",
    "load_store",
    "maybe_phase",
    "profile_trace",
    "read_jsonl",
    "read_timeline",
    "render_card",
    "render_comparison",
    "render_dashboard",
    "render_profile",
    "render_report",
    "render_slo",
    "render_timeline",
    "run_quick_suite",
    "save_store",
    "sparkline",
    "stable_floats",
    "summarize_metrics",
    "summarize_trace",
    "write_folded",
]
