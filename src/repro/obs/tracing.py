"""Lightweight tracing: spans and events in a bounded ring buffer.

A :class:`Tracer` records two kinds of entries:

* **events** -- point-in-time records (``query.admit``,
  ``avoidance.try``, ``worker.run``) with free-form attributes;
* **spans** -- timed, nestable records (``page.process``,
  ``block.flush``, ``query.drive``) carrying a duration, a span id and
  the id of the enclosing span, so per-page costs can be attributed to
  the block and driver query that caused them.

Entries live in a bounded in-memory ring buffer (oldest entries are
dropped once ``capacity`` is reached; drops are counted, never silent)
and export as JSON Lines, one entry per line (gzip-compressed when the
path ends in ``.gz``).  When the tracer is disabled every entry point
returns immediately -- ``event`` is a single attribute check, ``span``
hands out a shared no-op context manager -- so instrumented code paths
stay cheap even when an observer is attached purely for metrics.

Cross-process causality: a tracer can carry an explicit *trace
context* -- ``trace_id`` (stamped on every record), ``server_id``
(which simulated server produced the record) and ``root_parent_id``
(the parent span id, from another process, that adopts this tracer's
top-level spans and events).  ``id_base`` offsets the span-id sequence
so ids from different processes never collide, and :meth:`Tracer.absorb`
folds a worker's drained records back into the parent's buffer.  The
merged JSONL stream then reconstructs as one causal tree per query even
when the pages were processed by worker processes (see
:mod:`repro.obs.provenance`).
"""

from __future__ import annotations

import gzip
import json
import time
import uuid
from collections import deque
from typing import Any, Callable, Iterable

EVENT_QUERY_ADMIT = "query.admit"
EVENT_PAGE_PROCESS = "page.process"
EVENT_AVOIDANCE_TRY = "avoidance.try"
EVENT_BLOCK_FLUSH = "block.flush"
EVENT_WORKER_RUN = "worker.run"
EVENT_QUERY_DRIVE = "query.drive"

# Index-traversal taxonomy (emitted by the access-method page streams).
EVENT_INDEX_NODE_VISIT = "index.node_visit"
EVENT_INDEX_PRUNE = "index.prune"
EVENT_INDEX_FILTER = "index.filter"

# Mining-driver taxonomy (spans wrapping each driver run / iteration).
EVENT_MINE_ITERATION = "mine.iteration"

DEFAULT_TRACE_CAPACITY = 65_536


class _NullSpan:
    """Shared no-op context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span; records itself into the tracer on exit."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self.span_id = tracer._next_id
        tracer._next_id += 1
        stack = tracer._stack
        self.parent_id = stack[-1] if stack else tracer.root_parent_id
        stack.append(self.span_id)
        self._start = tracer._clock()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        tracer = self._tracer
        end = tracer._clock()
        tracer._stack.pop()
        record = {
            "kind": "span",
            "name": self.name,
            "ts": self._start - tracer._epoch,
            "dur_s": end - self._start,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": len(tracer._stack),
        }
        if self.attrs:
            record["attrs"] = self.attrs
        tracer._record(record)


class Tracer:
    """Bounded ring buffer of spans and events with JSONL export."""

    def __init__(
        self,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
        trace_id: str | None = None,
        server_id: int | None = None,
        id_base: int = 0,
        root_parent_id: int | None = None,
    ):
        if capacity < 1:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self.enabled = enabled
        self._clock = clock
        self._epoch = clock()
        self._events: deque[dict[str, Any]] = deque()
        self._stack: list[int] = []
        self._next_id = id_base + 1
        if trace_id is None and enabled:
            # Every enabled tracer names its trace, so merged multi-
            # process JSONL streams always carry an explicit join key.
            trace_id = f"trace-{uuid.uuid4().hex[:16]}"
        #: Stamped on every locally produced record when set.
        self.trace_id = trace_id
        self.server_id = server_id
        #: Foreign (cross-process) span id adopting top-level entries.
        self.root_parent_id = root_parent_id
        self.n_emitted = 0
        self.n_dropped = 0

    # -- recording -----------------------------------------------------

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event (no-op when disabled)."""
        if not self.enabled:
            return
        record: dict[str, Any] = {
            "kind": "event",
            "name": name,
            "ts": self._clock() - self._epoch,
        }
        if self._stack:
            record["parent_id"] = self._stack[-1]
        elif self.root_parent_id is not None:
            record["parent_id"] = self.root_parent_id
        if attrs:
            record["attrs"] = attrs
        self._record(record)

    def span(self, name: str, **attrs: Any) -> Any:
        """Context manager timing a nested span (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    def _record(self, record: dict[str, Any]) -> None:
        if self.trace_id is not None and "trace_id" not in record:
            record["trace_id"] = self.trace_id
        if self.server_id is not None and "server_id" not in record:
            record["server_id"] = self.server_id
        if len(self._events) >= self.capacity:
            self._events.popleft()
            self.n_dropped += 1
        self._events.append(record)
        self.n_emitted += 1

    def absorb(self, records: Iterable[dict[str, Any]]) -> int:
        """Fold foreign (worker-process) records into this buffer.

        The records keep their own ``trace_id`` / ``server_id`` /
        ``span_id`` stamps -- worker tracers are constructed with a
        disjoint ``id_base``, so merged ids never collide -- and count
        against this tracer's capacity and emit/drop statistics.
        Returns the number of records absorbed.
        """
        n = 0
        for record in records:
            self._record(dict(record))
            n += 1
        return n

    # -- access / export -----------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def records(self) -> list[dict[str, Any]]:
        """The buffered entries, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        """Drop every buffered entry (drop/emit statistics persist)."""
        self._events.clear()

    def to_jsonl(self) -> str:
        """Render the buffer as JSON Lines (one entry per line)."""
        return "".join(
            json.dumps(record, default=str) + "\n" for record in self._events
        )

    def export_jsonl(self, path: str) -> int:
        """Write the buffer to ``path`` as JSONL; returns entry count.

        Paths ending in ``.gz`` are gzip-compressed transparently.
        """
        if path.endswith(".gz"):
            with gzip.open(path, "wt", encoding="utf-8") as handle:
                handle.write(self.to_jsonl())
        else:
            with open(path, "w") as handle:
                handle.write(self.to_jsonl())
        return len(self._events)


def read_jsonl(path: str) -> list[dict[str, Any]]:
    """Parse a trace file written by :meth:`Tracer.export_jsonl`.

    Transparently decompresses paths ending in ``.gz``.
    """
    records = []
    if path.endswith(".gz"):
        handle = gzip.open(path, "rt", encoding="utf-8")
    else:
        handle = open(path)
    with handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
