"""Windowed time-series telemetry on the logical tick clock.

Everything else in :mod:`repro.obs` is *cumulative*: the registry, the
plan audit and the SLO engine all read end-of-run totals.  The
:class:`TimelineCollector` adds the time axis -- it snapshots the
registry on the scheduler's deterministic logical tick clock and keeps a
bounded ring of *windows*, each holding the per-window **deltas** of
every counter and histogram plus the last value of every gauge, the
block-level cost-counter deltas (per server on the parallel backends,
shipped over the same picklable-delta path
:meth:`repro.faults.injector.FaultInjector.stats_delta` uses), and
derived rates (pages/tick, sharing factor, avoidance hit-rate, server
skew).

Windows are what the online :mod:`~repro.obs.anomaly` engine evaluates,
what ``repro top`` renders live, and what ``repro serve --timeline``
exports as sorted-key JSONL (gzip when the path ends in ``.gz``).

Determinism: the JSONL export is *byte-identical* across repeated runs
of the same seeded workload, and across the model and process parallel
backends.  Wall-clock series would break that -- worker-process phase
histograms never merge back into the coordinator registry, and measured
wall seconds differ run to run -- so :func:`deterministic_series`
excludes any series whose name contains ``wall`` or ends in
``.seconds``, the planner's calibration series (ratios of wall
seconds), and execution-layer series that are recorded worker-side on
the process backend (``events.*`` other than the coordinator-emitted
service/worker/anomaly taxonomies, ``index.*``, ``page*.*``,
``prefilter.*``).  Cross-backend-consistent series -- the scheduler's
``service.*`` family, the fault accounting mirrored by
:meth:`~repro.faults.injector.FaultInjector.absorb`, modelled seconds,
and every block-level cost delta -- all stay in.  Pass
``deterministic=False`` to export everything (the live dashboard always
sees everything).
"""

from __future__ import annotations

import gzip
import json
from collections import deque
from typing import TYPE_CHECKING, Any, Mapping

from repro.obs.metrics import MetricsRegistry, stable_floats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.anomaly import AnomalyEngine
    from repro.obs.observer import Observer

#: Ticks per window when none is given: small enough that a `serve`
#: demo produces several windows, large enough to amortise the snapshot.
DEFAULT_WINDOW_TICKS = 4

#: Closed windows kept in memory (oldest are dropped, never silently:
#: :attr:`TimelineCollector.n_dropped` counts them).
DEFAULT_WINDOW_CAPACITY = 256

#: ``events.*`` counters that the coordinator itself emits -- these are
#: backend-consistent and stay in the deterministic export.
_DETERMINISTIC_EVENT_PREFIXES = (
    "events.service.",
    "events.worker.",
    "events.anomaly.",
)

#: Series recorded by execution-layer instrumentation that runs inside
#: worker processes on the process backend (never merged back), or that
#: mirror wall-clock-derived planner state; excluded from the
#: deterministic export wholesale.
_EXCLUDED_PREFIXES = (
    "planner.",
    "index.",
    "pages.",
    "page.",
    "prefilter.",
    "timeline.",
)


def deterministic_series(name: str) -> bool:
    """Whether a metric series belongs in the deterministic export.

    See the module docstring for the rationale of each exclusion.
    """
    if "wall" in name or name.endswith(".seconds"):
        return False
    if name.startswith(_EXCLUDED_PREFIXES):
        return False
    if name.startswith("events."):
        return name.startswith(_DETERMINISTIC_EVENT_PREFIXES)
    return True


def _page_reads(cost: Mapping[str, float]) -> float:
    return float(
        cost.get("random_page_reads", 0) + cost.get("sequential_page_reads", 0)
    )


class TimelineCollector:
    """Bounded ring of per-window metric deltas on the logical clock.

    Parameters
    ----------
    metrics:
        The registry to snapshot (the attached observer's).
    window_ticks:
        Logical ticks per window.  The scheduler advances one tick per
        submit/poll; the block runners advance one tick per block.
    capacity:
        Closed windows kept (ring buffer; drops are counted).
    anomaly_engine:
        Optional :class:`~repro.obs.anomaly.AnomalyEngine` evaluated
        against every freshly closed window; its firings are queued for
        :meth:`drain_anomalies` (the scheduler feeds them to
        ``replan()``) and embedded in the window record.
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        window_ticks: int = DEFAULT_WINDOW_TICKS,
        capacity: int = DEFAULT_WINDOW_CAPACITY,
        anomaly_engine: "AnomalyEngine | None" = None,
    ):
        if window_ticks < 1:
            raise ValueError("window_ticks must be positive")
        if capacity < 1:
            raise ValueError("window capacity must be positive")
        self.metrics = metrics
        self.window_ticks = window_ticks
        self.capacity = capacity
        self.anomaly_engine = anomaly_engine
        #: Back-reference set by :meth:`Observer.attach_timeline`; lets
        #: anomaly firings surface as observer events.
        self.observer: "Observer | None" = None
        self.windows: deque[dict[str, Any]] = deque()
        self.n_closed = 0
        self.n_dropped = 0
        self.tick = 0
        self._window_start = 0
        self._base = self._numbers()
        self._block_cost: dict[str, float] = {}
        self._server_cost: dict[int, dict[str, float]] = {}
        self._pending_anomalies: list[dict[str, Any]] = []
        #: Recent firings for the dashboard feed (not drained by the
        #: scheduler; bounded independently of the window ring).
        self.anomaly_log: deque[dict[str, Any]] = deque(maxlen=64)

    # -- recording -----------------------------------------------------

    def record_block(
        self,
        cost_delta: Mapping[str, float],
        server_id: int | None = None,
    ) -> None:
        """Fold one block's cost-counter delta into the open window.

        ``cost_delta`` is a plain ``field -> int`` dict -- exactly the
        picklable form the process backend ships from its workers
        (``Counters.diff(snapshot).as_dict()``), so both parallel
        backends feed the same deterministic numbers.  With a
        ``server_id`` the delta is additionally kept per server, which
        is where the per-window skew rate comes from.
        """
        for name, value in cost_delta.items():
            if value:
                self._block_cost[name] = self._block_cost.get(name, 0) + value
        if server_id is not None:
            per_server = self._server_cost.setdefault(server_id, {})
            for name, value in cost_delta.items():
                if value:
                    per_server[name] = per_server.get(name, 0) + value

    def advance(self, tick: int | None = None) -> None:
        """Advance the logical clock; closes windows at boundaries.

        Called once per scheduler tick (with the scheduler's tick) or
        once per block by the block runners (without an argument, which
        increments an internal tick).  Closing a window snapshots the
        registry, computes the deltas and rates, evaluates the anomaly
        rules and appends the window to the ring.
        """
        self.tick = self.tick + 1 if tick is None else tick
        if self.tick - self._window_start >= self.window_ticks:
            self._close_window(self.tick)

    def flush(self) -> None:
        """Close the open partial window, if it saw any ticks."""
        if self.tick > self._window_start:
            self._close_window(self.tick)

    # -- anomaly hand-off ----------------------------------------------

    def drain_anomalies(self) -> list[dict[str, Any]]:
        """Take (and clear) the anomaly firings queued since last drain."""
        firings = self._pending_anomalies
        self._pending_anomalies = []
        return firings

    # -- window construction -------------------------------------------

    def _numbers(self) -> dict[str, Any]:
        """Flat numeric view of the registry for delta computation."""
        snapshot = self.metrics.snapshot()
        return {
            "counters": dict(snapshot["counters"]),
            "gauges": dict(snapshot["gauges"]),
            "collected": dict(snapshot["collected"]),
            "histograms": {
                name: (hist["count"], hist["sum"])
                for name, hist in snapshot["histograms"].items()
            },
        }

    def _close_window(self, end_tick: int) -> None:
        current = self._numbers()
        base = self._base
        counters = {
            name: value - base["counters"].get(name, 0)
            for name, value in current["counters"].items()
            if value - base["counters"].get(name, 0)
        }
        # Collected values mix cumulative counts (``cost.*``) with
        # ratios (``derived.*``, buffer rates): counts are windowed as
        # deltas, ratios keep their latest value.
        collected: dict[str, float] = {}
        for name, value in current["collected"].items():
            if name.startswith("cost."):
                delta = value - base["collected"].get(name, 0)
                if delta:
                    collected[name] = delta
            else:
                collected[name] = value
        observations = {}
        for name, (count, total) in current["histograms"].items():
            base_count, base_sum = base["histograms"].get(name, (0, 0.0))
            if count - base_count:
                observations[name] = {
                    "count": count - base_count,
                    "sum": total - base_sum,
                }
        window: dict[str, Any] = {
            "window": self.n_closed,
            "tick_start": self._window_start,
            "tick_end": end_tick,
            "ticks": end_tick - self._window_start,
            "counters": counters,
            "gauges": dict(current["gauges"]),
            "collected": collected,
            "observations": observations,
            "cost": {k: v for k, v in self._block_cost.items() if v},
            "rates": self._rates(end_tick - self._window_start),
        }
        if self._server_cost:
            window["servers"] = {
                str(server): {k: v for k, v in cost.items() if v}
                for server, cost in sorted(self._server_cost.items())
            }
        self._append(window)
        self._base = current
        self._block_cost = {}
        self._server_cost = {}
        self._window_start = end_tick
        self.n_closed += 1
        if self.anomaly_engine is not None:
            firings = self.anomaly_engine.evaluate(window, self.observer)
            if firings:
                window["anomalies"] = [
                    {k: firing[k] for k in ("rule", "kind", "series", "value")}
                    for firing in firings
                ]
                self._pending_anomalies.extend(firings)
                self.anomaly_log.extend(firings)

    def _append(self, window: dict[str, Any]) -> None:
        if len(self.windows) >= self.capacity:
            self.windows.popleft()
            self.n_dropped += 1
        self.windows.append(window)

    def _rates(self, ticks: int) -> dict[str, float]:
        """Derived per-window rates from the block-level cost deltas."""
        cost = self._block_cost
        ticks = max(1, ticks)
        pages = _page_reads(cost)
        queries = float(cost.get("queries_completed", 0))
        distances = float(cost.get("distance_calculations", 0))
        avoided = float(cost.get("avoided_calculations", 0))
        tries = float(cost.get("avoidance_tries", 0))
        hits = float(cost.get("buffer_hits", 0))
        rates = {
            "pages_per_tick": pages / ticks,
            "queries_per_tick": queries / ticks,
        }
        if pages:
            rates["sharing_factor"] = queries / pages
        if tries:
            rates["avoidance_hit_rate"] = avoided / tries
        if distances + avoided:
            # Fraction of candidate distance computations the Lemma 1/2
            # bounds pruned out of the window's workload.
            rates["prune_effectiveness"] = avoided / (distances + avoided)
        if hits + pages:
            rates["buffer_hit_rate"] = hits / (hits + pages)
        if self._server_cost:
            per_server = [
                _page_reads(cost) for cost in self._server_cost.values()
            ]
            mean = sum(per_server) / len(per_server)
            if mean > 0:
                rates["server_skew"] = max(per_server) / mean
        return rates

    # -- export --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.windows)

    def filtered_window(self, window: Mapping[str, Any]) -> dict[str, Any]:
        """One window with only deterministic series (export form)."""
        out: dict[str, Any] = {}
        for key, value in window.items():
            if key in ("counters", "gauges", "collected", "observations"):
                out[key] = {
                    name: item
                    for name, item in value.items()
                    if deterministic_series(name)
                }
            else:
                out[key] = value
        return out

    def to_jsonl(self, deterministic: bool = True) -> str:
        """Render the closed windows as sorted-key JSON Lines."""
        lines = []
        for window in self.windows:
            record = self.filtered_window(window) if deterministic else window
            lines.append(
                json.dumps(stable_floats(record), sort_keys=True) + "\n"
            )
        return "".join(lines)

    def export_jsonl(self, path: str, deterministic: bool = True) -> int:
        """Write the closed windows as JSONL; returns the window count.

        Paths ending in ``.gz`` are gzip-compressed (``mtime=0`` so the
        compressed bytes are as deterministic as the payload).
        """
        text = self.to_jsonl(deterministic)
        if path.endswith(".gz"):
            with open(path, "wb") as raw:
                with gzip.GzipFile(
                    fileobj=raw, mode="wb", filename="", mtime=0
                ) as handle:
                    handle.write(text.encode("utf-8"))
        else:
            with open(path, "w") as handle:
                handle.write(text)
        return len(self.windows)


def read_timeline(path: str) -> list[dict[str, Any]]:
    """Parse a timeline JSONL file (gzip transparently)."""
    from repro.obs.tracing import read_jsonl

    return read_jsonl(path)


def render_timeline(
    windows: list[dict[str, Any]], width: int = 48
) -> str:
    """Aligned table + sparklines of a timeline (``repro report``)."""
    from repro.obs.dashboard import sparkline

    if not windows:
        return "timeline\n--------\n  (no windows)"
    lines = ["timeline", "-" * len("timeline")]
    lines.append(
        f"  {'win':>4} {'ticks':>6} {'pages':>8} {'queries':>8} "
        f"{'sharing':>8} {'avoid':>6} {'skew':>6} {'anomalies':>10}"
    )
    for window in windows:
        rates = window.get("rates", {})
        cost = window.get("cost", {})
        pages = _page_reads(cost)
        sharing = rates.get("sharing_factor")
        avoid = rates.get("avoidance_hit_rate")
        skew = rates.get("server_skew")
        anomalies = window.get("anomalies", [])
        lines.append(
            f"  {window.get('window', 0):>4} {window.get('ticks', 0):>6} "
            f"{pages:>8.0f} {cost.get('queries_completed', 0):>8} "
            f"{sharing if sharing is not None else float('nan'):>8.2f} "
            f"{avoid if avoid is not None else float('nan'):>6.2f} "
            f"{skew if skew is not None else float('nan'):>6.2f} "
            f"{', '.join(a['rule'] for a in anomalies) if anomalies else '-':>10}"
        )
    for label, key in (
        ("pages/tick", "pages_per_tick"),
        ("queries/tick", "queries_per_tick"),
        ("sharing", "sharing_factor"),
    ):
        series = [float(w.get("rates", {}).get(key, 0.0)) for w in windows]
        lines.append(f"  {label:<14}{sparkline(series, width)}")
    fired = sum(len(w.get("anomalies", [])) for w in windows)
    lines.append(f"  {len(windows)} windows, {fired} anomaly firings")
    return "\n".join(lines)
