"""Plan-vs-actual cost audit: how wrong was the planner, per block.

:class:`QueryPlanner` (Sec. 4 cost model) predicts per-query seconds,
page reads and distance calculations as ``shared/m + marginal`` curves
fitted from two probe points.  :class:`PlanAudit` closes the loop:
around every executed block it reads the database's
:class:`~repro.costmodel.Counters` delta, derives the *observed*
per-query components, and emits the observed/predicted ratio of each
into the ``planner.prediction_error.{io,distances,seconds}`` histograms
(ratio 1.0 = perfectly calibrated; the bucket grid spans 0.01-100x).

Observed seconds are *modelled* seconds of the observed counters
(:meth:`~repro.costmodel.CostModel.total_seconds` of the delta), not
wall-clock -- the same currency the probe fitted -- so the audit is
deterministic and measures planner calibration, not machine noise.

A running exponentially-weighted seconds-ratio feeds the
``planner.calibration_drift`` gauge, and :meth:`PlanAudit.calibrated`
refits the cost curve from the accumulated ``(m, observed)`` samples --
a least-squares solve of the same two-parameter model, which moves the
knee point when the workload drifts away from the probe (a uniform
rescale would not).  :meth:`~repro.service.scheduler.QueryScheduler.replan`
consumes it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.costmodel import Counters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.planner import CostFit

#: Observed/predicted ratio histograms, one per cost component.
PREDICTION_ERROR_IO = "planner.prediction_error.io"
PREDICTION_ERROR_DISTANCES = "planner.prediction_error.distances"
PREDICTION_ERROR_SECONDS = "planner.prediction_error.seconds"
#: EWMA of the seconds ratio: 1.0 = calibrated, >1 = plan too cheap.
CALIBRATION_DRIFT_GAUGE = "planner.calibration_drift"

#: Ratio bucket grid: quarter-decade steps over 0.01x .. 100x.
RATIO_BOUNDS: tuple[float, ...] = tuple(10 ** (k / 4 - 2) for k in range(17))

#: EWMA smoothing of the calibration drift (weight of the newest block).
DEFAULT_DRIFT_ALPHA = 0.3


class PlanAudit:
    """Per-block plan-vs-actual comparison against one :class:`CostFit`.

    Usage (the scheduler drives this around every flushed block)::

        audit.begin_block(database.counters)
        ...  # run the block
        audit.end_block(database.counters, block_size)

    Parameters
    ----------
    fit:
        The planner's fitted cost curve for the access method in use.
    cost_model:
        The database's cost model, used to price observed counters in
        the same modelled seconds the fit predicts.
    observer:
        Destination of the histograms, gauge and ``planner.audit``
        events; without one the audit still accumulates samples (for
        :meth:`calibrated`) but emits nothing.
    """

    def __init__(
        self,
        fit: "CostFit",
        cost_model: Any,
        observer: Any = None,
        alpha: float = DEFAULT_DRIFT_ALPHA,
    ):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.fit = fit
        self.cost_model = cost_model
        self.observer = observer
        self.alpha = alpha
        self.blocks_audited = 0
        #: EWMA observed/predicted ratios per component (None until fed).
        self.drift_seconds: float | None = None
        self.drift_io: float | None = None
        self.drift_distances: float | None = None
        #: ``(block_size, observed_seconds_per_query)`` refit samples.
        self.samples: list[tuple[int, float]] = []
        self._snapshot: Counters | None = None

    # -- the per-block loop --------------------------------------------

    def begin_block(self, counters: Counters) -> None:
        """Snapshot the cost counters at block entry."""
        self._snapshot = counters.copy()

    def end_block(self, counters: Counters, block_size: int) -> None:
        """Compare the block's counter delta against the plan."""
        if self._snapshot is None or block_size < 1:
            return
        delta = counters.diff(self._snapshot)
        self._snapshot = None
        m = block_size
        observed_seconds = self.cost_model.total_seconds(delta) / m
        observed_pages = delta.page_reads / m
        observed_distances = delta.total_distance_calculations / m
        self.blocks_audited += 1
        self.samples.append((m, observed_seconds))
        ratio_seconds = _ratio(observed_seconds, self.fit.per_query(m))
        ratio_pages = _ratio(observed_pages, self.fit.pages_per_query(m))
        ratio_distances = _ratio(
            observed_distances, self.fit.distances_per_query(m)
        )
        self.drift_seconds = self._ewma(self.drift_seconds, ratio_seconds)
        self.drift_io = self._ewma(self.drift_io, ratio_pages)
        self.drift_distances = self._ewma(self.drift_distances, ratio_distances)
        observer = self.observer
        if observer is None:
            return
        metrics = observer.metrics
        if ratio_seconds is not None:
            metrics.histogram(PREDICTION_ERROR_SECONDS, RATIO_BOUNDS).observe(
                ratio_seconds
            )
        if ratio_pages is not None:
            metrics.histogram(PREDICTION_ERROR_IO, RATIO_BOUNDS).observe(
                ratio_pages
            )
        if ratio_distances is not None:
            metrics.histogram(PREDICTION_ERROR_DISTANCES, RATIO_BOUNDS).observe(
                ratio_distances
            )
        if self.drift_seconds is not None:
            metrics.set_gauge(CALIBRATION_DRIFT_GAUGE, self.drift_seconds)
        observer.event(
            "planner.audit",
            block_size=m,
            observed_seconds_per_query=observed_seconds,
            predicted_seconds_per_query=self.fit.per_query(m),
            ratio_seconds=ratio_seconds,
            ratio_io=ratio_pages,
            ratio_distances=ratio_distances,
        )

    def _ewma(self, current: float | None, value: float | None) -> float | None:
        if value is None:
            return current
        if current is None:
            return value
        return (1.0 - self.alpha) * current + self.alpha * value

    # -- feedback into the planner -------------------------------------

    def calibrated(self, fit: "CostFit | None" = None) -> "CostFit":
        """A :class:`CostFit` recalibrated from the observed blocks.

        With samples at two or more distinct block sizes, least-squares
        refits ``shared/m + marginal`` through every observed
        ``(m, seconds-per-query)`` point -- the refit can *move the knee
        point*, which a uniform rescale of the probe fit cannot (both
        terms scaled alike leave every cost ratio unchanged).  With
        fewer, the probe fit is scaled by the seconds-drift EWMA (the
        best single-factor correction available).  The counted
        component curves are scaled by their own drift EWMAs in either
        case.  Returns the (possibly unchanged) fit.
        """
        from repro.core.planner import CostFit

        base = fit if fit is not None else self.fit
        io_scale = self.drift_io if self.drift_io is not None else 1.0
        dist_scale = (
            self.drift_distances if self.drift_distances is not None else 1.0
        )
        components = {
            "shared_io_pages": base.shared_io_pages * io_scale,
            "marginal_io_pages": base.marginal_io_pages * io_scale,
            "shared_distances": base.shared_distances * dist_scale,
            "marginal_distances": base.marginal_distances * dist_scale,
        }
        refit = _least_squares_refit(self.samples)
        if refit is not None:
            shared, marginal = refit
            return CostFit(
                access=base.access,
                shared_seconds=shared,
                marginal_seconds=marginal,
                **components,
            )
        scale = self.drift_seconds if self.drift_seconds is not None else 1.0
        return CostFit(
            access=base.access,
            shared_seconds=base.shared_seconds * scale,
            marginal_seconds=base.marginal_seconds * scale,
            **components,
        )

    def summary(self) -> dict[str, Any]:
        """JSON-ready audit state (folded into benchmark sidecars)."""
        refit = _least_squares_refit(self.samples)
        return {
            "blocks_audited": self.blocks_audited,
            "calibration_drift": self.drift_seconds,
            "drift_io": self.drift_io,
            "drift_distances": self.drift_distances,
            "refit": (
                {"shared_seconds": refit[0], "marginal_seconds": refit[1]}
                if refit is not None
                else None
            ),
            "fit": {
                "access": self.fit.access,
                "shared_seconds": self.fit.shared_seconds,
                "marginal_seconds": self.fit.marginal_seconds,
            },
        }


def _ratio(observed: float, predicted: float) -> float | None:
    """Observed/predicted, or ``None`` when the plan predicted ~zero."""
    if predicted <= 1e-12:
        return None
    return observed / predicted


def _least_squares_refit(
    samples: list[tuple[int, float]],
) -> tuple[float, float] | None:
    """Least-squares ``(shared, marginal)`` through observed samples.

    Solves ``y = shared * (1/m) + marginal`` over all ``(m, y)`` pairs;
    needs at least two distinct block sizes (the design matrix is
    singular otherwise).  Both coefficients are clamped non-negative,
    preserving the monotone-amortisation shape downstream consumers
    (knee search) rely on.
    """
    if len({m for m, _ in samples}) < 2:
        return None
    n = len(samples)
    sum_x = sum(1.0 / m for m, _ in samples)
    sum_xx = sum((1.0 / m) ** 2 for m, _ in samples)
    sum_y = sum(y for _, y in samples)
    sum_xy = sum(y / m for m, y in samples)
    det = n * sum_xx - sum_x * sum_x
    if det <= 1e-18:
        return None
    shared = (n * sum_xy - sum_x * sum_y) / det
    marginal = (sum_y - shared * sum_x) / n
    return max(0.0, shared), max(0.0, marginal)
