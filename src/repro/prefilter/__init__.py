"""Sketch-based page pre-filter tier (exact by default, approximate opt-in).

The second tier of the read path: per-page pivot sketches prune
candidate pages in sketch space before the page engines run.  See
:mod:`repro.prefilter.sketch` for the bound, :mod:`repro.prefilter.replay`
for the counter-exact replay of pruned pages, and
:mod:`repro.prefilter.filter` for the drive-level integration.
"""

from repro.prefilter.filter import (
    MEASURED_RECALL_METRIC,
    PAGES_PRUNED_METRIC,
    PRUNE_EFFECTIVENESS_METRIC,
    DriveFilter,
    PagePrefilter,
    PrefilterConfig,
    PrefilterStats,
    measure_recall,
)
from repro.prefilter.replay import replay_pruned_page
from repro.prefilter.sketch import (
    KIND_PIVOT,
    KIND_QUANTIZED,
    PivotSketch,
    build_sketch,
    lower_bound_matrix,
    query_pivot_distances,
    select_pivots,
)

__all__ = [
    "DriveFilter",
    "KIND_PIVOT",
    "KIND_QUANTIZED",
    "MEASURED_RECALL_METRIC",
    "PAGES_PRUNED_METRIC",
    "PRUNE_EFFECTIVENESS_METRIC",
    "PagePrefilter",
    "PivotSketch",
    "PrefilterConfig",
    "PrefilterStats",
    "build_sketch",
    "lower_bound_matrix",
    "measure_recall",
    "query_pivot_distances",
    "replay_pruned_page",
    "select_pivots",
]
