"""Counter-exact replay of a page evaluation that cannot produce answers.

When the sketch bound proves that *every* query of a batch has
``sketch_lb > answers.radius`` for a page, no object of the page can be
accepted by any answer list: acceptance tests distances against
``answers.radius`` (strictly when saturated, at the limit otherwise),
and ``sketch_lb`` lower-bounds every object distance.  No radius can
therefore change while the page is evaluated, which makes the engines'
behaviour on the page fully deterministic from the state at page entry
-- and that is what :func:`replay_pruned_page` reproduces: every counter
charge of :func:`~repro.core.engine.process_page_vectorized` (identical,
by the engine-equivalence invariant, to the reference and batched
engines) without running the distance kernels whose results are known to
be discarded.

This is the avoidance-engine discipline of the batched engine inverted:
where ``process_page_batched`` computes *more* than the modelled
algorithm and refunds the difference, the replay computes *less* and
charges the difference.  Either way the counters -- the paper's cost
model -- are those of the unfiltered Fig. 4 run, byte for byte.

What still must run:

* the avoidance tests of every non-first query (they charge
  ``avoidance_tries``/``avoided_calculations`` deterministically from
  the known-row *values*), and
* the known-row values a later query's avoidance test will consult --
  computed through the uncounted kernels, since the replay charges
  ``distance_calculations`` explicitly.

What never runs: answer offers (rejected offers charge nothing and
mutate nothing), the distance kernel of the last query of the batch,
and every row beyond the avoidance pivot window.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.core.avoidance import DEFAULT_MAX_PIVOTS, avoid_vectorized
from repro.core.engine import PendingQuery, _fetch_pairs
from repro.costmodel import Counters
from repro.data import Dataset
from repro.metric.space import MetricSpace
from repro.storage.page import Page


def _uncharged_distances(
    space: MetricSpace, objects: Any, compute: np.ndarray, query_obj: Any
) -> np.ndarray:
    """Distances at the ``compute`` positions, bypassing the counters."""
    distance = space.distance
    if isinstance(objects, np.ndarray) and distance.is_vector_metric:
        return np.asarray(distance.many(objects[compute], query_obj), dtype=float)
    positions = np.nonzero(compute)[0]
    return np.array(
        [distance.one(objects[int(i)], query_obj) for i in positions], dtype=float
    )


def replay_pruned_page(
    page: Page,
    batch: list[PendingQuery],
    dataset: Dataset,
    space: MetricSpace,
    matrix: Any,
    counters: Counters,
    use_avoidance: bool = True,
    max_pivots: int = DEFAULT_MAX_PIVOTS,
    use_lemma1: bool = True,
    use_lemma2: bool = True,
) -> None:
    """Charge exactly what an engine would charge for a no-answer page.

    Drop-in replacement for the ``process_page_*`` engines under the
    precondition that no query of ``batch`` can accept any object of
    ``page``.  Marks the page processed for every query, exactly like
    the engines do.
    """
    indices = page.indices
    n_objects = indices.size
    if n_objects == 0:
        for query in batch:
            query.processed_pages.add(page.page_id)
        return
    if not use_avoidance:
        # Every engine computes every (object, query) distance; none of
        # the results can be accepted, so only the charge remains.
        counters.distance_calculations += n_objects * len(batch)
        for query in batch:
            query.processed_pages.add(page.page_id)
        return

    objects: Any = None
    known_rows = np.empty((len(batch), n_objects), dtype=float)
    known_slots: list[int] = []

    for position, query in enumerate(batch):
        radius = query.radius
        n_known = len(known_slots)
        if n_known and not math.isinf(radius):
            n_pivots = min(n_known, max_pivots) if max_pivots > 0 else n_known
            pivot_slots = known_slots[:n_pivots]
            query_to_known = _fetch_pairs(matrix, query.slot, pivot_slots)
            avoided = avoid_vectorized(
                known_rows[:n_pivots],
                query_to_known,
                radius,
                counters,
                max_pivots=0,
                use_lemma1=use_lemma1,
                use_lemma2=use_lemma2,
            )
            compute = ~avoided
        else:
            compute = np.ones(n_objects, dtype=bool)
        counters.distance_calculations += int(np.count_nonzero(compute))
        # A row is consulted only by *later* queries, and only while it
        # sits inside the pivot window.
        row_consulted = position + 1 < len(batch) and (
            max_pivots <= 0 or position < max_pivots
        )
        if row_consulted:
            row = np.full(n_objects, np.nan)
            if compute.any():
                if objects is None:
                    objects = dataset.batch(indices)
                row[compute] = _uncharged_distances(
                    space, objects, compute, query.obj
                )
            known_rows[position] = row
        else:
            known_rows[position] = np.nan
        known_slots.append(query.slot)
        query.processed_pages.add(page.page_id)
