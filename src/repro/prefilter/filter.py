"""The page pre-filter: sketch-space pruning ahead of the engines.

:class:`PagePrefilter` owns one :class:`~repro.prefilter.sketch.PivotSketch`
over an access method's data pages and hands each drive of a
:class:`~repro.core.multi_query.MultiQueryProcessor` a
:class:`DriveFilter`: one vectorized pass computes the sketch-space
lower-bound matrix for the whole query batch against every page, and the
per-page decisions afterwards are single row reads.

Two modes:

* **exact** (the default): a page is pruned only when the sketch bound
  proves it empty for *every* query of its batch
  (``lb > answers.radius``, strictly); the pruned page is then replayed
  by :func:`~repro.prefilter.replay.replay_pruned_page`, so answers and
  cost counters stay byte-identical to the unfiltered run while the
  engine kernels never execute.
* **approximate** (opt-in via ``recall_target < 1.0``): pages whose
  driver bound exceeds ``recall_target * radius`` are skipped *before
  they are read* -- bounded-recall throughput mode.  Counters then
  legitimately differ; measured recall is reported via
  :func:`measure_recall`.

Sketch-bound arithmetic is uncounted planning work (the scheduler's
affinity ordering precedent); the modelled cost of the pass is exposed
through :class:`PrefilterStats` so the planner can fold it into its
cost fits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.core.answers import Answer
from repro.core.engine import PendingQuery
from repro.data import Dataset
from repro.index.base import AccessMethod
from repro.metric.space import MetricSpace
from repro.prefilter.sketch import (
    DEFAULT_BITS,
    DEFAULT_N_PIVOTS,
    KIND_PIVOT,
    KIND_QUANTIZED,
    PivotSketch,
    build_sketch,
    lower_bound_matrix,
    query_pivot_distances,
)
from repro.storage.page import Page

#: Metric names of the pre-filter tier (see docs/observability.md).
PAGES_PRUNED_METRIC = "prefilter.pages_pruned"
PRUNE_EFFECTIVENESS_METRIC = "prefilter.prune_effectiveness"
MEASURED_RECALL_METRIC = "prefilter.measured_recall"


@dataclass(frozen=True)
class PrefilterConfig:
    """Construction-time options of the pre-filter tier.

    ``recall_target`` is the exactness opt-out: at the default ``1.0``
    the filter only drops provably empty pages (answers and counters
    byte-identical to the unfiltered run); below ``1.0`` pages are
    skipped before they are read whenever the driver's sketch bound
    exceeds ``recall_target`` times its current radius -- the smaller
    the target, the more aggressive the skip.
    """

    n_pivots: int = DEFAULT_N_PIVOTS
    seed: int = 0
    #: ``"pivot"``, ``"quantized"`` or ``None`` (ask the access method).
    kind: str | None = None
    #: Grid resolution of the quantized kind; ``None`` asks the access
    #: method (the VA-file reuses its own ``bits_per_dim``).
    bits: int | None = None
    recall_target: float = 1.0

    def __post_init__(self) -> None:
        if self.n_pivots < 1:
            raise ValueError("n_pivots must be positive")
        if not 0.0 < self.recall_target <= 1.0:
            raise ValueError("recall_target must be in (0, 1]")
        if self.kind is not None and self.kind not in (KIND_PIVOT, KIND_QUANTIZED):
            raise ValueError(f"unknown sketch kind {self.kind!r}")

    @property
    def approximate(self) -> bool:
        """Whether the bounded-recall fast mode is active."""
        return self.recall_target < 1.0


@dataclass
class PrefilterStats:
    """Cumulative pre-filter accounting (shared across a database).

    ``bound_evaluations`` and ``pivot_distance_evaluations`` size the
    sketch pass for the planner's cost fit; the page counts feed the
    observability gauges and the benchmark's candidate-reduction claim.
    """

    drives: int = 0
    pages_delivered: int = 0
    pages_pruned: int = 0
    pages_skipped: int = 0
    candidate_evaluations_avoided: int = 0
    bound_evaluations: int = 0
    pivot_distance_evaluations: int = 0

    @property
    def pages_dropped(self) -> int:
        """Pages the engines never evaluated (replayed or skipped)."""
        return self.pages_pruned + self.pages_skipped

    @property
    def prune_effectiveness(self) -> float:
        """Fraction of delivered pages dropped before the engines."""
        if not self.pages_delivered:
            return 0.0
        return self.pages_dropped / self.pages_delivered

    def snapshot(self) -> dict[str, float]:
        """Flat dict form for summaries, sessions and benchmarks."""
        return {
            "drives": self.drives,
            "pages_delivered": self.pages_delivered,
            "pages_pruned": self.pages_pruned,
            "pages_skipped": self.pages_skipped,
            "candidate_evaluations_avoided": self.candidate_evaluations_avoided,
            "bound_evaluations": self.bound_evaluations,
            "pivot_distance_evaluations": self.pivot_distance_evaluations,
            "prune_effectiveness": self.prune_effectiveness,
        }


class PagePrefilter:
    """Sketch-based page pre-filter bound to one database's pages."""

    def __init__(
        self,
        sketch: PivotSketch,
        space: MetricSpace,
        config: PrefilterConfig | None = None,
    ):
        self.sketch = sketch
        self.space = space
        self.config = config if config is not None else PrefilterConfig()
        self.stats = PrefilterStats()

    @classmethod
    def build(
        cls,
        dataset: Dataset,
        space: MetricSpace,
        access: AccessMethod,
        config: PrefilterConfig | None = None,
    ) -> "PagePrefilter":
        """Build the sketch over an access method's current data pages.

        The access method's :meth:`~repro.index.base.AccessMethod.prefilter_profile`
        chooses the sketch kind, grid resolution and pivot hints unless
        the config overrides them.
        """
        config = config if config is not None else PrefilterConfig()
        profile = access.prefilter_profile()
        kind = config.kind or profile.get("kind", KIND_PIVOT)
        bits = config.bits or profile.get("bits") or DEFAULT_BITS
        sketch = build_sketch(
            dataset,
            space,
            access.data_pages(),
            n_pivots=config.n_pivots,
            seed=config.seed,
            kind=kind,
            bits=bits,
            pivot_hints=profile.get("pivot_hints"),
        )
        return cls(sketch, space, config)

    @property
    def approximate(self) -> bool:
        return self.config.approximate

    def describe(self) -> str:
        """One-line form for ``Database.summary`` / ``repro info``."""
        mode = (
            f"approx(recall_target={self.config.recall_target})"
            if self.approximate
            else "exact"
        )
        return f"{self.sketch.describe()} {mode}"

    def query_distances(self, pending: PendingQuery) -> np.ndarray:
        """Query-to-pivot distances, cached on the pending query."""
        qd = pending.sketch_qd
        if qd is None or qd.size != self.sketch.n_pivots:
            qd = query_pivot_distances(self.sketch, self.space, pending.obj)
            pending.sketch_qd = qd
            self.stats.pivot_distance_evaluations += qd.size
        return qd

    def open_drive(
        self, queries: Sequence[PendingQuery], observer: Any = None
    ) -> "DriveFilter":
        """One drive's filter: the vectorized bound pass over all pages."""
        return DriveFilter(self, queries, observer)


class DriveFilter:
    """Per-drive sketch bounds for one query batch against every page."""

    def __init__(
        self,
        prefilter: PagePrefilter,
        queries: Sequence[PendingQuery],
        observer: Any = None,
    ):
        self.prefilter = prefilter
        self.observer = observer
        stats = prefilter.stats
        stats.drives += 1
        qd = np.stack([prefilter.query_distances(q) for q in queries])
        # The one vectorized pass: every (query, page) sketch bound of
        # the drive, computed up front.
        self.bounds = lower_bound_matrix(prefilter.sketch, qd)
        stats.bound_evaluations += int(self.bounds.size)
        self._row_of_query = {id(q): row for row, q in enumerate(queries)}
        self._pages_delivered = 0
        self._pages_pruned = 0
        self._pages_skipped = 0

    def _bound(self, query: PendingQuery, page: Page) -> float | None:
        page_row = self.prefilter.sketch.row_of(page.page_id)
        query_row = self._row_of_query.get(id(query))
        if page_row is None or query_row is None:
            return None  # unsketched page or late query: never prune
        return float(self.bounds[query_row, page_row])

    def skip_before_read(self, driver: PendingQuery, page: Page) -> bool:
        """Approximate mode: drop the page before any I/O happens.

        Only active below ``recall_target == 1.0``; the driver may lose
        answers whose distance lies between ``recall_target * radius``
        and ``radius``, which is exactly the recall the benchmark
        measures.  Other batch queries are unaffected -- the page stays
        unprocessed for them and their own drives decide it again.
        """
        config = self.prefilter.config
        if not config.approximate:
            return False
        bound = self._bound(driver, page)
        if bound is None:
            return False
        radius = driver.radius
        if not np.isfinite(radius):
            return False
        skip = bound > config.recall_target * radius
        if skip:
            self._pages_skipped += 1
            stats = self.prefilter.stats
            stats.pages_delivered += 1
            stats.pages_skipped += 1
            if self.observer is not None:
                self.observer.metrics.inc(PAGES_PRUNED_METRIC)
                self.observer.event(
                    "prefilter.skip", page_id=page.page_id, bound=bound
                )
        return skip

    def provably_empty(self, batch: Sequence[PendingQuery], page: Page) -> bool:
        """Exact mode: no query of ``batch`` can accept any page object.

        True only when every query's sketch bound strictly exceeds its
        ``answers.radius`` -- the value the answer lists accept against
        -- so no offer could succeed and no radius can move while the
        page is evaluated.  Charged-I/O, batch formation and the
        query-distance matrix have already done their (identical) work
        by the time this runs; the caller replays the page instead of
        evaluating it.
        """
        stats = self.prefilter.stats
        stats.pages_delivered += 1
        self._pages_delivered += 1
        page_row = self.prefilter.sketch.row_of(page.page_id)
        if page_row is None:
            return False
        column = self.bounds[:, page_row]
        for query in batch:
            query_row = self._row_of_query.get(id(query))
            if query_row is None:
                return False
            radius = query.answers.radius
            if not column[query_row] > radius:
                return False
        self._pages_pruned += 1
        stats.pages_pruned += 1
        stats.candidate_evaluations_avoided += int(page.indices.size) * len(batch)
        if self.observer is not None:
            self.observer.metrics.inc(PAGES_PRUNED_METRIC)
            self.observer.event(
                "prefilter.prune", page_id=page.page_id, batch=len(batch)
            )
        return True

    def finish(self) -> None:
        """Drive completed: publish the drive-level span and gauge."""
        if self.observer is None:
            return
        stats = self.prefilter.stats
        self.observer.metrics.set_gauge(
            PRUNE_EFFECTIVENESS_METRIC, stats.prune_effectiveness
        )
        self.observer.event(
            "prefilter.pass",
            delivered=self._pages_delivered,
            pruned=self._pages_pruned,
            skipped=self._pages_skipped,
        )


def measure_recall(
    exact: Sequence[Sequence[Answer]], approximate: Sequence[Sequence[Answer]]
) -> float:
    """Macro-averaged answer recall of an approximate run.

    Both arguments are per-query answer lists (the return shape of
    ``query_all``/``run``); recall of one query is the fraction of the
    exact answer's object indices the approximate answer retained, and
    queries with empty exact answers count as fully recalled.
    """
    if len(exact) != len(approximate):
        raise ValueError("need matching per-query answer lists")
    if not exact:
        return 1.0
    recalls = []
    for exact_answers, approx_answers in zip(exact, approximate):
        reference = {answer.index for answer in exact_answers}
        if not reference:
            recalls.append(1.0)
            continue
        kept = {answer.index for answer in approx_answers}
        recalls.append(len(reference & kept) / len(reference))
    return float(np.mean(recalls))
