"""Per-page pivot sketches: compact distance summaries for page pruning.

A :class:`PivotSketch` summarises every data page of an access method by
an interval ``[lo_j, hi_j]`` of distances to each of a small, seeded set
of *pivot* objects drawn from the database itself.  For any object ``O``
on a page and any query ``Q`` the triangle inequality gives

    d(Q, O) >= |d(Q, P_j) - d(O, P_j)|
            >= max(d(Q, P_j) - hi_j, lo_j - d(Q, P_j), 0)

for every pivot ``P_j``, so the maximum of the right-hand side over all
pivots is a *sound lower bound* on the distance between ``Q`` and any
object of the page -- the same Lemma 1/2 structure the avoidance engine
uses per object (Sec. 5.2), hoisted to page granularity and evaluated in
one vectorized pass over all pages.

Two variants:

* ``pivot`` -- the raw float intervals;
* ``quantized`` -- the intervals rounded outward onto a per-pivot
  uniform grid of ``2**bits`` cells (lower bounds floored, upper bounds
  ceiled), extending the VA-file discipline of conservative bit-limited
  approximations to metric pivot distances.  Quantisation only ever
  *widens* intervals, so the bound stays sound.

Sketch construction and query-to-pivot distances are *planning work*:
they run through the uncounted distance kernels (the same convention the
scheduler's affinity ordering uses) and never touch the cost counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.data import Dataset
from repro.metric.space import MetricSpace
from repro.storage.page import Page

KIND_PIVOT = "pivot"
KIND_QUANTIZED = "quantized"

#: Default number of pivots; 8 distance comparisons per page bound keep
#: the sketch pass far below one avoided page evaluation.
DEFAULT_N_PIVOTS = 8

#: Default grid resolution of the quantized variant.
DEFAULT_BITS = 8


@dataclass
class PivotSketch:
    """Per-page pivot-distance intervals plus the pivot set itself.

    ``page_lo``/``page_hi`` have shape ``(n_pages, n_pivots)`` and are
    already conservative (dequantised) for the quantized kind; the raw
    codes and grid are kept for persistence and inspection.
    """

    kind: str
    pivot_indices: np.ndarray
    pivot_objects: list[Any]
    page_ids: np.ndarray
    page_lo: np.ndarray
    page_hi: np.ndarray
    bits: int = 0
    grid_lo: np.ndarray | None = None
    grid_step: np.ndarray | None = None
    codes_lo: np.ndarray | None = None
    codes_hi: np.ndarray | None = None
    _row_of: dict[int, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in (KIND_PIVOT, KIND_QUANTIZED):
            raise ValueError(f"unknown sketch kind {self.kind!r}")
        if self.page_lo.shape != self.page_hi.shape:
            raise ValueError("page_lo and page_hi must have the same shape")
        if self.page_lo.shape != (self.page_ids.size, self.pivot_indices.size):
            raise ValueError("sketch arrays do not match pages x pivots")
        self._row_of = {
            int(page_id): row for row, page_id in enumerate(self.page_ids)
        }

    @property
    def n_pivots(self) -> int:
        return int(self.pivot_indices.size)

    @property
    def n_pages(self) -> int:
        return int(self.page_ids.size)

    def row_of(self, page_id: int) -> int | None:
        """Sketch row of a page id, or ``None`` for unsketched pages.

        Pages created after the sketch was built (index inserts) have no
        row; callers must treat them as never prunable.
        """
        return self._row_of.get(page_id)

    def describe(self) -> str:
        """Compact human-readable form for summaries and CLI rows."""
        if self.kind == KIND_QUANTIZED:
            return f"quantized(pivots={self.n_pivots}, bits={self.bits})"
        return f"pivot(pivots={self.n_pivots})"


def _distances_to_all(dataset: Dataset, space: MetricSpace, obj: Any) -> np.ndarray:
    """Uncounted distances from every dataset object to ``obj``."""
    distance = space.distance
    if dataset.is_vector and distance.is_vector_metric:
        return np.asarray(distance.many(dataset.vectors, obj), dtype=float)
    return np.array(
        [distance.one(dataset[i], obj) for i in range(len(dataset))], dtype=float
    )


def select_pivots(
    dataset: Dataset,
    space: MetricSpace,
    n_pivots: int,
    seed: int = 0,
    hints: Sequence[int] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Seeded greedy max-min ("farthest point") pivot selection.

    Returns ``(pivot_indices, obj_dists)`` where ``obj_dists`` has shape
    ``(n, n_pivots)``: the distance of every dataset object to every
    pivot, computed through the uncounted kernels.  ``hints`` (e.g. the
    M-tree's root routing objects) are taken first, deduplicated, then
    the remaining pivots maximise the minimum distance to the pivots
    chosen so far -- the standard spread heuristic for metric pivots.
    """
    n = len(dataset)
    if n == 0:
        raise ValueError("cannot select pivots from an empty dataset")
    n_pivots = min(n_pivots, n)
    chosen: list[int] = []
    if hints is not None:
        for hint in hints:
            index = int(hint)
            if 0 <= index < n and index not in chosen:
                chosen.append(index)
            if len(chosen) >= n_pivots:
                break
    if not chosen:
        rng = np.random.default_rng(seed)
        chosen.append(int(rng.integers(n)))
    columns = [_distances_to_all(dataset, space, dataset[i]) for i in chosen]
    min_dist = np.min(np.stack(columns, axis=1), axis=1)
    while len(chosen) < n_pivots:
        candidate = int(np.argmax(min_dist))
        if min_dist[candidate] <= 0.0:
            break  # remaining objects coincide with a pivot
        chosen.append(candidate)
        column = _distances_to_all(dataset, space, dataset[candidate])
        columns.append(column)
        np.minimum(min_dist, column, out=min_dist)
    return np.asarray(chosen, dtype=np.intp), np.stack(columns, axis=1)


def quantize_intervals(
    page_lo: np.ndarray, page_hi: np.ndarray, bits: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Round intervals outward onto a per-pivot uniform grid.

    Returns ``(lo, hi, grid_lo, grid_step, codes_lo, codes_hi)`` where
    the dequantised ``lo <= page_lo`` and ``hi >= page_hi`` elementwise,
    so the sketch bound derived from them can only get *weaker*, never
    unsound -- the VA-file's conservative-cell discipline.
    """
    if not 1 <= bits <= 16:
        raise ValueError("bits must be between 1 and 16")
    n_cells = 2**bits
    grid_lo = page_lo.min(axis=0)
    grid_hi = page_hi.max(axis=0)
    span = np.where(grid_hi > grid_lo, grid_hi - grid_lo, 1.0)
    grid_step = span / n_cells
    codes_lo = np.floor((page_lo - grid_lo) / grid_step)
    codes_lo = np.clip(codes_lo, 0, n_cells).astype(np.uint16)
    codes_hi = np.ceil((page_hi - grid_lo) / grid_step)
    codes_hi = np.clip(codes_hi, 0, n_cells).astype(np.uint16)
    lo = grid_lo + codes_lo * grid_step
    hi = grid_lo + codes_hi * grid_step
    # Outward rounding must hold exactly despite floating point.
    lo = np.minimum(lo, page_lo)
    hi = np.maximum(hi, page_hi)
    return lo, hi, grid_lo, grid_step, codes_lo, codes_hi


def build_sketch(
    dataset: Dataset,
    space: MetricSpace,
    pages: Sequence[Page],
    n_pivots: int = DEFAULT_N_PIVOTS,
    seed: int = 0,
    kind: str = KIND_PIVOT,
    bits: int = DEFAULT_BITS,
    pivot_hints: Sequence[int] | None = None,
) -> PivotSketch:
    """Build a :class:`PivotSketch` over the given data pages.

    All distance work is uncounted (planning work); empty pages get the
    degenerate interval ``[+inf, -inf]`` whose bound is ``+inf`` -- they
    hold no objects, so pruning them is trivially sound.
    """
    pivot_indices, obj_dists = select_pivots(
        dataset, space, n_pivots, seed=seed, hints=pivot_hints
    )
    n_pages = len(pages)
    p = pivot_indices.size
    page_lo = np.full((n_pages, p), np.inf)
    page_hi = np.full((n_pages, p), -np.inf)
    page_ids = np.empty(n_pages, dtype=np.int64)
    for row, page in enumerate(pages):
        page_ids[row] = page.page_id
        if page.indices.size:
            member_dists = obj_dists[np.asarray(page.indices, dtype=np.intp)]
            page_lo[row] = member_dists.min(axis=0)
            page_hi[row] = member_dists.max(axis=0)
    sketch = PivotSketch(
        kind=KIND_PIVOT,
        pivot_indices=pivot_indices,
        pivot_objects=[dataset[int(i)] for i in pivot_indices],
        page_ids=page_ids,
        page_lo=page_lo,
        page_hi=page_hi,
    )
    if kind == KIND_QUANTIZED:
        occupied = np.isfinite(page_lo).all(axis=1)
        if occupied.any():
            lo_q, hi_q, grid_lo, grid_step, codes_lo, codes_hi = quantize_intervals(
                page_lo[occupied], page_hi[occupied], bits
            )
            page_lo = page_lo.copy()
            page_hi = page_hi.copy()
            page_lo[occupied] = lo_q
            page_hi[occupied] = hi_q
        else:
            grid_lo = grid_step = codes_lo = codes_hi = None
        sketch = PivotSketch(
            kind=KIND_QUANTIZED,
            pivot_indices=pivot_indices,
            pivot_objects=sketch.pivot_objects,
            page_ids=page_ids,
            page_lo=page_lo,
            page_hi=page_hi,
            bits=bits,
            grid_lo=grid_lo,
            grid_step=grid_step,
            codes_lo=codes_lo,
            codes_hi=codes_hi,
        )
    elif kind != KIND_PIVOT:
        raise ValueError(f"unknown sketch kind {kind!r}")
    return sketch


def query_pivot_distances(
    sketch: PivotSketch, space: MetricSpace, query_obj: Any
) -> np.ndarray:
    """Uncounted distances from a query object to every pivot."""
    distance = space.distance
    if distance.is_vector_metric and np.ndim(query_obj) == 1:
        pivots = np.asarray(sketch.pivot_objects, dtype=float)
        return np.asarray(distance.many(pivots, query_obj), dtype=float)
    return np.array(
        [distance.one(pivot, query_obj) for pivot in sketch.pivot_objects],
        dtype=float,
    )


def lower_bound_matrix(sketch: PivotSketch, qd: np.ndarray) -> np.ndarray:
    """Sketch-space lower bounds, one vectorized pass over all pages.

    ``qd`` has shape ``(m, n_pivots)`` (one row of query-to-pivot
    distances per query); the result has shape ``(m, n_pages)`` with
    ``result[i, r] <= d(Q_i, O)`` for every object ``O`` on the page in
    sketch row ``r``.
    """
    qd = np.atleast_2d(np.asarray(qd, dtype=float))
    below = qd[:, None, :] - sketch.page_hi[None, :, :]
    above = sketch.page_lo[None, :, :] - qd[:, None, :]
    return np.maximum(below, above).clip(min=0.0).max(axis=2)
