"""Calibrating the cost model against the running platform.

The default :class:`~repro.costmodel.model.CostModel` uses the paper's
published 1999 per-operation timings, which is right for reproducing the
paper's relative results.  Users who want modelled costs that resemble
*their* hardware can calibrate: :func:`measure_platform` times one
distance calculation and one comparison on this machine (amortised over
vectorised batches, since that is how the engines evaluate them) and
returns a :class:`CostModel` built from the measurements.
"""

from __future__ import annotations

import timeit
from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING, Any

from repro.costmodel.model import CostModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.metric.distances import DistanceFunction


@dataclass(frozen=True)
class PlatformTimings:
    """Measured per-operation timings on the running platform."""

    dimension: int
    distance_seconds: float
    comparison_seconds: float

    @property
    def ratio(self) -> float:
        """How many comparisons one distance calculation costs.

        The paper measured 52 (20-d) and 155 (64-d); the avoidance
        technique pays off whenever this ratio is well above the number
        of tries spent per avoided calculation.
        """
        return self.distance_seconds / self.comparison_seconds


def measure_platform(
    dimension: int,
    distance: "DistanceFunction | None" = None,
    batch: int = 1000,
    repeats: int = 200,
    seed: int = 0,
) -> PlatformTimings:
    """Time one distance calculation and one comparison on this machine.

    Both are measured per element over vectorised batches of ``batch``
    operations, matching how the engines execute them.
    """
    if dimension < 1 or batch < 1 or repeats < 1:
        raise ValueError("dimension, batch and repeats must be positive")
    # Imported here to avoid a package-level import cycle (the metric
    # package's instrumented space imports the cost-model counters).
    from repro.metric.distances import EuclideanDistance

    metric = distance if distance is not None else EuclideanDistance()
    rng = np.random.default_rng(seed)
    xs = rng.random((batch, dimension))
    q = rng.random(dimension)
    distance_seconds = timeit.timeit(
        lambda: metric.many(xs, q), number=repeats
    ) / (repeats * batch)
    lhs = rng.random(batch)
    rhs = rng.random(batch)
    comparison_seconds = timeit.timeit(
        lambda: lhs > rhs + 0.25, number=repeats
    ) / (repeats * batch)
    return PlatformTimings(
        dimension=dimension,
        distance_seconds=distance_seconds,
        comparison_seconds=comparison_seconds,
    )


def calibrated_cost_model(
    dimension: int,
    sequential_block_seconds: float,
    random_block_seconds: float,
    distance: "DistanceFunction | None" = None,
    **measure_kwargs: Any,
) -> CostModel:
    """A :class:`CostModel` whose CPU constants come from this machine.

    I/O constants cannot be measured from Python (there is no real disk
    in the simulation), so the caller supplies them -- e.g. from their
    storage system's data sheet.
    """
    timings = measure_platform(dimension, distance=distance, **measure_kwargs)
    return CostModel(
        dimension=dimension,
        sequential_block_seconds=sequential_block_seconds,
        random_block_seconds=random_block_seconds,
        comparison_seconds=timings.comparison_seconds,
        mindist_seconds=timings.comparison_seconds,
        distance_seconds_override=timings.distance_seconds,
    )
