"""Cost accounting for the simulated database.

The paper reports I/O cost (disk page reads) and CPU cost (distance
calculations and triangle-inequality evaluations).  Rather than measuring
wall-clock time of a Python process -- which would say nothing about the
1999 C++/disk system the paper measured -- every component of this library
increments operation counters, and :class:`CostModel` converts counters to
modelled time using the paper's own published per-operation timings.
"""

from repro.costmodel.calibration import (
    PlatformTimings,
    calibrated_cost_model,
    measure_platform,
)
from repro.costmodel.counters import Counters
from repro.costmodel.model import (
    CostBreakdown,
    CostModel,
    distance_calculation_seconds,
)

__all__ = [
    "Counters",
    "CostBreakdown",
    "CostModel",
    "PlatformTimings",
    "calibrated_cost_model",
    "distance_calculation_seconds",
    "measure_platform",
]
