"""Operation counters shared by the storage, metric and query layers."""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class Counters:
    """Mutable set of operation counters.

    A single :class:`Counters` instance is shared by the simulated disk,
    the instrumented metric space and the query engines of one
    :class:`~repro.core.database.Database`, so that one query (or one block
    of multiple queries) can be measured by snapshotting before and after.

    Attributes
    ----------
    sequential_page_reads:
        Disk blocks read as part of a sequential scan over consecutive
        physical addresses (cheap: no seek).
    random_page_reads:
        Disk blocks read at arbitrary physical addresses (seek + transfer).
    buffer_hits:
        Page requests satisfied by the LRU buffer pool (no physical I/O).
    distance_calculations:
        Full distance-function evaluations between a query object and a
        database object.
    query_matrix_distance_calculations:
        Distance-function evaluations between pairs of *query* objects,
        i.e. the ``(m-1) * m / 2`` initialisation overhead of a multiple
        similarity query (Sec. 5.2 of the paper).
    avoidance_tries:
        Triangle-inequality evaluations (Lemma 1 and Lemma 2 are counted
        as one try each), successful or not.
    avoided_calculations:
        Distance calculations that were proven unnecessary via the
        triangle inequality.
    mindist_evaluations:
        Geometric lower-bound computations against page regions (MBR
        MINDIST for the X-tree, routing-ball bound for the M-tree).
        The paper folds these into the negligible "managing the query
        process" cost; they are counted for completeness.
    queries_completed:
        Similarity queries answered to completion.
    """

    sequential_page_reads: int = 0
    random_page_reads: int = 0
    buffer_hits: int = 0
    distance_calculations: int = 0
    query_matrix_distance_calculations: int = 0
    avoidance_tries: int = 0
    avoided_calculations: int = 0
    mindist_evaluations: int = 0
    queries_completed: int = 0

    def copy(self) -> "Counters":
        """Return an independent snapshot of the current counts."""
        return Counters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def diff(self, earlier: "Counters") -> "Counters":
        """Return the counts accumulated since ``earlier`` was snapshotted."""
        return Counters(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def add(self, other: "Counters") -> None:
        """Accumulate ``other`` into this instance in place."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def restore(self, snapshot: "Counters") -> None:
        """Set every counter to ``snapshot``'s value in place.

        Used by crash recovery to roll a shared instance back before a
        deterministic replay, without breaking the references the disk
        and metric space hold on it.
        """
        for f in fields(self):
            setattr(self, f.name, getattr(snapshot, f.name))

    @property
    def page_reads(self) -> int:
        """Total physical page reads (sequential + random)."""
        return self.sequential_page_reads + self.random_page_reads

    @property
    def total_distance_calculations(self) -> int:
        """Distance calculations including query-matrix initialisation."""
        return self.distance_calculations + self.query_matrix_distance_calculations

    @property
    def sharing_factor(self) -> float:
        """Queries completed per physical page read (Sec. 5.1).

        The I/O-sharing effectiveness of a multiple similarity query:
        every page read for the driving query also serves the other
        relevant queries of the batch, so a block of m queries drives
        this toward m (exactly m for the linear scan, Sec. 5.1), while
        one-at-a-time processing stays near its single-query baseline.
        Returns 0.0 before any physical read.
        """
        reads = self.page_reads
        if reads == 0:
            return 0.0
        return self.queries_completed / reads

    @property
    def avoidance_hit_rate(self) -> float:
        """Fraction of candidate distance calculations avoided (Sec. 5.2).

        ``avoided / (avoided + computed)``: of all object-query pairs
        that reached the page engines, the share proven unnecessary by
        the triangle-inequality Lemmas 1/2 before the distance function
        ran.  Returns 0.0 when no candidate was evaluated.
        """
        candidates = self.avoided_calculations + self.distance_calculations
        if candidates == 0:
            return 0.0
        return self.avoided_calculations / candidates

    def as_dict(self) -> dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {f.name: getattr(self, f.name) for f in fields(self)}
