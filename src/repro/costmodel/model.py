"""Conversion of operation counters to modelled query cost.

The constants below are taken from the paper wherever it publishes them:

* Sec. 6.2 measured 4.3 microseconds for one Euclidean distance on 20-d
  objects and 12.7 microseconds on 64-d objects on the evaluation machine
  (300 MHz Pentium II).  A linear model ``t_dist(d) = c0 + c1 * d`` fitted
  through those two points gives ``c1 = (12.7 - 4.3) / 44`` microseconds
  per dimension and ``c0 = 4.3 - 20 * c1``.
* Sec. 6.2 measured 0.082 microseconds per triangle-inequality evaluation.
* Sec. 6 used 32 KB disk blocks.  The per-block read times default to
  values typical for the paper's late-1990s platform: ~6.5 MB/s
  effective sequential throughput (5 ms per 32 KB block) and ~8 ms seek
  plus rotational delay on top for random reads (12.5 ms per block).
  These constants make the paper's own numbers mutually consistent:
  they reproduce the reported 4.5x single-query X-tree advantage with
  an index that reads roughly 9 % of the data pages, the factor ~8.7
  multi-query I/O reduction of the X-tree, and the overall speed-up of
  28 for the linear scan on the astronomy workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.counters import Counters

MICROSECOND = 1e-6

#: Per-dimension slope of the distance-calculation time (seconds), fitted
#: through the paper's 20-d and 64-d measurements.
DIST_SECONDS_PER_DIM = (12.7 - 4.3) / (64 - 20) * MICROSECOND

#: Dimension-independent offset of the distance-calculation time (seconds).
DIST_SECONDS_BASE = 4.3 * MICROSECOND - 20 * DIST_SECONDS_PER_DIM

#: Time of one triangle-inequality evaluation (seconds), from Sec. 6.2.
COMPARISON_SECONDS = 0.082 * MICROSECOND

#: Sequential read of one 32 KB block at ~6.5 MB/s effective (seconds).
SEQUENTIAL_BLOCK_SECONDS = 5.0e-3

#: Random read of one 32 KB block: seek + rotational delay + transfer.
RANDOM_BLOCK_SECONDS = 12.5e-3


def distance_calculation_seconds(dim: int) -> float:
    """Modelled time of one distance calculation on ``dim``-d objects.

    Evaluates the linear fit through the paper's published measurements;
    ``distance_calculation_seconds(20)`` is 4.3 us and
    ``distance_calculation_seconds(64)`` is 12.7 us.
    """
    return DIST_SECONDS_BASE + DIST_SECONDS_PER_DIM * dim


@dataclass(frozen=True)
class CostBreakdown:
    """Modelled cost of a measured run, split as the paper reports it."""

    io_seconds: float
    cpu_seconds: float

    @property
    def total_seconds(self) -> float:
        """Total modelled query cost (Sec. 6.3 sums I/O and CPU cost)."""
        return self.io_seconds + self.cpu_seconds

    def per_query(self, n_queries: int) -> "CostBreakdown":
        """Return the average cost per query over ``n_queries`` queries."""
        if n_queries <= 0:
            raise ValueError("n_queries must be positive")
        return CostBreakdown(
            io_seconds=self.io_seconds / n_queries,
            cpu_seconds=self.cpu_seconds / n_queries,
        )


@dataclass(frozen=True)
class CostModel:
    """Maps :class:`Counters` to modelled seconds.

    Parameters
    ----------
    dimension:
        Dimensionality of the database objects; determines the cost of one
        distance calculation.  For non-vector metric data pass the
        ``effective_dimension`` of the distance function (a calibration of
        how expensive one evaluation is relative to one comparison).
    sequential_block_seconds, random_block_seconds, comparison_seconds:
        Per-operation timings; defaults reproduce the paper's platform.
    """

    dimension: int
    sequential_block_seconds: float = SEQUENTIAL_BLOCK_SECONDS
    random_block_seconds: float = RANDOM_BLOCK_SECONDS
    comparison_seconds: float = COMPARISON_SECONDS
    mindist_seconds: float = COMPARISON_SECONDS
    #: Overrides the dimension-derived distance time (platform calibration).
    distance_seconds_override: float | None = None

    @property
    def distance_seconds(self) -> float:
        """Modelled time of one distance calculation."""
        if self.distance_seconds_override is not None:
            return self.distance_seconds_override
        return distance_calculation_seconds(self.dimension)

    def io_seconds(self, counters: Counters) -> float:
        """Modelled I/O time: buffer hits are free, reads are charged."""
        return (
            counters.sequential_page_reads * self.sequential_block_seconds
            + counters.random_page_reads * self.random_block_seconds
        )

    def cpu_seconds(self, counters: Counters) -> float:
        """Modelled CPU time, following the Sec. 5.2 cost formula.

        ``C_cpu = matrix_init * t_dist + avoidance_tries * t_cmp +
        not_avoided * t_dist`` plus a small charge per page-region
        lower-bound evaluation.
        """
        return (
            counters.total_distance_calculations * self.distance_seconds
            + counters.avoidance_tries * self.comparison_seconds
            + counters.mindist_evaluations * self.mindist_seconds
        )

    def breakdown(self, counters: Counters) -> CostBreakdown:
        """Return the full modelled cost of ``counters``."""
        return CostBreakdown(
            io_seconds=self.io_seconds(counters),
            cpu_seconds=self.cpu_seconds(counters),
        )

    def total_seconds(self, counters: Counters) -> float:
        """Modelled total time (I/O + CPU) of ``counters``."""
        return self.breakdown(counters).total_seconds
