"""The generic ExploreNeighborhoods schemes (Figs. 2 and 3).

``explore_neighborhoods`` is the single-query scheme: starting from a
set of objects, repeatedly take an object from the control list, run a
similarity query for it, process the answers, and enqueue the filtered
answers.  ``explore_neighborhoods_multiple`` is the purely syntactic
transformation of Sec. 3.3: a *set* of control-list objects is handed to
one multiple similarity query, but only the first object and its answer
set are consumed per iteration -- the rest is prefetching hints to the
DBMS.  Both functions perform exactly the same task; the test suite
asserts identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.answers import Answer
from repro.core.database import Database
from repro.core.types import QueryType
from repro.obs.observer import maybe_phase
from repro.service.session import QuerySession


@dataclass
class ExplorationCallbacks:
    """The task-specific plug-ins of the scheme.

    Attributes
    ----------
    proc_1:
        Called with the selected object index before its query runs.
    proc_2:
        Called with ``(object_index, answers)`` after the query.
    filter:
        Called with ``(object_index, answers)``; returns the answer
        indices to enqueue.  The scheme itself removes indices that were
        ever enqueued before, which guarantees termination (Sec. 3.1).
    condition_check:
        Called with the current control list; returning ``False`` stops
        the loop early.
    """

    proc_1: Callable[[int], None] | None = None
    proc_2: Callable[[int, list[Answer]], None] | None = None
    filter: Callable[[int, list[Answer]], Iterable[int]] | None = None
    condition_check: Callable[[Sequence[int]], bool] | None = None


@dataclass
class ExplorationStats:
    """What an exploration run did (for tests and reports)."""

    queries_issued: int = 0
    objects_visited: list[int] = field(default_factory=list)


def _default_filter(obj_index: int, answers: list[Answer]) -> list[int]:
    return [a.index for a in answers]


def explore_neighborhoods(
    database: Database,
    start_objects: Sequence[int],
    sim_type: QueryType,
    callbacks: ExplorationCallbacks | None = None,
    max_iterations: int | None = None,
) -> ExplorationStats:
    """The single-query scheme of Fig. 2 over dataset object indices."""
    callbacks = callbacks or ExplorationCallbacks()
    filter_fn = callbacks.filter or _default_filter
    control: dict[int, None] = dict.fromkeys(int(i) for i in start_objects)
    ever_enqueued = set(control)
    stats = ExplorationStats()
    observer = getattr(database, "observer", None)

    with maybe_phase(
        observer, "mine.explore", scheme="single", start_objects=len(control)
    ):
        while control:
            if callbacks.condition_check is not None and not callbacks.condition_check(
                list(control)
            ):
                break
            if max_iterations is not None and stats.queries_issued >= max_iterations:
                break
            obj_index = next(iter(control))
            with maybe_phase(
                observer,
                "mine.iteration",
                driver="explore",
                iteration=stats.queries_issued,
                obj=obj_index,
            ):
                if callbacks.proc_1 is not None:
                    callbacks.proc_1(obj_index)
                answers = database.similarity_query(
                    database.dataset[obj_index], sim_type
                )
                stats.queries_issued += 1
                stats.objects_visited.append(obj_index)
                if callbacks.proc_2 is not None:
                    callbacks.proc_2(obj_index, answers)
                fresh = [
                    int(i)
                    for i in filter_fn(obj_index, answers)
                    if i not in ever_enqueued
                ]
                del control[obj_index]
                for index in fresh:
                    control[index] = None
                    ever_enqueued.add(index)
    return stats


def explore_neighborhoods_multiple(
    database: Database,
    start_objects: Sequence[int],
    sim_type: QueryType,
    callbacks: ExplorationCallbacks | None = None,
    batch_size: int = 16,
    max_iterations: int | None = None,
    session: QuerySession | None = None,
) -> ExplorationStats:
    """The multiple-query scheme of Fig. 3.

    Performs exactly the same task as :func:`explore_neighborhoods`
    (identical visit order, identical callback invocations); the only
    difference is that each iteration hands the first ``batch_size``
    control-list objects to one multiple similarity query through a
    shared :class:`~repro.service.QuerySession`, letting the session
    buffer prefetch partial answers for the objects that will be
    selected in later iterations.
    """
    if batch_size < 1:
        raise ValueError("batch size must be positive")
    callbacks = callbacks or ExplorationCallbacks()
    filter_fn = callbacks.filter or _default_filter
    control: dict[int, None] = dict.fromkeys(int(i) for i in start_objects)
    ever_enqueued = set(control)
    stats = ExplorationStats()
    if session is None:
        session = database.session(seed_from_queries=True)
    observer = getattr(database, "observer", None)

    with maybe_phase(
        observer, "mine.explore", scheme="multiple", start_objects=len(control)
    ):
        while control:
            if callbacks.condition_check is not None and not callbacks.condition_check(
                list(control)
            ):
                break
            if max_iterations is not None and stats.queries_issued >= max_iterations:
                break
            batch = list(control)[:batch_size]
            first = batch[0]
            with maybe_phase(
                observer,
                "mine.iteration",
                driver="explore",
                iteration=stats.queries_issued,
                obj=first,
                batch=len(batch),
            ):
                if callbacks.proc_1 is not None:
                    callbacks.proc_1(first)
                answers = session.ask(
                    [database.dataset[i] for i in batch],
                    [sim_type] * len(batch),
                    keys=batch,
                    db_indices=batch,
                )
                stats.queries_issued += 1
                stats.objects_visited.append(first)
                if callbacks.proc_2 is not None:
                    callbacks.proc_2(first, answers)
                fresh = [
                    int(i) for i in filter_fn(first, answers) if i not in ever_enqueued
                ]
                del control[first]
                session.retire(first)
                for index in fresh:
                    control[index] = None
                    ever_enqueued.add(index)
    return stats
