"""Manual data exploration by concurrent users (the image scenario).

Sec. 6 simulates ``c`` users browsing an image database: each user
starts at a random object and repeatedly jumps to one of the k most
similar images of their current position.  In every round the system
*prefetches* the k-NN of all ``c * k`` current answers with one multiple
similarity query, so whichever image a user picks, its neighbourhood is
already known.  This produces ``m = c * k`` highly *dependent* queries
per round -- the opposite extreme from the independent classification
workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.database import Database
from repro.core.types import knn_query


@dataclass
class ExplorationTrace:
    """What a simulated exploration session did."""

    #: Per-round lists of query-object indices (length ``n_rounds + 1``;
    #: round 0 is the initial one-query-per-user round).
    rounds: list[list[int]] = field(default_factory=list)
    #: Per-user browsing path (object indices in visit order).
    user_paths: list[list[int]] = field(default_factory=list)
    #: Total k-NN queries answered.
    queries_issued: int = 0


def simulate_concurrent_exploration(
    database: Database,
    n_users: int,
    k: int,
    n_rounds: int,
    block_size: int | None = None,
    seed: int = 0,
) -> ExplorationTrace:
    """Run the Sec. 6 manual-exploration workload.

    Parameters
    ----------
    n_users, k:
        Number of concurrent users and answers per query; each round
        issues ``n_users * k`` k-NN queries (after the initial round of
        ``n_users`` queries).
    n_rounds:
        Exploration rounds after the initial one.
    block_size:
        Queries per multiple similarity query; ``None`` batches each
        round as one multiple query (the paper's setting).

    Returns
    -------
    ExplorationTrace
        Visit paths and query counts; query cost is measured by wrapping
        the call in :meth:`Database.measure`.
    """
    if n_users < 1 or k < 1 or n_rounds < 0:
        raise ValueError("n_users and k must be positive, n_rounds non-negative")
    rng = np.random.default_rng(seed)
    n = len(database.dataset)
    trace = ExplorationTrace(user_paths=[[] for _ in range(n_users)])

    def run_batch(indices: list[int]) -> dict[int, list[int]]:
        """k-NN for each index; returns answer-index lists."""
        trace.queries_issued += len(indices)
        answer_sets = database.run_in_blocks(
            [database.dataset[i] for i in indices],
            knn_query(k),
            block_size=block_size if block_size is not None else max(1, len(indices)),
            db_indices=indices,
        )
        return {
            index: [a.index for a in answers]
            for index, answers in zip(indices, answer_sets)
        }

    # Initial round: one random start object per user.
    starts = [int(i) for i in rng.integers(0, n, size=n_users)]
    trace.rounds.append(list(starts))
    for user, start in enumerate(starts):
        trace.user_paths[user].append(start)
    answers_by_object = run_batch(starts)
    current_answers = [answers_by_object[start] for start in starts]

    for _ in range(n_rounds):
        # Prefetch the neighbourhoods of every current answer...
        round_queries = sorted({i for answers in current_answers for i in answers})
        if not round_queries:
            break
        trace.rounds.append(round_queries)
        answers_by_object = run_batch(round_queries)
        # ... then each user picks one answer and moves there.
        next_answers: list[list[int]] = []
        for user in range(n_users):
            options = current_answers[user]
            if not options:
                next_answers.append([])
                continue
            choice = int(options[int(rng.integers(0, len(options)))])
            trace.user_paths[user].append(choice)
            next_answers.append(answers_by_object[choice])
        current_answers = next_answers
    return trace
