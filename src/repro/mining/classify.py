"""Simultaneous k-NN classification (the paper's astronomy scenario).

A set of objects is classified in one batch: a k-nearest-neighbour
query runs for each object and the majority class among the neighbours
is assigned ([18] in the paper).  ``proc_1`` is empty and the filter
returns nothing -- no new query objects are generated -- which makes
this the *independent multiple queries* extreme of the evaluation.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Sequence

import numpy as np

from repro.core.database import Database
from repro.core.types import knn_query
from repro.obs.observer import maybe_phase


def knn_classify(
    database: Database,
    query_indices: Sequence[int],
    k: int = 10,
    block_size: int | None = None,
    exclude_self: bool = False,
    labels: np.ndarray | None = None,
) -> list[Any]:
    """Classify database objects by majority vote of their k-NN.

    Parameters
    ----------
    query_indices:
        Dataset indices of the objects to classify.
    block_size:
        Queries per multiple similarity query; ``None`` processes the
        whole batch at once, 1 degenerates to single queries.
    exclude_self:
        Ignore the query object itself among the neighbours (standard
        leave-one-out evaluation; the paper's production setting keeps
        it, since newly observed stars are not yet in the database).
    labels:
        Class labels per dataset object; defaults to the dataset's own.

    Returns
    -------
    The predicted label per query object.  Ties break towards the
    smallest label, making the result deterministic.
    """
    if labels is None:
        labels = database.dataset.labels
    if labels is None:
        raise ValueError("dataset has no labels and none were supplied")
    effective_k = k + 1 if exclude_self else k
    query_indices = [int(i) for i in query_indices]
    queries = [database.dataset[i] for i in query_indices]
    observer = getattr(database, "observer", None)
    with maybe_phase(observer, "mine.classify", queries=len(queries), k=k):
        with maybe_phase(
            observer,
            "mine.iteration",
            driver="classify",
            iteration=0,
            batch=len(queries),
        ):
            answer_sets = database.run_in_blocks(
                queries,
                knn_query(effective_k),
                block_size=block_size
                if block_size is not None
                else max(1, len(queries)),
                db_indices=query_indices,
            )
    predictions: list[Any] = []
    for query_index, answers in zip(query_indices, answer_sets):
        votes = [a.index for a in answers if not (exclude_self and a.index == query_index)]
        votes = votes[:k]
        counts = Counter(labels[i] for i in votes)
        best = min(counts.items(), key=lambda item: (-item[1], item[0]))
        predictions.append(best[0])
    return predictions
