"""Proximity analysis (after Knorr & Ng, TKDE 1996).

The goal is to explain a cluster of objects by the features of its
neighbours: first find the top-k database objects closest to the
cluster, then extract the features most of them share.  In the scheme's
terms, ``StartObjects`` is the cluster, ``proc_2`` aggregates the
closest outsiders, and the filter returns nothing (no new queries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.database import Database
from repro.core.types import knn_query
from repro.obs.observer import maybe_phase


@dataclass(frozen=True)
class CommonFeature:
    """A feature bucket shared by most of the top-k closest objects."""

    dimension: int
    bucket: int
    fraction: float
    bucket_range: tuple[float, float]


@dataclass
class ProximityReport:
    """Result of :func:`proximity_analysis`."""

    cluster: list[int]
    closest: list[tuple[int, float]]
    common_features: list[CommonFeature]


def proximity_analysis(
    database: Database,
    cluster_indices: Sequence[int],
    top_k: int = 10,
    per_member_k: int = 10,
    n_buckets: int = 4,
    min_fraction: float = 0.6,
) -> ProximityReport:
    """Find the top-k objects closest to a cluster and their common features.

    The distance of an outside object to the cluster is its minimum
    distance to any cluster member (single-link).  One multiple
    similarity query retrieves the ``per_member_k`` nearest neighbours
    of every member; the union, ranked by distance, yields the top-k
    outsiders.  Features are then discretised into ``n_buckets``
    equi-width buckets over the dataset range, and buckets shared by at
    least ``min_fraction`` of the top-k are reported.
    """
    if not database.dataset.is_vector:
        raise ValueError("proximity analysis needs a vector dataset")
    cluster = [int(i) for i in cluster_indices]
    if not cluster:
        raise ValueError("cluster must not be empty")
    member_set = set(cluster)
    observer = getattr(database, "observer", None)

    with maybe_phase(observer, "mine.proximity", cluster=len(cluster), top_k=top_k):
        with maybe_phase(
            observer,
            "mine.iteration",
            driver="proximity",
            iteration=0,
            batch=len(cluster),
        ):
            answer_sets = database.multiple_similarity_query(
                [database.dataset[i] for i in cluster],
                knn_query(per_member_k + len(cluster)),
            )
    best: dict[int, float] = {}
    for answers in answer_sets:
        for answer in answers:
            if answer.index in member_set:
                continue
            previous = best.get(answer.index)
            if previous is None or answer.distance < previous:
                best[answer.index] = answer.distance
    closest = sorted(best.items(), key=lambda item: (item[1], item[0]))[:top_k]

    vectors = database.dataset.vectors
    lo = vectors.min(axis=0)
    hi = vectors.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    common: list[CommonFeature] = []
    if closest:
        top_vectors = vectors[[index for index, _ in closest]]
        buckets = np.clip(
            ((top_vectors - lo) / span * n_buckets).astype(int), 0, n_buckets - 1
        )
        for dim in range(vectors.shape[1]):
            values, counts = np.unique(buckets[:, dim], return_counts=True)
            top = int(np.argmax(counts))
            fraction = counts[top] / len(closest)
            if fraction >= min_fraction:
                bucket = int(values[top])
                width = span[dim] / n_buckets
                common.append(
                    CommonFeature(
                        dimension=dim,
                        bucket=bucket,
                        fraction=float(fraction),
                        bucket_range=(
                            float(lo[dim] + bucket * width),
                            float(lo[dim] + (bucket + 1) * width),
                        ),
                    )
                )
    common.sort(key=lambda f: (-f.fraction, f.dimension))
    return ProximityReport(cluster=cluster, closest=closest, common_features=common)
