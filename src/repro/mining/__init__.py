"""Data mining by iterative neighbourhood exploration (Sec. 3).

:mod:`repro.mining.explore` implements the two generic schemes of
Figs. 2 and 3; the sibling modules implement the paper's six discussed
instances: manual data exploration, spatial association rules,
density-based clustering (DBSCAN), simultaneous k-NN classification,
spatial trend detection and proximity analysis.
"""

from repro.mining.assoc import NeighborhoodRule, spatial_association_rules
from repro.mining.classify import knn_classify
from repro.mining.dbscan import DBSCANResult, dbscan
from repro.mining.exploration import ExplorationTrace, simulate_concurrent_exploration
from repro.mining.explore import (
    ExplorationCallbacks,
    explore_neighborhoods,
    explore_neighborhoods_multiple,
)
from repro.mining.proximity import ProximityReport, proximity_analysis
from repro.mining.trend import TrendResult, detect_trends

__all__ = [
    "DBSCANResult",
    "ExplorationCallbacks",
    "ExplorationTrace",
    "NeighborhoodRule",
    "ProximityReport",
    "TrendResult",
    "dbscan",
    "detect_trends",
    "explore_neighborhoods",
    "explore_neighborhoods_multiple",
    "knn_classify",
    "proximity_analysis",
    "simulate_concurrent_exploration",
    "spatial_association_rules",
]
