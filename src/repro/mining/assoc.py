"""Neighbourhood association rules (after Koperski & Han, SSD 1995).

The paper's spatial-association-rules instance: for every object of a
reference type, a similarity query retrieves its neighbourhood;
``proc_2`` counts which other types co-occur, and rules of the form
"reference type is close to type B" are reported with their support and
confidence.  The queries are independent (one per reference object) and
run through the multiple-query machinery.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.database import Database
from repro.core.types import range_query


@dataclass(frozen=True)
class NeighborhoodRule:
    """One discovered rule: ``reference_type -> close_to(other_type)``."""

    reference_type: Any
    other_type: Any
    support: float
    confidence: float
    n_witnesses: int

    def __str__(self) -> str:
        return (
            f"{self.reference_type!r} close_to {self.other_type!r} "
            f"(support={self.support:.3f}, confidence={self.confidence:.3f})"
        )


def spatial_association_rules(
    database: Database,
    reference_type: Any,
    eps: float,
    min_support: float = 0.01,
    min_confidence: float = 0.3,
    labels: np.ndarray | None = None,
    block_size: int = 32,
) -> list[NeighborhoodRule]:
    """Mine "reference type close to type B" rules.

    Parameters
    ----------
    reference_type:
        Label of the objects whose neighbourhoods are explored.
    eps:
        Neighbourhood radius (the ``SimType`` of the scheme).
    min_support:
        Minimum fraction of *all* database objects that are reference
        objects with at least one type-B neighbour.
    min_confidence:
        Minimum fraction of reference objects with a type-B neighbour.
    labels:
        Object types; defaults to the dataset labels.

    Returns
    -------
    Rules sorted by descending confidence.
    """
    if labels is None:
        labels = database.dataset.labels
    if labels is None:
        raise ValueError("dataset has no labels and none were supplied")
    labels = np.asarray(labels)
    reference_indices = [int(i) for i in np.flatnonzero(labels == reference_type)]
    if not reference_indices:
        return []

    witness_counts: Counter[Any] = Counter()
    answer_sets = database.run_in_blocks(
        [database.dataset[i] for i in reference_indices],
        range_query(eps),
        block_size=block_size,
    )
    for ref_index, answers in zip(reference_indices, answer_sets):
        neighbor_types = {
            labels[a.index] for a in answers if a.index != ref_index
        }
        neighbor_types.discard(reference_type)
        for other in neighbor_types:
            witness_counts[other] += 1

    n_total = len(database.dataset)
    n_reference = len(reference_indices)
    rules = []
    for other, count in witness_counts.items():
        support = count / n_total
        confidence = count / n_reference
        if support >= min_support and confidence >= min_confidence:
            rules.append(
                NeighborhoodRule(
                    reference_type=reference_type,
                    other_type=other,
                    support=support,
                    confidence=confidence,
                    n_witnesses=count,
                )
            )
    rules.sort(key=lambda r: (-r.confidence, str(r.other_type)))
    return rules


def co_location_summary(
    database: Database,
    eps: float,
    labels: Sequence[Any] | None = None,
    block_size: int = 32,
) -> dict[tuple[Any, Any], int]:
    """Count neighbouring type pairs over the whole database.

    A symmetric summary used by the examples: for every object, each
    *distinct* neighbouring type contributes one witness to the
    (type, neighbour type) pair.
    """
    if labels is None:
        labels = database.dataset.labels
    if labels is None:
        raise ValueError("dataset has no labels and none were supplied")
    labels = np.asarray(labels)
    indices = list(range(len(database.dataset)))
    answer_sets = database.run_in_blocks(
        [database.dataset[i] for i in indices],
        range_query(eps),
        block_size=block_size,
    )
    counts: Counter[tuple[Any, Any]] = Counter()
    for index, answers in zip(indices, answer_sets):
        own = labels[index]
        neighbor_types = {labels[a.index] for a in answers if a.index != index}
        for other in neighbor_types:
            if other != own:
                counts[(own, other)] += 1
    return dict(counts)
