"""DBSCAN (Ester, Kriegel, Sander, Xu, KDD 1996) over similarity queries.

DBSCAN is the paper's flagship instance of iterative neighbourhood
exploration: starting from an object, it repeatedly retrieves
eps-neighbourhoods of objects retrieved by previous queries.  Two query
paths are provided:

* ``batch_size=1`` -- classic DBSCAN issuing single range queries;
* ``batch_size=m`` -- the ExploreNeighborhoodsMultiple form: the
  current seed-list window is handed to one incremental multiple
  similarity query, so neighbourhood pages are read once for many seeds.

Both paths produce identical clusterings (asserted by the test suite):
the transformation of Sec. 3.3 is purely syntactic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.database import Database
from repro.core.types import range_query
from repro.obs.observer import maybe_phase

#: Label for noise objects.
NOISE = -1

#: Internal marker for not-yet-visited objects.
_UNCLASSIFIED = -2


@dataclass
class DBSCANResult:
    """Clustering produced by :func:`dbscan`.

    Attributes
    ----------
    labels:
        Per-object cluster id (0-based); ``-1`` marks noise.
    n_clusters:
        Number of clusters found.
    queries_issued:
        Range queries answered (same for both query paths).
    """

    labels: np.ndarray
    n_clusters: int
    queries_issued: int

    def cluster_members(self, cluster_id: int) -> np.ndarray:
        """Indices of the objects in one cluster."""
        return np.flatnonzero(self.labels == cluster_id)


def dbscan(
    database: Database,
    eps: float,
    min_pts: int,
    batch_size: int = 1,
) -> DBSCANResult:
    """Density-based clustering of the whole database.

    Parameters
    ----------
    eps, min_pts:
        The DBSCAN density parameters: an object is a *core object*
        when its eps-neighbourhood (itself included) holds at least
        ``min_pts`` objects.
    batch_size:
        Number of pending seeds handed to each multiple similarity
        query; 1 reproduces classic single-query DBSCAN.
    """
    if eps <= 0:
        raise ValueError("eps must be positive")
    if min_pts < 1:
        raise ValueError("min_pts must be at least 1")
    if batch_size < 1:
        raise ValueError("batch size must be positive")

    n = len(database.dataset)
    labels = np.full(n, _UNCLASSIFIED, dtype=int)
    qtype = range_query(eps)
    session = database.session(seed_from_queries=False)
    queries_issued = 0
    observer = getattr(database, "observer", None)

    def neighborhood(seeds: list[int]) -> list[int]:
        """Answer the range query for ``seeds[0]``, prefetching the rest."""
        nonlocal queries_issued
        with maybe_phase(
            observer,
            "mine.iteration",
            driver="dbscan",
            iteration=queries_issued,
            seed=seeds[0],
            batch=min(batch_size, len(seeds)),
        ):
            queries_issued += 1
            if batch_size == 1:
                answers = session.ask(
                    [database.dataset[seeds[0]]], [qtype], keys=[seeds[0]]
                )
            else:
                window = seeds[:batch_size]
                answers = session.ask(
                    [database.dataset[i] for i in window],
                    [qtype] * len(window),
                    keys=window,
                )
            session.retire(seeds[0])
            return [a.index for a in answers]

    cluster_id = 0
    with maybe_phase(
        observer, "mine.dbscan", eps=eps, min_pts=min_pts, batch_size=batch_size
    ):
        for start in range(n):
            if labels[start] != _UNCLASSIFIED:
                continue
            neighbors = neighborhood([start])
            if len(neighbors) < min_pts:
                labels[start] = NOISE
                continue
            # Expand a new cluster from this core object.
            labels[start] = cluster_id
            seeds = [i for i in neighbors if labels[i] in (_UNCLASSIFIED, NOISE)]
            for i in seeds:
                labels[i] = cluster_id
            while seeds:
                current = seeds[0]
                current_neighbors = neighborhood(seeds)
                seeds = seeds[1:]
                if len(current_neighbors) >= min_pts:
                    for i in current_neighbors:
                        if labels[i] in (_UNCLASSIFIED, NOISE):
                            if labels[i] == _UNCLASSIFIED:
                                seeds.append(i)
                            labels[i] = cluster_id
            cluster_id += 1

    return DBSCANResult(
        labels=labels, n_clusters=cluster_id, queries_issued=queries_issued
    )
