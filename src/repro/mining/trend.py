"""Spatial trend detection (after Ester, Frommelt, Kriegel, Sander, KDD 1998).

A *spatial trend* is a regular change of a non-spatial attribute when
moving away from a start object.  Neighbourhood paths starting at the
object model the movement, and a linear regression of the attribute
difference against the distance from the start describes the regularity
of change.  The ExploreNeighborhoods loop is bounded by the path length
(the ``condition_check`` of the scheme), and ``proc_1``/``proc_2``
perform the regression bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.database import Database
from repro.core.types import knn_query
from repro.obs.observer import maybe_phase


@dataclass
class TrendPath:
    """One neighbourhood path and its regression."""

    objects: list[int]
    distances: list[float]
    attribute_deltas: list[float]
    slope: float
    r_squared: float


@dataclass
class TrendResult:
    """All paths explored from one start object."""

    start: int
    paths: list[TrendPath] = field(default_factory=list)

    @property
    def mean_slope(self) -> float:
        """Average regression slope over all paths."""
        if not self.paths:
            return 0.0
        return float(np.mean([p.slope for p in self.paths]))

    def significant_paths(self, min_r_squared: float = 0.5) -> list[TrendPath]:
        """Paths whose regression explains at least ``min_r_squared``."""
        return [p for p in self.paths if p.r_squared >= min_r_squared]


def _regress(distances: np.ndarray, deltas: np.ndarray) -> tuple[float, float]:
    """Least-squares slope and R^2 of deltas over distances."""
    if distances.size < 2 or np.allclose(distances, distances[0]):
        return 0.0, 0.0
    design = np.vstack([distances, np.ones_like(distances)]).T
    (slope, intercept), *_ = np.linalg.lstsq(design, deltas, rcond=None)
    predicted = design @ np.array([slope, intercept])
    total = float(np.sum((deltas - deltas.mean()) ** 2))
    residual = float(np.sum((deltas - predicted) ** 2))
    r_squared = 1.0 - residual / total if total > 0 else 0.0
    return float(slope), float(max(0.0, r_squared))


def detect_trends(
    database: Database,
    start: int,
    attribute: np.ndarray,
    n_paths: int = 8,
    path_length: int = 5,
    k: int = 8,
    seed: int = 0,
) -> TrendResult:
    """Explore neighbourhood paths from ``start`` and regress an attribute.

    Parameters
    ----------
    start:
        Dataset index of the start object.
    attribute:
        Per-object attribute values (e.g. average economic power in the
        paper's motivating example).
    n_paths, path_length:
        Number of random neighbourhood paths and their maximum length
        (the scheme's step bound).
    k:
        Neighbours retrieved per step; the next path object is a random
        unvisited neighbour.

    Each path's queries run through one shared
    :class:`~repro.service.QuerySession`, so neighbourhood pages are
    shared between path steps.
    """
    attribute = np.asarray(attribute, dtype=float)
    if attribute.shape[0] != len(database.dataset):
        raise ValueError("attribute must have one value per dataset object")
    rng = np.random.default_rng(seed)
    session = database.session(seed_from_queries=False)
    result = TrendResult(start=int(start))
    start_obj = database.dataset[start]
    qtype = knn_query(k)

    observer = getattr(database, "observer", None)
    with maybe_phase(observer, "mine.trend", n_paths=n_paths, path_length=path_length):
        for path_index in range(n_paths):
            current = int(start)
            visited = {current}
            objects = [current]
            distances = [0.0]
            deltas = [0.0]
            for step in range(path_length):
                with maybe_phase(
                    observer,
                    "mine.iteration",
                    driver="trend",
                    iteration=step,
                    path=path_index,
                    obj=current,
                ):
                    answers = session.ask(
                        [database.dataset[current]], [qtype], keys=[("trend", current)]
                    )
                candidates = [a.index for a in answers if a.index not in visited]
                if not candidates:
                    break
                nxt = int(candidates[int(rng.integers(0, len(candidates)))])
                visited.add(nxt)
                objects.append(nxt)
                distances.append(
                    database.space.uncounted(start_obj, database.dataset[nxt])
                )
                deltas.append(float(attribute[nxt] - attribute[start]))
                current = nxt
            slope, r_squared = _regress(np.asarray(distances), np.asarray(deltas))
            result.paths.append(
                TrendPath(
                    objects=objects,
                    distances=distances,
                    attribute_deltas=deltas,
                    slope=slope,
                    r_squared=r_squared,
                )
            )
    return result
