"""Command-line interface.

::

    python -m repro info                 # versions and components
    python -m repro demo                 # 60-second single-vs-multiple demo
    python -m repro serve                # dynamic-batching service demo
    python -m repro serve --listen :0    # same scheduler behind a socket
    python -m repro loadgen [...]        # record/replay open-loop load
    python -m repro calibrate [-d DIM]   # time dist/comparison on this machine
    python -m repro experiments [...]    # full evaluation (run_all)
    python -m repro report METRICS.json  # pretty-print an observability run
    python -m repro explain 3            # causal provenance card of query #3
    python -m repro profile TRACE.jsonl  # phase self-time + flamegraph export
    python -m repro top                  # live dashboard over a serving run
    python -m repro bench --check        # perf-regression check vs. baselines

``demo`` and ``experiments`` accept ``--trace FILE`` (JSONL spans and
events) and ``--metrics-out FILE`` (metrics snapshot: sharing factor,
avoidance hit-rate, phase latency histograms); ``report`` renders such
files (a ``.jsonl``/``.jsonl.gz`` positional is treated as a trace).
``serve`` and ``report`` accept ``--slo SPEC`` (declarative
latency/completeness objectives, evaluated with burn rates) and
``--timeline FILE`` (windowed time-series telemetry); ``serve`` also
takes ``--anomaly SPEC`` (online rules that feed the scheduler's
``replan()``).  See ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_info(args: argparse.Namespace) -> int:
    import repro
    from repro.core.database import _ACCESS_METHODS
    from repro.core.engine import engine_names
    from repro.metric.distances import _REGISTRY

    print(f"repro {repro.__version__}")
    print(
        "reproduction of: Braunmüller, Ester, Kriegel, Sander --\n"
        "  'Efficiently Supporting Multiple Similarity Queries for Mining in\n"
        "  Metric Databases' (ICDE 2000)"
    )
    print(f"access methods: {', '.join(sorted(_ACCESS_METHODS))}")
    print(f"distance functions: {', '.join(sorted(_REGISTRY))}")
    print(f"engines: {', '.join(engine_names())}")
    print(
        "page pre-filter: pivot/quantized sketches (--prefilter; exact "
        "by default, --recall-target < 1 opts into bounded recall)"
    )
    return 0


def _make_observer(args: argparse.Namespace):
    """Build an Observer when ``--trace``/``--metrics-out`` was given."""
    if not (getattr(args, "trace", None) or getattr(args, "metrics_out", None)):
        return None
    from repro.obs import Observer

    return Observer(trace=args.trace is not None)


def _flush_observer(observer, args: argparse.Namespace) -> None:
    """Write the trace/metrics files an Observer gathered."""
    if observer is None:
        return
    if args.trace:
        n = observer.write_trace(args.trace)
        print(f"wrote {n} trace entries to {args.trace}")
    if args.metrics_out:
        observer.write_metrics(args.metrics_out)
        print(f"wrote metrics snapshot to {args.metrics_out}")


def _attach_timeline(observer, args: argparse.Namespace, always: bool = False):
    """Attach a TimelineCollector when ``--timeline``/``--anomaly`` ask.

    ``always`` forces one (``repro top`` needs the window ring for its
    sparklines even without an export path).  Returns the collector or
    ``None``.
    """
    wants = (
        always
        or getattr(args, "timeline", None)
        or getattr(args, "anomaly", None)
    )
    if observer is None or not wants:
        return None
    from repro.obs import TimelineCollector, load_anomaly_engine

    engine = None
    if getattr(args, "anomaly", None):
        engine = load_anomaly_engine(args.anomaly)
        print(
            f"anomaly rules: {args.anomaly} "
            f"({len(engine.rules)} rule(s): "
            f"{', '.join(rule.name for rule in engine.rules)})"
        )
    return observer.attach_timeline(
        TimelineCollector(
            observer.metrics,
            window_ticks=getattr(args, "timeline_window", 4),
            anomaly_engine=engine,
        )
    )


def _flush_timeline(timeline, args: argparse.Namespace) -> None:
    """Close the open window and export/summarise the timeline."""
    if timeline is None:
        return
    timeline.flush()
    path = getattr(args, "timeline", None)
    if path:
        n = timeline.export_jsonl(path)
        print(f"wrote {n} timeline windows to {path}")
    if timeline.anomaly_engine is not None:
        print(
            f"anomalies fired: {timeline.anomaly_engine.n_fired} "
            f"across {timeline.n_closed} windows"
        )


def _prefilter_config(args: argparse.Namespace):
    """Build a PrefilterConfig from ``--prefilter``/``--recall-target``."""
    enabled = getattr(args, "prefilter", False)
    recall_target = getattr(args, "recall_target", 1.0)
    if recall_target < 1.0 and not enabled:
        raise SystemExit("--recall-target requires --prefilter")
    if not enabled:
        return None
    from repro.prefilter import PrefilterConfig

    return PrefilterConfig(recall_target=recall_target)


def _print_prefilter_stats(prefilter) -> None:
    """One summary line of the pre-filter tier's page accounting."""
    stats = prefilter.stats
    print(
        f"prefilter [{prefilter.describe()}]: "
        f"pruned {stats.pages_pruned} + skipped {stats.pages_skipped} "
        f"of {stats.pages_delivered} page deliveries "
        f"({stats.prune_effectiveness:.0%} dropped before the engine)"
    )


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import Database, knn_query
    from repro.workloads import make_gaussian_mixture, sample_database_queries

    dataset = make_gaussian_mixture(
        n=args.objects, dimension=12, n_clusters=30, cluster_std=0.03, seed=0
    )
    observer = _make_observer(args)
    database = Database(
        dataset,
        access=args.access,
        engine=args.engine,
        observer=observer,
        prefilter=_prefilter_config(args),
    )
    print("database:", database.summary())
    indices = sample_database_queries(dataset, args.queries, seed=1)
    queries = [dataset[i] for i in indices]
    with database.measure() as single:
        for query in queries:
            database.similarity_query(query, knn_query(10))
    database.cold()
    with database.measure() as multi:
        answers = database.run_in_blocks(
            queries,
            knn_query(10),
            block_size=len(queries),
            db_indices=indices,
            warm_start=args.access != "scan",
        )
    print(
        f"{args.queries} k-NN queries, one at a time: "
        f"{single.total_seconds:8.3f} modelled seconds"
    )
    print(
        f"{args.queries} k-NN queries, one multiple query: "
        f"{multi.total_seconds:8.3f} modelled seconds "
        f"({single.total_seconds / multi.total_seconds:.1f}x)"
    )
    if database.prefilter is not None:
        prefilter = database.prefilter
        _print_prefilter_stats(prefilter)
        if prefilter.approximate:
            from repro.prefilter import MEASURED_RECALL_METRIC, measure_recall

            database.disable_prefilter()
            database.cold()
            exact = database.run_in_blocks(
                queries,
                knn_query(10),
                block_size=len(queries),
                db_indices=indices,
                warm_start=args.access != "scan",
            )
            recall = measure_recall(exact, answers)
            print(
                f"measured recall at target "
                f"{prefilter.config.recall_target}: {recall:.4f}"
            )
            if observer is not None:
                observer.metrics.set_gauge(MEASURED_RECALL_METRIC, recall)
    _flush_observer(observer, args)
    return 0


def _trace_qtypes(args: argparse.Namespace, n: int) -> list:
    """Query type per trace position: homogeneous k-NN, or mixed.

    With ``--mix``, the trace alternates k-NN and range queries with
    three cycling radii tuned to the demo mixture's cluster scale -- the
    heterogeneous workload the v2 optimizer partitions by sharing.
    """
    from repro import knn_query, range_query

    if not getattr(args, "mix", False):
        return [knn_query(args.k)] * n
    qtypes = []
    for position in range(n):
        if position % 2:
            qtypes.append(knn_query(args.k))
        else:
            qtypes.append(range_query(0.12 * (1 + (position // 2) % 3)))
    return qtypes


def _install_interrupt(args: argparse.Namespace) -> dict:
    """Make SIGINT ask the serve demo loop for a graceful stop.

    The first Ctrl-C sets a flag that :func:`_drive_trace` checks
    between submits: the loop stops early, open sessions are retired by
    the drain, and trace/timeline exports still flush.  A second Ctrl-C
    falls back to the default KeyboardInterrupt.
    """
    import signal

    flag = {"hit": False}
    previous = signal.getsignal(signal.SIGINT)

    def handler(signum, frame):  # pragma: no cover - signal context
        if flag["hit"]:
            signal.signal(signal.SIGINT, previous)
            raise KeyboardInterrupt
        flag["hit"] = True

    signal.signal(signal.SIGINT, handler)
    args._interrupt = flag
    return flag


def _drive_trace(scheduler, dataset, indices, args: argparse.Namespace) -> list:
    """Submit the deterministic round-robin client trace and drain.

    Each simulated client submits its queries in turn, with idle polls
    interleaved so the deadline rule exercises partially filled blocks.
    An interrupt flag (see :func:`_install_interrupt`) stops submission
    between queries; the final drain still completes whatever was
    admitted, so no ticket is ever abandoned half-served.
    """
    interrupt = getattr(args, "_interrupt", None)
    qtypes = _trace_qtypes(args, args.clients * args.queries_per_client)
    tickets = []
    position = 0
    for _round in range(args.queries_per_client):
        for client in range(args.clients):
            if interrupt is not None and interrupt["hit"]:
                scheduler.drain()
                return tickets
            tickets.append(
                scheduler.submit(
                    dataset[indices[position]],
                    qtypes[position],
                    client_id=client,
                )
            )
            position += 1
        scheduler.poll()
    scheduler.drain()
    return tickets


def _cmd_serve(args: argparse.Namespace) -> int:
    """Drive N simulated clients through the dynamic-batching scheduler."""
    from repro import Database, knn_query
    from repro.obs import Observer
    from repro.workloads import make_gaussian_mixture, sample_database_queries

    # Graceful-interrupt flag for the demo loop: installed before the
    # (potentially slow) dataset build so a Ctrl-C anywhere in the run
    # stops at the next submit boundary instead of dying mid-stream.
    # --listen mode manages its own signal handlers on the event loop.
    interrupt = (
        _install_interrupt(args) if not args.listen else {"hit": False}
    )
    dataset = make_gaussian_mixture(
        n=args.objects, dimension=12, n_clusters=30, cluster_std=0.03, seed=0
    )
    observer = _make_observer(args) or Observer(trace=False)
    timeline = _attach_timeline(observer, args)
    database = Database(
        dataset,
        access=args.access,
        engine=args.engine,
        observer=observer,
        prefilter=_prefilter_config(args),
    )
    print("database:", database.summary())
    if args.faults:
        from repro.faults import FaultPlan

        fault_plan = FaultPlan.from_file(args.faults)
        database.inject_faults(fault_plan)
        print(
            f"fault plan: {args.faults} (seed {fault_plan.seed}, "
            f"{len(fault_plan.sites)} site spec(s), "
            f"retry budget {fault_plan.retry.max_retries})"
        )
    planner = None
    if args.optimizer == "v2":
        from repro.core.planner import QueryPlanner

        # Probe a cost surface over the served access method and the
        # batched engine so v2 partitions can pick engines per block.
        planner = QueryPlanner(
            dataset,
            candidates=(args.access,),
            engines=(None, "batched"),
            observer=observer,
        )
        print(
            f"optimizer v2: probed {len(planner.databases)} candidate(s), "
            f"{planner.probes_skipped} skipped"
        )
    scheduler = database.serve(
        block_target=args.block_target,
        max_block=args.max_block,
        max_wait=args.max_wait,
        order=args.order,
        optimizer=args.optimizer,
        planner=planner,
        share_bound=args.share_bound,
    )
    if args.listen:
        return _serve_listen(args, database, scheduler, observer, timeline)
    if args.plan:
        from repro.core.planner import QueryPlanner

        plan_planner = planner if planner is not None else QueryPlanner(
            dataset, candidates=(args.access,)
        )
        plan = plan_planner.plan(
            args.clients * args.queries_per_client,
            knn_query(args.k),
            max_block_size=args.max_block,
        )
        scheduler.replan(plan.fits)
        print(plan.describe())
        print(
            f"scheduler adopted block target {scheduler.block_target}"
            f" (recommended access: {scheduler.recommended_access})"
        )

    indices = sample_database_queries(
        dataset, args.clients * args.queries_per_client, seed=1
    )
    tickets = _drive_trace(scheduler, dataset, indices, args)
    assert all(ticket.done for ticket in tickets)
    if interrupt["hit"]:
        # Graceful SIGINT: the drain above retired every admitted
        # session; flush the exports the run was asked for and exit
        # with the conventional interrupted status.
        print(
            f"interrupted: retired {len(tickets)} admitted queries "
            f"(all drained), flushing exports"
        )
        _flush_timeline(timeline, args)
        _flush_observer(observer, args)
        return 130

    snapshot = observer.metrics.snapshot()
    histograms = snapshot.get("histograms", {})
    occupancy = histograms.get("service.batch_occupancy")
    ttfa = histograms.get("service.time_to_first_answer.seconds")
    latency = histograms.get("service.client_latency.seconds")
    waits = histograms.get("service.wait.ticks")
    print(
        f"served {len(tickets)} queries from {args.clients} clients "
        f"in {occupancy['count'] if occupancy else 0} blocks"
    )
    if occupancy:
        print(
            f"  batch occupancy: mean {occupancy['mean']:.2f}"
            f"  p95 {occupancy['p95']:.0f}  max {occupancy['max']:.0f}"
            f"  (target {scheduler.block_target})"
        )
    if ttfa:
        print(
            f"  time to first answer: mean {ttfa['mean'] * 1e3:.3f} ms"
            f"  p95 {ttfa['p95'] * 1e3:.3f} ms"
        )
    if latency:
        print(
            f"  client latency: mean {latency['mean'] * 1e3:.3f} ms"
            f"  p95 {latency['p95'] * 1e3:.3f} ms"
        )
    if waits:
        print(
            f"  queue wait: mean {waits['mean']:.2f} ticks"
            f"  max {waits['max']:.0f} ticks"
        )
    per_client: dict[int, int] = {}
    for ticket in tickets:
        per_client[ticket.client_id] = per_client.get(ticket.client_id, 0) + 1
    print(f"  per-client completions: {sorted(per_client.values())}")
    if args.optimizer == "v2":
        counts = histograms.get("planner.partition.count")
        sizes = histograms.get("planner.partition.size")
        sharing = snapshot.get("gauges", {}).get(
            "planner.partition.sharing_factor"
        )
        if counts and sizes:
            print(
                f"  v2 partitions: mean {counts['mean']:.2f} per flush, "
                f"partition size mean {sizes['mean']:.2f} "
                f"max {sizes['max']:.0f}"
                + (
                    f", predicted sharing {sharing:.2f}x"
                    if sharing is not None
                    else ""
                )
            )
    if database.prefilter is not None:
        _print_prefilter_stats(database.prefilter)
    exit_code = 0
    if args.faults:
        exit_code = _report_serve_faults(
            args, database, scheduler, dataset, indices, tickets
        )
    if scheduler.audit is not None and scheduler.audit.blocks_audited:
        audit = scheduler.audit.summary()
        drift = audit["calibration_drift"]
        print(
            f"plan audit: {audit['blocks_audited']} blocks, "
            f"calibration drift {drift:.3f}"
            + (" (plan too cheap)" if drift > 1.0 else "")
        )
    if timeline is not None:
        _flush_timeline(timeline, args)
        if scheduler.anomaly_replans:
            print(
                f"anomaly replans: {scheduler.anomaly_replans} "
                f"(block target now {scheduler.block_target})"
            )
    if args.slo:
        exit_code = max(
            exit_code, _evaluate_slo(args.slo, observer.metrics.snapshot(), args)
        )
    _flush_observer(observer, args)
    return exit_code


def _evaluate_slo(spec_path: str, snapshot: dict, args) -> int:
    """Evaluate and render a SLO spec; non-zero exit on any breach."""
    import json

    from repro.obs import evaluate_slos, load_slo_spec, render_slo

    results = evaluate_slos(load_slo_spec(spec_path), snapshot)
    print()
    print(render_slo(results))
    report_path = getattr(args, "slo_report", None)
    if report_path:
        with open(report_path, "w") as handle:
            json.dump(
                [result.summary() for result in results], handle, indent=2
            )
            handle.write("\n")
        print(f"wrote SLO evaluation to {report_path}")
    return 1 if any(result.status == "breach" for result in results) else 0


def _parse_hostport(spec: str, default_host: str = "127.0.0.1") -> tuple[str, int]:
    """Split ``HOST:PORT`` (or bare ``PORT``) into its parts."""
    if ":" in spec:
        host, _, port_text = spec.rpartition(":")
        host = host or default_host
    else:
        host, port_text = default_host, spec
    try:
        port = int(port_text)
    except ValueError:
        raise SystemExit(f"invalid address {spec!r}: port must be an integer")
    return host, port


def _serve_listen(args, database, scheduler, observer, timeline) -> int:
    """``repro serve --listen``: the scheduler behind a real socket.

    Runs the asyncio front-end until SIGINT/SIGTERM, then shuts down
    gracefully -- open sessions drain, every pending ticket is delivered
    (or the client told ``shutdown``), and trace/timeline/SLO exports
    flush before exit.
    """
    import asyncio
    import signal

    from repro.net import QueryServer

    host, port = _parse_hostport(args.listen)

    async def run() -> dict:
        server = QueryServer(
            scheduler,
            host=host,
            port=port,
            max_inflight=args.max_inflight,
            shed_depth=args.shed_depth,
            poll_interval=args.poll_interval,
        )
        bound_host, bound_port = await server.start()
        print(
            f"listening on {bound_host}:{bound_port} "
            f"(access {database.access_method.name}, "
            f"block target {scheduler.block_target}, "
            f"poll interval {args.poll_interval:g}s)",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, server.request_shutdown)
        await server.serve_until_shutdown()
        return server.stats()

    stats = asyncio.run(run())
    print(
        f"served {stats['results']} results "
        f"({stats['degraded_results']} degraded, {stats['sheds']} shed, "
        f"{stats['errors']} protocol errors)"
    )
    exit_code = 0
    if args.slo:
        exit_code = _evaluate_slo(args.slo, observer.metrics.snapshot(), args)
    _flush_timeline(timeline, args)
    _flush_observer(observer, args)
    return exit_code


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Record or replay an open-loop query trace (see docs/service.md)."""
    import asyncio
    import json

    from repro.workloads.loadgen import (
        compare_answers,
        load_trace,
        record_trace,
        replay_in_process,
        replay_over_wire,
        save_trace,
    )

    if args.trace and not (args.record or args.connect or args.in_process):
        print(
            "loadgen: --trace needs --connect or --in-process to replay",
            file=sys.stderr,
        )
        return 2
    if args.record:
        trace = record_trace(
            args.queries,
            rate=args.rate,
            n_clients=args.clients,
            objects=args.objects,
            k=args.k,
            mix=args.mix,
            seed=args.seed,
        )
        n = save_trace(trace, args.record)
        print(
            f"recorded {n} arrivals over {trace.duration:.3f}s "
            f"({args.rate:g} q/s offered, {args.clients} clients, "
            f"{'mixed' if args.mix else 'k-NN'}) to {args.record}"
        )
        return 0
    if args.trace:
        trace = load_trace(args.trace)
        print(
            f"trace {args.trace}: {len(trace)} arrivals over "
            f"{trace.duration:.3f}s "
            f"({trace.meta.get('n_clients')} clients, "
            f"{trace.meta.get('objects')} objects)"
        )
    else:
        trace = record_trace(
            args.queries,
            rate=args.rate,
            n_clients=args.clients,
            objects=args.objects,
            k=args.k,
            mix=args.mix,
            seed=args.seed,
        )
    if args.connect:
        host, port = _parse_hostport(args.connect)
        answers, report = asyncio.run(
            replay_over_wire(
                trace,
                host,
                port,
                speed=args.speed,
                stream=args.stream,
                max_connections=args.connections,
            )
        )
    elif args.in_process:
        answers, report = replay_in_process(
            trace, access=args.access, engine=args.engine
        )
    else:
        print(
            "loadgen: need one of --record, --connect or --in-process",
            file=sys.stderr,
        )
        return 2
    print(report.render())
    exit_code = 0
    if args.expect_degraded and report.degraded == 0:
        print(
            "FAIL: --expect-degraded, but no degraded answer reached "
            "the client"
        )
        exit_code = 1
    if args.verify:
        # Fault-free in-process reference on the same trace: answers the
        # service actually delivered (not shed, not degraded) must be
        # byte-identical to it, network or no network.
        reference, _ = replay_in_process(
            trace, access=args.access, engine=args.engine
        )
        divergent = compare_answers(answers, reference, skip=report.degraded_mask)
        compared = sum(
            1
            for position, got in enumerate(answers)
            if got is not None and not report.degraded_mask[position]
        )
        if divergent:
            print(
                f"FAIL: {len(divergent)}/{compared} delivered answers "
                f"diverge from the in-process reference "
                f"(first at trace position {divergent[0]})"
            )
            exit_code = 1
        else:
            print(
                f"verified: {compared} delivered answers byte-identical "
                f"to the in-process reference "
                f"({report.degraded} degraded skipped, "
                f"{report.shed} shed skipped)"
            )
    if args.bench_out:
        payload = {
            "benchmark": "net",
            "n_objects": int(trace.meta.get("objects", 0)),
            "n_queries": len(trace),
            "offered_rate": report.offered_rate,
            "rows": [{**report.as_dict(), "seconds": report.wall_seconds}],
        }
        with open(args.bench_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote benchmark payload to {args.bench_out}")
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            json.dump(report.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote client-observed metrics snapshot to {args.metrics_out}")
    if args.slo:
        exit_code = max(
            exit_code, _evaluate_slo(args.slo, report.snapshot(), args)
        )
    return exit_code


def _report_serve_faults(
    args: argparse.Namespace, database, scheduler, dataset, indices, tickets
) -> int:
    """Print the fault summary and verify recovered answers are exact.

    Every ticket the scheduler did NOT mark degraded must carry an
    answer byte-identical to the same trace served by a fault-free
    database: recovery (retries, survivor re-dispatch) may cost time
    but never changes results.  Returns 1 on any divergence so chaos
    CI fails loudly.
    """
    from repro import Database

    injector = database.fault_injector
    summary = injector.summary()
    degraded = [ticket for ticket in tickets if ticket.degraded]
    print("fault injection summary:")
    print(f"  injected: {summary['injected_total']} {summary['injected']}")
    print(
        f"  retries: {summary['retries']}"
        f"  redispatches: {summary['redispatches']}"
        f"  ticks: {summary['ticks']}"
    )
    print(
        f"  degraded sessions: {scheduler.degraded_sessions}"
        f"  degraded tickets: {len(degraded)}"
    )
    # The reference run mirrors the prefilter configuration: in exact
    # mode it changes nothing, in approximate mode the deterministic
    # skips must match for answers to be comparable.
    clean_database = Database(
        dataset,
        access=args.access,
        engine=args.engine,
        prefilter=_prefilter_config(args),
    )
    clean_scheduler = clean_database.serve(
        block_target=scheduler.block_target,
        max_block=args.max_block,
        max_wait=args.max_wait,
        order=args.order,
        optimizer=args.optimizer,
        share_bound=args.share_bound,
    )
    clean_tickets = _drive_trace(clean_scheduler, dataset, indices, args)
    mismatches = 0
    for ticket, clean in zip(tickets, clean_tickets):
        if ticket.degraded:
            continue
        if ticket.answers != clean.answers:
            mismatches += 1
    recovered = len(tickets) - len(degraded)
    if mismatches:
        print(
            f"FAIL: {mismatches}/{recovered} recovered tickets diverge "
            f"from the fault-free run"
        )
        return 1
    print(
        f"recovered answers exact: {recovered}/{len(tickets)} tickets "
        f"byte-identical to the fault-free run"
    )
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    """Dry-run the v2 optimizer: partitioning + predicted costs, no serve.

    Builds the demo workload, probes the (query type, access method,
    engine) cost surface, forms the :class:`BatchPlan` and prints it --
    the planning half of ``serve --optimizer v2`` without executing a
    single served query.
    """
    from repro.core.planner import QueryPlanner
    from repro.obs import Observer
    from repro.workloads import make_gaussian_mixture, sample_database_queries

    dataset = make_gaussian_mixture(
        n=args.objects, dimension=12, n_clusters=30, cluster_std=0.03, seed=0
    )
    observer = Observer(trace=True)
    candidates = tuple(args.candidates.split(","))
    engines = tuple(
        None if name in ("auto", "default") else name
        for name in args.engines.split(",")
    )
    planner = QueryPlanner(
        dataset,
        candidates=candidates,
        engines=engines,
        probe_queries=args.probe_queries,
        observer=observer,
    )
    for access, reason in planner.unavailable.items():
        print(f"candidate {access!r} unavailable: {reason}")
    indices = sample_database_queries(dataset, args.queries, seed=1)
    qtypes = _trace_qtypes(args, args.queries)
    objs = [dataset[i] for i in indices]
    plan = planner.plan_batch(
        objs,
        qtypes,
        max_block=args.max_block,
        share_bound=args.share_bound,
    )
    print(plan.describe())
    if planner.probes_skipped:
        print(
            f"probe cells skipped: {planner.probes_skipped} "
            f"(see planner.probe.skipped events)"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import json

    from repro.obs import read_jsonl, render_report

    metrics_path = args.metrics
    if metrics_path and metrics_path.endswith((".jsonl", ".jsonl.gz")):
        # A JSONL positional is a trace, not a metrics snapshot --
        # `repro report trace.jsonl.gz` works the same as `--trace`.
        if args.trace:
            print(
                f"report: both {metrics_path!r} and --trace look like "
                f"traces; pass the metrics JSON as the positional",
                file=sys.stderr,
            )
            return 2
        args.trace, metrics_path = metrics_path, None
    if not metrics_path and not args.trace and not args.timeline:
        print(
            "report: need a metrics file, --trace FILE and/or --timeline FILE",
            file=sys.stderr,
        )
        return 2
    metrics = None
    if metrics_path:
        with open(metrics_path) as handle:
            metrics = json.load(handle)
    trace_records = read_jsonl(args.trace) if args.trace else None
    if metrics is not None or trace_records is not None:
        print(render_report(metrics, trace_records))
    if args.timeline:
        from repro.obs import read_timeline, render_timeline

        if metrics is not None or trace_records is not None:
            print()
        print(render_timeline(read_timeline(args.timeline)))
    if args.slo:
        if metrics is None:
            print("report: --slo needs a metrics file", file=sys.stderr)
            return 2
        return _evaluate_slo(args.slo, metrics, args)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Aggregate a recorded trace into per-phase self time + flamegraph.

    Reads a trace written by ``--trace`` (``.jsonl`` or ``.jsonl.gz``),
    prints the per-phase inclusive/self-time table and writes the
    folded-stack file (load it in speedscope or feed it to
    flamegraph.pl / inferno).
    """
    from repro.obs import profile_trace, read_jsonl, render_profile, write_folded

    result = profile_trace(read_jsonl(args.trace))
    print(render_profile(result, top=args.top))
    out = args.out
    if out is None:
        base = args.trace
        for suffix in (".jsonl.gz", ".jsonl"):
            if base.endswith(suffix):
                base = base[: -len(suffix)]
                break
        out = base + ".folded"
    n = write_folded(result, out)
    print(f"wrote {n} folded stacks to {out}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Live dashboard over a serving episode (curses-free).

    Drives the same deterministic round-robin client trace as ``repro
    serve`` but repaints a dashboard frame after every scheduler round:
    queue depth, occupancy, TTFA quantiles, per-window rate sparklines
    and the anomaly feed.  On a TTY frames repaint in place (ANSI
    clear); otherwise they print sequentially, so piped output stays
    readable.
    """
    import time as _time

    from repro import Database, knn_query
    from repro.obs import Observer, render_dashboard
    from repro.workloads import make_gaussian_mixture, sample_database_queries

    dataset = make_gaussian_mixture(
        n=args.objects, dimension=12, n_clusters=30, cluster_std=0.03, seed=0
    )
    observer = Observer(trace=False)
    timeline = _attach_timeline(observer, args, always=True)
    database = Database(
        dataset, access=args.access, engine=args.engine, observer=observer
    )
    if args.faults:
        from repro.faults import FaultPlan

        database.inject_faults(FaultPlan.from_file(args.faults))
    scheduler = database.serve(
        block_target=args.block_target,
        max_block=args.max_block,
        max_wait=args.max_wait,
    )
    indices = sample_database_queries(
        dataset, args.clients * args.queries_per_client, seed=1
    )
    is_tty = sys.stdout.isatty()

    def repaint() -> None:
        frame = render_dashboard(scheduler, timeline)
        if is_tty:
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
            sys.stdout.flush()
        else:
            print(frame)
            print()
        if args.delay > 0:
            _time.sleep(args.delay)

    position = 0
    for _round in range(args.queries_per_client):
        for client in range(args.clients):
            scheduler.submit(
                dataset[indices[position]], knn_query(args.k), client_id=client
            )
            position += 1
        scheduler.poll()
        repaint()
    scheduler.drain()
    timeline.flush()
    repaint()
    if args.timeline:
        n = timeline.export_jsonl(args.timeline)
        print(f"wrote {n} timeline windows to {args.timeline}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Run a small traced workload and render one query's causal card.

    The default configuration exercises the full distributed path: the
    *process* backend of a two-server :class:`ParallelDatabase`, so the
    rendered card stitches worker-process spans (page evaluations,
    prunes, avoidance outcomes, each tagged with its server) back under
    the coordinator's block span via the propagated trace context.
    """
    import json

    from repro import knn_query
    from repro.obs import Observer, build_cards, read_jsonl, render_card
    from repro.parallel import ParallelDatabase
    from repro.workloads import make_gaussian_mixture, sample_database_queries

    if args.from_trace:
        # Explain a recorded run (e.g. ``repro serve --optimizer v2
        # --trace FILE``): cards then carry the planner.plan partition
        # each query was dispatched under.
        records = read_jsonl(args.from_trace)
    else:
        dataset = make_gaussian_mixture(
            n=args.objects, dimension=12, n_clusters=30, cluster_std=0.03, seed=0
        )
        observer = Observer(trace=True)
        with ParallelDatabase(
            dataset,
            n_servers=args.servers,
            access=args.access,
            observer=observer,
        ) as database:
            indices = sample_database_queries(dataset, args.queries, seed=1)
            queries = [dataset[i] for i in indices]
            database.multiple_similarity_query(
                queries,
                knn_query(args.k),
                db_indices=indices,
                backend=args.backend,
            )
        if args.trace:
            n = observer.write_trace(args.trace)
            print(f"wrote {n} trace entries to {args.trace}", file=sys.stderr)
        records = observer.tracer.records()
    cards = build_cards(records)
    if not cards:
        print("explain: the trace contains no queries", file=sys.stderr)
        return 2
    labels = list(cards)
    if not 0 <= args.query_index < len(labels):
        print(
            f"explain: query index {args.query_index} out of range "
            f"(trace holds {len(labels)} queries: 0..{len(labels) - 1})",
            file=sys.stderr,
        )
        return 2
    card = cards[labels[args.query_index]]
    if args.json:
        print(json.dumps(card.summary(), indent=2))
    else:
        print(render_card(card))
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.costmodel import measure_platform

    timings = measure_platform(args.dimension)
    print(f"platform timings at d={args.dimension} (vectorised, per element):")
    print(f"  distance calculation: {timings.distance_seconds * 1e6:8.4f} us")
    print(f"  comparison:           {timings.comparison_seconds * 1e6:8.4f} us")
    print(f"  ratio:                {timings.ratio:8.0f}x")
    print(
        "(paper, 300 MHz Pentium II / C++: 4.3 us at 20-d, 12.7 us at 64-d, "
        "0.082 us per comparison)"
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.obs import regression

    current: dict[str, dict] = {}
    if args.suite == "quick":
        current.update(
            regression.run_quick_suite(
                n_objects=args.objects, n_queries=args.queries
            )
        )
    for path in args.import_bench:
        current.update(regression.entries_from_bench_file(path))
    if not current:
        print("bench: nothing to run (--suite none and no --import-bench)",
              file=sys.stderr)
        return 2

    if args.update or not os.path.exists(args.baseline):
        regression.save_store(args.baseline, current)
        print(f"wrote {len(current)} baseline entries to {args.baseline}")
        return 0

    baseline = regression.load_store(args.baseline)
    report = regression.compare(
        current,
        baseline,
        seconds_threshold=args.threshold,
        counter_threshold=args.counter_threshold,
    )
    print(regression.render_comparison(report))
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
        print(f"wrote comparison report to {args.report}")
    if args.check and not report.ok:
        return 1
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.run_all import run_all

    config = ExperimentConfig.small() if args.small else ExperimentConfig.default()
    return run_all(config, args.out, metrics_out=args.metrics_out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("info", help="versions and components").set_defaults(
        func=_cmd_info
    )

    demo = subparsers.add_parser("demo", help="single vs. multiple queries demo")
    demo.add_argument("--objects", type=int, default=15_000)
    demo.add_argument("--queries", type=int, default=60)
    demo.add_argument(
        "--access",
        default="xtree",
        choices=["scan", "xtree", "mtree", "rstar", "vafile"],
    )
    from repro.core.engine import engine_names

    demo.add_argument(
        "--engine",
        default="auto",
        choices=["auto", *engine_names()],
        help="page-processing engine (batched = fused cross-distance kernel)",
    )
    demo.add_argument(
        "--prefilter",
        action="store_true",
        help="enable the sketch-based page pre-filter tier (exact: "
        "answers and cost counters stay byte-identical)",
    )
    demo.add_argument(
        "--recall-target",
        type=float,
        default=1.0,
        metavar="R",
        help="opt into the approximate fast mode (0 < R < 1): pages are "
        "skipped before they are read and the measured recall is "
        "reported; requires --prefilter",
    )
    demo.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write spans/events of the run as JSON Lines",
    )
    demo.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the metrics snapshot (sharing factor, avoidance "
        "hit-rate, phase latency histograms) as JSON",
    )
    demo.set_defaults(func=_cmd_demo)

    calibrate = subparsers.add_parser(
        "calibrate", help="measure per-operation timings on this machine"
    )
    calibrate.add_argument("-d", "--dimension", type=int, default=20)
    calibrate.set_defaults(func=_cmd_calibrate)

    experiments = subparsers.add_parser(
        "experiments", help="run the full Sec. 6 evaluation"
    )
    experiments.add_argument("--small", action="store_true")
    experiments.add_argument("--out", default=None)
    experiments.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write a per-sweep metrics sidecar (sharing factor, "
        "avoidance hit-rate per figure sweep point) as JSON",
    )
    experiments.set_defaults(func=_cmd_experiments)

    serve = subparsers.add_parser(
        "serve",
        help="dynamic-batching query-service demo with simulated clients",
    )
    serve.add_argument("--objects", type=int, default=15_000)
    serve.add_argument("--clients", type=int, default=8)
    serve.add_argument("--queries-per-client", type=int, default=6)
    serve.add_argument("-k", type=int, default=10, help="neighbours per query")
    serve.add_argument(
        "--access",
        default="xtree",
        choices=["scan", "xtree", "mtree", "rstar", "vafile"],
    )
    serve.add_argument(
        "--engine",
        default="auto",
        choices=["auto", *engine_names()],
    )
    serve.add_argument("--block-target", type=int, default=8)
    serve.add_argument("--max-block", type=int, default=32)
    serve.add_argument(
        "--max-wait",
        type=int,
        default=16,
        help="deadline in logical ticks before a partial block flushes",
    )
    serve.add_argument(
        "--order",
        default="fifo",
        choices=["fifo", "affinity"],
        help="block ordering behind the FIFO driver",
    )
    serve.add_argument(
        "--plan",
        action="store_true",
        help="probe a planner cost fit first and adopt its knee-point "
        "block target",
    )
    serve.add_argument(
        "--optimizer",
        default="v1",
        choices=["v1", "v2"],
        help="v1: one knee-point block target; v2: partition each batch "
        "by predicted sharing and dispatch each partition under its own "
        "plan (per-partition engine and access method)",
    )
    serve.add_argument(
        "--share-bound",
        type=float,
        default=None,
        metavar="D",
        help="v2 partition cut distance (default: derived per batch; "
        "'inf' forces one partition, the v1-identical case)",
    )
    serve.add_argument(
        "--mix",
        action="store_true",
        help="serve a heterogeneous trace (alternating k-NN and range "
        "queries with cycling radii) instead of pure k-NN",
    )
    serve.add_argument(
        "--prefilter",
        action="store_true",
        help="enable the sketch-based page pre-filter tier for all "
        "served blocks (exact unless --recall-target < 1)",
    )
    serve.add_argument(
        "--recall-target",
        type=float,
        default=1.0,
        metavar="R",
        help="approximate fast mode (0 < R < 1); requires --prefilter",
    )
    serve.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="inject faults from a JSON plan (see docs/robustness.md); "
        "recovered answers are verified against a fault-free run and "
        "a non-zero exit reports any divergence",
    )
    serve.add_argument("--trace", default=None, metavar="FILE")
    serve.add_argument("--metrics-out", default=None, metavar="FILE")
    serve.add_argument(
        "--timeline",
        default=None,
        metavar="FILE",
        help="write windowed time-series telemetry as JSONL ('.gz' for "
        "gzip); deterministic for a seeded workload",
    )
    serve.add_argument(
        "--timeline-window",
        type=int,
        default=4,
        metavar="N",
        help="logical ticks per timeline window (default 4)",
    )
    serve.add_argument(
        "--anomaly",
        default=None,
        metavar="SPEC",
        help="evaluate anomaly rules from a spec file (JSON or the YAML "
        "subset) against every timeline window; replan-flagged firings "
        "halve the scheduler's block target",
    )
    serve.add_argument(
        "--slo",
        default=None,
        metavar="SPEC",
        help="evaluate service-level objectives from a spec file "
        "(JSON or the YAML subset, see docs/observability.md); "
        "exits non-zero on any breached objective",
    )
    serve.add_argument(
        "--slo-report",
        default=None,
        metavar="FILE",
        help="write the SLO evaluation results as JSON (CI artifact)",
    )
    serve.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="serve the scheduler over a socket (length-prefixed JSON "
        "protocol, see docs/service.md) instead of the simulated demo "
        "trace; port 0 picks a free port; SIGINT/SIGTERM drain and "
        "shut down gracefully",
    )
    serve.add_argument(
        "--poll-interval",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="wall-clock interval of idle scheduler polls in --listen "
        "mode (the deadline clock); 0 disables the pump so scheduling "
        "is purely request-driven and reproduces the in-process flush "
        "grouping exactly",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        metavar="N",
        help="per-connection bound on unanswered submits before the "
        "server sheds (--listen mode)",
    )
    serve.add_argument(
        "--shed-depth",
        type=int,
        default=None,
        metavar="N",
        help="global admission bound: shed new submits once the "
        "scheduler queue holds this many tickets (--listen mode; "
        "default: the scheduler's own max-queue pressure bound)",
    )
    serve.set_defaults(func=_cmd_serve)

    loadgen = subparsers.add_parser(
        "loadgen",
        help="record or replay an open-loop query trace against the "
        "service (in-process or over a socket)",
    )
    loadgen.add_argument(
        "--record",
        default=None,
        metavar="FILE",
        help="record a seeded open-loop arrival trace to FILE (JSONL) "
        "and exit",
    )
    loadgen.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="replay this recorded trace instead of generating one",
    )
    loadgen.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="replay over the wire against a 'repro serve --listen' "
        "server",
    )
    loadgen.add_argument(
        "--in-process",
        action="store_true",
        help="replay through an in-process scheduler (the reference "
        "path; builds the trace's dataset locally)",
    )
    loadgen.add_argument(
        "--rate",
        type=float,
        default=500.0,
        help="offered arrival rate in queries/second when generating "
        "a trace (seeded Poisson arrivals)",
    )
    loadgen.add_argument(
        "--queries", type=int, default=200, help="arrivals to generate"
    )
    loadgen.add_argument("--clients", type=int, default=8)
    loadgen.add_argument("--objects", type=int, default=15_000)
    loadgen.add_argument("-k", type=int, default=10)
    loadgen.add_argument(
        "--mix",
        action="store_true",
        help="heterogeneous trace (alternating k-NN and range queries) "
        "instead of pure k-NN",
    )
    loadgen.add_argument("--seed", type=int, default=1)
    loadgen.add_argument(
        "--speed",
        type=float,
        default=0.0,
        help="replay clock multiplier over the recorded offsets "
        "(1.0 = real time, 2.0 = twice as fast; 0 = no pacing, "
        "submit as fast as the sockets accept)",
    )
    loadgen.add_argument(
        "--stream",
        action="store_true",
        help="request per-answer streaming frames (enables TTFA "
        "reporting; degraded partial answers stream the same way)",
    )
    loadgen.add_argument(
        "--connections",
        type=int,
        default=8,
        metavar="N",
        help="socket connections to spread the trace's clients over",
    )
    loadgen.add_argument(
        "--access",
        default="xtree",
        choices=["scan", "xtree", "mtree", "rstar", "vafile"],
        help="access method of the in-process replay / verify reference",
    )
    loadgen.add_argument(
        "--engine",
        default="auto",
        choices=["auto", *engine_names()],
    )
    loadgen.add_argument(
        "--verify",
        action="store_true",
        help="also replay in process on a fault-free database and "
        "require every delivered non-degraded answer to be "
        "byte-identical; non-zero exit on divergence",
    )
    loadgen.add_argument(
        "--expect-degraded",
        action="store_true",
        help="fail unless at least one degraded (Def. 4 partial) "
        "answer reached the client (chaos CI assertion)",
    )
    loadgen.add_argument(
        "--bench-out",
        default=None,
        metavar="FILE",
        help="write the replay as a BENCH_net.json payload for "
        "'repro bench --import-bench'",
    )
    loadgen.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the client-observed metrics snapshot as JSON",
    )
    loadgen.add_argument(
        "--slo",
        default=None,
        metavar="SPEC",
        help="evaluate service-level objectives against the "
        "client-observed snapshot; non-zero exit on any breach",
    )
    loadgen.add_argument(
        "--slo-report",
        default=None,
        metavar="FILE",
        help="write the SLO evaluation results as JSON (CI artifact)",
    )
    loadgen.set_defaults(func=_cmd_loadgen)

    plan = subparsers.add_parser(
        "plan",
        help="dry-run the v2 optimizer: print batch partitioning and "
        "predicted costs without serving",
    )
    plan.add_argument("--objects", type=int, default=15_000)
    plan.add_argument(
        "--queries", type=int, default=32, help="batch size to plan for"
    )
    plan.add_argument("-k", type=int, default=10, help="neighbours per k-NN query")
    plan.add_argument(
        "--candidates",
        default="scan,xtree",
        metavar="A,B,...",
        help="comma-separated candidate access methods",
    )
    plan.add_argument(
        "--engines",
        default="auto,batched",
        metavar="E,F,...",
        help="comma-separated candidate engines ('auto' = the database "
        "default)",
    )
    plan.add_argument("--max-block", type=int, default=32)
    plan.add_argument(
        "--share-bound",
        type=float,
        default=None,
        metavar="D",
        help="partition cut distance (default: derived from the batch)",
    )
    plan.add_argument("--probe-queries", type=int, default=8)
    plan.add_argument(
        "--mix",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="plan a mixed k-NN + range batch (default) or pure k-NN "
        "(--no-mix)",
    )
    plan.set_defaults(func=_cmd_plan)

    report = subparsers.add_parser(
        "report", help="pretty-print a metrics snapshot and/or trace"
    )
    report.add_argument(
        "metrics", nargs="?", default=None, help="metrics JSON (from --metrics-out)"
    )
    report.add_argument(
        "--trace", default=None, metavar="FILE", help="trace JSONL (from --trace)"
    )
    report.add_argument(
        "--timeline",
        default=None,
        metavar="FILE",
        help="also render a windowed timeline JSONL file "
        "(from serve --timeline; '.gz' accepted)",
    )
    report.add_argument(
        "--slo",
        default=None,
        metavar="SPEC",
        help="also evaluate service-level objectives against the "
        "metrics snapshot; exits non-zero on any breach",
    )
    report.add_argument(
        "--slo-report",
        default=None,
        metavar="FILE",
        help="write the SLO evaluation results as JSON",
    )
    report.set_defaults(func=_cmd_report)

    explain = subparsers.add_parser(
        "explain",
        help="run a small traced workload and print one query's causal "
        "provenance card",
    )
    explain.add_argument(
        "query_index",
        type=int,
        help="which query to explain, in admission order (0-based)",
    )
    explain.add_argument("--objects", type=int, default=4000)
    explain.add_argument("--queries", type=int, default=8)
    explain.add_argument("-k", type=int, default=10, help="neighbours per query")
    explain.add_argument(
        "--servers", type=int, default=2, help="simulated servers"
    )
    explain.add_argument(
        "--backend",
        default="process",
        choices=["process", "model"],
        help="parallel backend; 'process' demonstrates cross-process "
        "trace stitching (the default)",
    )
    explain.add_argument(
        "--access",
        default="xtree",
        choices=["scan", "xtree", "mtree", "rstar", "vafile"],
    )
    explain.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="also write the merged trace as JSON Lines ('.gz' for gzip)",
    )
    explain.add_argument(
        "--from-trace",
        default=None,
        metavar="FILE",
        help="explain a recorded trace (e.g. from 'repro serve --trace') "
        "instead of running a workload; serve traces carry the "
        "optimizer-v2 plan per query",
    )
    explain.add_argument(
        "--json",
        action="store_true",
        help="print the card as JSON instead of the rendered text",
    )
    explain.set_defaults(func=_cmd_explain)

    profile = subparsers.add_parser(
        "profile",
        help="per-phase self-time profile + folded-stack (flamegraph) "
        "export from a recorded trace",
    )
    profile.add_argument(
        "trace", help="trace JSONL from --trace ('.jsonl' or '.jsonl.gz')"
    )
    profile.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="folded-stack output path (default: trace path with a "
        "'.folded' suffix); open in speedscope or flamegraph.pl",
    )
    profile.add_argument(
        "--top",
        type=int,
        default=20,
        metavar="N",
        help="phases to show in the table (default 20)",
    )
    profile.set_defaults(func=_cmd_profile)

    top = subparsers.add_parser(
        "top",
        help="live terminal dashboard over a serving episode "
        "(queue depth, TTFA, rate sparklines, anomaly feed)",
    )
    top.add_argument("--objects", type=int, default=15_000)
    top.add_argument("--clients", type=int, default=8)
    top.add_argument("--queries-per-client", type=int, default=6)
    top.add_argument("-k", type=int, default=10, help="neighbours per query")
    top.add_argument(
        "--access",
        default="xtree",
        choices=["scan", "xtree", "mtree", "rstar", "vafile"],
    )
    top.add_argument(
        "--engine",
        default="auto",
        choices=["auto", *engine_names()],
    )
    top.add_argument("--block-target", type=int, default=8)
    top.add_argument("--max-block", type=int, default=32)
    top.add_argument("--max-wait", type=int, default=16)
    top.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="inject faults from a JSON plan while watching the dashboard",
    )
    top.add_argument(
        "--anomaly",
        default=None,
        metavar="SPEC",
        help="evaluate anomaly rules per window; firings land in the feed",
    )
    top.add_argument(
        "--timeline",
        default=None,
        metavar="FILE",
        help="also export the timeline windows as JSONL on exit",
    )
    top.add_argument(
        "--timeline-window",
        type=int,
        default=2,
        metavar="N",
        help="logical ticks per timeline window (default 2 for a "
        "lively display)",
    )
    top.add_argument(
        "--delay",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="pause between frames (watchable pacing on a TTY)",
    )
    top.set_defaults(func=_cmd_top)

    bench = subparsers.add_parser(
        "bench", help="run benchmark suites and compare against baselines"
    )
    bench.add_argument(
        "--suite",
        default="quick",
        choices=["quick", "none"],
        help="benchmark suite to run ('none' with --import-bench only "
        "converts existing BENCH_*.json results)",
    )
    bench.add_argument(
        "--baseline",
        default="benchmarks/baselines.json",
        metavar="FILE",
        help="baseline store to compare against (created if absent)",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when any benchmark regresses",
    )
    bench.add_argument(
        "--update",
        action="store_true",
        help="overwrite the baseline store with this run's results",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=0.5,
        help="relative wall-clock slowdown tolerated (0.5 = 50%%)",
    )
    bench.add_argument(
        "--counter-threshold",
        type=float,
        default=0.0,
        help="relative increase tolerated for deterministic cost counters",
    )
    bench.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write the structured comparison report as JSON",
    )
    bench.add_argument(
        "--import-bench",
        action="append",
        default=[],
        metavar="FILE",
        help="also fold a BENCH_*.json result file into this run "
        "(repeatable)",
    )
    bench.add_argument("--objects", type=int, default=2000)
    bench.add_argument("--queries", type=int, default=24)
    bench.set_defaults(func=_cmd_bench)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
