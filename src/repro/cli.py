"""Command-line interface.

::

    python -m repro info                 # versions and components
    python -m repro demo                 # 60-second single-vs-multiple demo
    python -m repro calibrate [-d DIM]   # time dist/comparison on this machine
    python -m repro experiments [...]    # full evaluation (run_all)
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_info(args: argparse.Namespace) -> int:
    import repro
    from repro.core.database import _ACCESS_METHODS
    from repro.metric.distances import _REGISTRY

    print(f"repro {repro.__version__}")
    print(
        "reproduction of: Braunmüller, Ester, Kriegel, Sander --\n"
        "  'Efficiently Supporting Multiple Similarity Queries for Mining in\n"
        "  Metric Databases' (ICDE 2000)"
    )
    print(f"access methods: {', '.join(sorted(_ACCESS_METHODS))}")
    print(f"distance functions: {', '.join(sorted(_REGISTRY))}")
    print("engines: reference, vectorized, batched")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import Database, knn_query
    from repro.workloads import make_gaussian_mixture, sample_database_queries

    dataset = make_gaussian_mixture(
        n=args.objects, dimension=12, n_clusters=30, cluster_std=0.03, seed=0
    )
    database = Database(dataset, access=args.access, engine=args.engine)
    print("database:", database.summary())
    indices = sample_database_queries(dataset, args.queries, seed=1)
    queries = [dataset[i] for i in indices]
    with database.measure() as single:
        for query in queries:
            database.similarity_query(query, knn_query(10))
    database.cold()
    with database.measure() as multi:
        database.run_in_blocks(
            queries,
            knn_query(10),
            block_size=len(queries),
            db_indices=indices,
            warm_start=args.access != "scan",
        )
    print(
        f"{args.queries} k-NN queries, one at a time: "
        f"{single.total_seconds:8.3f} modelled seconds"
    )
    print(
        f"{args.queries} k-NN queries, one multiple query: "
        f"{multi.total_seconds:8.3f} modelled seconds "
        f"({single.total_seconds / multi.total_seconds:.1f}x)"
    )
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.costmodel import measure_platform

    timings = measure_platform(args.dimension)
    print(f"platform timings at d={args.dimension} (vectorised, per element):")
    print(f"  distance calculation: {timings.distance_seconds * 1e6:8.4f} us")
    print(f"  comparison:           {timings.comparison_seconds * 1e6:8.4f} us")
    print(f"  ratio:                {timings.ratio:8.0f}x")
    print(
        "(paper, 300 MHz Pentium II / C++: 4.3 us at 20-d, 12.7 us at 64-d, "
        "0.082 us per comparison)"
    )
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.run_all import run_all

    config = ExperimentConfig.small() if args.small else ExperimentConfig.default()
    return run_all(config, args.out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("info", help="versions and components").set_defaults(
        func=_cmd_info
    )

    demo = subparsers.add_parser("demo", help="single vs. multiple queries demo")
    demo.add_argument("--objects", type=int, default=15_000)
    demo.add_argument("--queries", type=int, default=60)
    demo.add_argument("--access", default="xtree", choices=["scan", "xtree", "vafile"])
    demo.add_argument(
        "--engine",
        default="auto",
        choices=["auto", "reference", "vectorized", "batched"],
        help="page-processing engine (batched = fused cross-distance kernel)",
    )
    demo.set_defaults(func=_cmd_demo)

    calibrate = subparsers.add_parser(
        "calibrate", help="measure per-operation timings on this machine"
    )
    calibrate.add_argument("-d", "--dimension", type=int, default=20)
    calibrate.set_defaults(func=_cmd_calibrate)

    experiments = subparsers.add_parser(
        "experiments", help="run the full Sec. 6 evaluation"
    )
    experiments.add_argument("--small", action="store_true")
    experiments.add_argument("--out", default=None)
    experiments.set_defaults(func=_cmd_experiments)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
