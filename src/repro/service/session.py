"""Streaming query sessions: the Def. 4 answer buffer as a public API.

Definition 4 of the paper gives the multiple similarity query
*incremental* semantics: one call must complete only the first query
(the "driver"); every other query accumulates partial answers in a
buffer that later calls restore from.  :class:`QuerySession` turns that
buffer into a first-class handle instead of an internal of
:class:`~repro.core.multi_query.MultiQueryProcessor`:

* :meth:`QuerySession.submit` admits a query into the buffer,
  :meth:`QuerySession.partial_answers` reads its accumulated partial
  answers, :meth:`QuerySession.retire` recycles its slot;
* :meth:`QuerySession.stream` is the generator face of one multiple
  similarity query: it completes the driver while *yielding its answers
  incrementally* -- an :class:`AnswerEvent` the moment index traversal
  proves an answer final, then one :class:`QueryCompleted`.  Page
  streams deliver candidate pages in non-decreasing order of a lower
  bound on the driver distance (the contract of
  :class:`~repro.index.base.PageStream`), so any current answer
  strictly below the next page's bound can never be displaced or
  preceded: the emitted prefix is stable and the concatenation of all
  events is byte-identical to the batch answer list;
* :meth:`QuerySession.ask` / :meth:`QuerySession.run` are the drained
  (batch) forms, equivalent to ``MultiQueryProcessor.process`` /
  ``query_all`` answer for answer and counter for counter.

Every execution path of the repository -- the five mining drivers,
:func:`run_in_blocks`, the shared-nothing parallel executor and the
:class:`~repro.service.scheduler.QueryScheduler` -- sits on this one
API.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Hashable, Iterator, Sequence

from repro.core.answers import Answer
from repro.core.multi_query import (
    MultiQueryProcessor,
    default_query_key,
    query_label,
)
from repro.core.types import QueryType
from repro.faults.errors import FaultError
from repro.obs.observer import maybe_phase

#: Metric name of the time-to-first-answer histogram (seconds from the
#: start of a streamed drive to its first confirmed answer).
TTFA_METRIC = "service.time_to_first_answer.seconds"


@dataclass(frozen=True)
class AnswerEvent:
    """One confirmed answer of the driving query, streamed incrementally.

    Attributes
    ----------
    key:
        Buffer key of the driving query.
    answer:
        The confirmed answer; events arrive in final answer-list order.
    rank:
        Position of the answer in the final answer list (0-based).
    pages_processed:
        Driver pages processed when the answer was confirmed.
    early:
        ``True`` when the answer was confirmed *before* the driver's
        page stream was exhausted (only possible on distance-ranked
        streams, i.e. non-sequential access methods).
    """

    key: Hashable
    answer: Answer
    rank: int
    pages_processed: int
    early: bool


@dataclass(frozen=True)
class QueryCompleted:
    """Terminal event of one streamed drive: the complete answer list."""

    key: Hashable
    answers: tuple[Answer, ...]
    pages_processed: int


@dataclass(frozen=True)
class DegradedAnswerEvent:
    """Best-effort answer of one query after recovery was exhausted.

    When an unrecoverable fault aborts a streamed drive, the session
    degrades instead of raising: one event per buffered query of the
    batch, carrying the Def. 4 partial-answer buffer contents and a
    completeness bound.  The partial answers are exactly what repeated
    calls would have restored from the buffer -- a sound *prefix
    candidate set*, not a guess.

    Attributes
    ----------
    key:
        Buffer key of the query.
    answers:
        The buffered (partial) answers at the moment of degradation.
    confirmed:
        How many leading answers were already proven final before the
        fault (the streamed prefix of the driving query; 0 for the
        other queries of the batch).
    pages_processed:
        Data pages this query had actually processed (pages dropped
        unread by the approximate pre-filter are *not* counted -- they
        were never evaluated).
    total_pages:
        Data pages of the query's candidate set: all data pages of the
        access method, minus any the approximate pre-filter removed for
        this query.  Without a pre-filter (or in its exact mode, whose
        replayed pages count as processed -- they are provably
        answer-free) this is simply the total page count.
    completeness:
        ``pages_processed / total_pages`` -- the fraction of the
        *post-filter candidate set* provably reflected in ``answers``
        (1.0 when the query had already completed).
    reason:
        Human-readable description of the unrecovered fault.
    """

    key: Hashable
    answers: tuple[Answer, ...]
    confirmed: int
    pages_processed: int
    total_pages: int
    completeness: float
    reason: str


class QuerySession:
    """Streaming multiple-similarity-query handle over one database.

    Parameters mirror :meth:`repro.core.database.Database.processor`;
    the session owns a private :class:`MultiQueryProcessor` (one answer
    buffer, one query-distance matrix) whose lifetime is the session's.

    >>> # session = database.session()
    >>> # for event in session.stream(objs, knn_query(10)):
    >>> #     ...  # AnswerEvents arrive before the block completes
    """

    def __init__(
        self,
        database: Any,
        engine: str | None = None,
        use_avoidance: bool = True,
        max_pivots: int | None = None,
        seed_from_queries: bool = False,
        warm_start: bool = False,
        matrix_mode: str = "eager",
        observer: Any = None,
        prefilter: Any = None,
        access: str | None = None,
    ):
        kwargs = {} if max_pivots is None else {"max_pivots": max_pivots}
        self.database = database
        self.processor = MultiQueryProcessor(
            database,
            engine=engine,
            use_avoidance=use_avoidance,
            seed_from_queries=seed_from_queries,
            warm_start=warm_start,
            matrix_mode=matrix_mode,
            observer=observer,
            prefilter=prefilter,
            access=access,
            **kwargs,
        )
        self.observer = self.processor.observer

    @property
    def prefilter_stats(self) -> dict[str, float] | None:
        """Snapshot of the page pre-filter accounting, if one is active.

        The stats object is shared across every processor of the same
        :class:`~repro.prefilter.PagePrefilter`; the snapshot is taken
        at call time.
        """
        prefilter = self.processor.prefilter
        if prefilter is None:
            return None
        return prefilter.stats.snapshot()

    # ------------------------------------------------------------------
    # The Def. 4 partial-answer buffer, first class
    # ------------------------------------------------------------------

    @property
    def pending(self) -> list[Hashable]:
        """Keys of the currently buffered queries, complete or not."""
        return [p.key for p in self.processor.pending_queries]

    def submit(
        self,
        obj: Any,
        qtype: QueryType,
        key: Hashable | None = None,
        db_index: int | None = None,
    ) -> Hashable:
        """Admit one query into the session buffer; returns its key.

        Submitting a key that is already buffered restores the existing
        entry (and its partial answers) instead of registering a new
        query, exactly as Def. 4 prescribes for repeated calls.
        """
        if key is None:
            key = default_query_key(obj, qtype)
        self.processor.admit(obj, qtype, key=key, db_index=db_index)
        return key

    def partial_answers(self, key: Hashable) -> list[Answer]:
        """Current buffered (partial or complete) answers of one query."""
        pending = self._lookup(key)
        return pending.answers.materialize()

    def is_complete(self, key: Hashable) -> bool:
        """Whether the buffered query has its complete answer set."""
        return self._lookup(key).complete

    def radius(self, key: Hashable) -> float:
        """Current query distance of a buffered query."""
        return self._lookup(key).radius

    def bound_radius(self, key: Hashable, bound: float) -> None:
        """Install an upper bound on a query's final query distance.

        Sound only when ``bound`` provably dominates the true k-NN
        distance (e.g. a candidate distance from another server's
        partition); it tightens page relevance and avoidance but never
        changes answers.
        """
        pending = self._lookup(key)
        if bound < pending.radius_hint:
            pending.radius_hint = float(bound)

    def seed_radius_hints(self, keys: Sequence[Hashable] | None = None) -> None:
        """Seed k-NN radius bounds from the query-distance matrix."""
        pendings = (
            self.processor.pending_queries
            if keys is None
            else [self._lookup(key) for key in keys]
        )
        self.processor.seed_radius_hints(pendings)

    def warm_up(self, keys: Sequence[Hashable] | None = None) -> None:
        """Process each query's best page to tighten its radius."""
        pendings = (
            self.processor.pending_queries
            if keys is None
            else [self._lookup(key) for key in keys]
        )
        self.processor.warm_up(pendings)

    def retire(self, key: Hashable) -> None:
        """Drop one buffered query and recycle its matrix slot."""
        self.processor.retire(key)

    def close(self) -> None:
        """Drop the whole buffer (end the session)."""
        self.processor.clear()

    def _lookup(self, key: Hashable) -> Any:
        pending = self.processor.lookup(key)
        if pending is None:
            raise KeyError(f"no query buffered under key {key!r}")
        return pending

    # ------------------------------------------------------------------
    # Execution: streamed and drained forms of Fig. 4
    # ------------------------------------------------------------------

    def stream(
        self,
        query_objs: Sequence[Any],
        qtypes: Sequence[QueryType] | QueryType,
        keys: Sequence[Hashable] | None = None,
        db_indices: Sequence[int | None] | None = None,
    ) -> Iterator[AnswerEvent | QueryCompleted]:
        """One multiple similarity query, streamed (Def. 4).

        Admits the batch, completes the first query and yields its
        answers incrementally; the other queries accumulate partial
        answers in the session buffer.  The event sequence ends with one
        :class:`QueryCompleted` whose ``answers`` equal the batch path's
        return value exactly.

        Unlike :meth:`ask`, an unrecoverable injected fault does not
        raise here: the stream degrades, ending with one
        :class:`DegradedAnswerEvent` per buffered query instead of
        :class:`QueryCompleted`.
        """
        try:
            driver, others = self.processor.prepare(
                query_objs, qtypes, keys, db_indices
            )
        except FaultError as fault:
            qtypes_list = MultiQueryProcessor._broadcast_types(
                qtypes, len(query_objs)
            )
            if keys is None:
                batch_keys: list[Hashable] = [
                    default_query_key(obj, qtype)
                    for obj, qtype in zip(query_objs, qtypes_list)
                ]
            else:
                batch_keys = list(keys)
            return self._degraded_events(
                list(dict.fromkeys(batch_keys)), 0, fault
            )
        return self._stream_drive(driver, others)

    def _stream_drive(
        self, driver: Any, others: Sequence[Any]
    ) -> Iterator[AnswerEvent | QueryCompleted]:
        processor = self.processor
        observer = self.observer
        # Sequential access methods stream pages in physical order, not
        # distance order, so no answer is provably final before the
        # stream ends; confirmation then degrades to one flush at
        # completion.
        ranked = not processor.access.sequential_data_access
        emitted = 0
        pages = 0
        started = time.perf_counter()
        key = driver.key
        if not driver.complete:
            try:
                with maybe_phase(
                    observer,
                    "query.drive",
                    slot=driver.slot,
                    others=len(others),
                    query=query_label(key),
                ):
                    for lower_bound in processor.drive_pages(driver, others):
                        # The page about to be processed -- and every
                        # later one -- holds only objects at distance >=
                        # its lower bound, so current answers strictly
                        # below it are final and already in final list
                        # order.
                        if ranked and len(driver.answers):
                            current = driver.answers.materialize()
                            while emitted < len(current):
                                answer = current[emitted]
                                if not answer.distance < lower_bound:
                                    break
                                if emitted == 0 and observer is not None:
                                    self._first_answer(
                                        observer, started, pages, key, early=True
                                    )
                                yield AnswerEvent(
                                    key, answer, emitted, pages, True
                                )
                                emitted += 1
                        pages += 1
            except FaultError as fault:
                yield from self._degraded_events(
                    [key, *(other.key for other in others)], emitted, fault
                )
                return
        final = driver.answers.materialize()
        if emitted == 0 and final and observer is not None:
            self._first_answer(observer, started, pages, key, early=False)
        for rank in range(emitted, len(final)):
            yield AnswerEvent(key, final[rank], rank, pages, False)
        yield QueryCompleted(key, tuple(final), pages)

    @staticmethod
    def _first_answer(
        observer: Any, started: float, pages: int, key: Hashable, early: bool
    ) -> None:
        seconds = time.perf_counter() - started
        observer.metrics.observe(TTFA_METRIC, seconds)
        observer.event(
            "session.first_answer",
            pages=pages,
            early=early,
            seconds=seconds,
            query=query_label(key),
        )

    def _degraded_events(
        self, keys: Sequence[Hashable], confirmed_driver: int, fault: FaultError
    ) -> Iterator[DegradedAnswerEvent]:
        """One :class:`DegradedAnswerEvent` per batch query, driver first."""
        observer = self.observer
        reason = f"{type(fault).__name__}: {fault}"
        if observer is not None:
            observer.event(
                "session.degraded",
                fault=type(fault).__name__,
                site=fault.site,
                queries=len(keys),
            )
        for position, key in enumerate(keys):
            confirmed = confirmed_driver if position == 0 else 0
            yield self._degraded_event(key, confirmed, reason)

    def _degraded_event(
        self, key: Hashable, confirmed: int, reason: str
    ) -> DegradedAnswerEvent:
        total = self.processor.n_data_pages
        pending = self.processor.lookup(key)
        if pending is None:
            return DegradedAnswerEvent(key, (), 0, 0, total, 0.0, reason)
        # The completeness bound is over the post-filter candidate set:
        # pages the approximate pre-filter dropped unread were never
        # evaluated (they neither support the answers nor remain owed),
        # so they leave both the numerator and the denominator.
        pages = len(pending.processed_pages) - pending.approx_pruned
        total -= pending.approx_pruned
        if pending.complete:
            completeness = 1.0
        elif total > 0:
            completeness = min(1.0, pages / total)
        else:
            completeness = 0.0
        return DegradedAnswerEvent(
            key,
            tuple(pending.answers.materialize()),
            confirmed,
            pages,
            total,
            completeness,
            reason,
        )

    def ask(
        self,
        query_objs: Sequence[Any],
        qtypes: Sequence[QueryType] | QueryType,
        keys: Sequence[Hashable] | None = None,
        db_indices: Sequence[int | None] | None = None,
    ) -> list[Answer]:
        """One multiple similarity query, drained: the driver's answers.

        The batch form of :meth:`stream` -- ``MultiQueryProcessor.process``
        exactly, answer for answer and counter for counter.  It skips the
        per-page confirmation bookkeeping entirely, so callers that only
        want the final list pay nothing for the streaming capability.
        """
        return self.processor.process(query_objs, qtypes, keys, db_indices)

    def run(
        self,
        query_objs: Sequence[Any],
        qtypes: Sequence[QueryType] | QueryType,
        keys: Sequence[Hashable] | None = None,
        retire: bool = True,
        db_indices: Sequence[int | None] | None = None,
    ) -> list[list[Answer]]:
        """Answer every query of a batch completely (Sec. 5.1).

        The repeated-call pattern over the session buffer: one
        :meth:`ask` per query, each restoring the partial answers the
        previous calls accumulated.  ``MultiQueryProcessor.query_all``
        exactly.
        """
        return self.processor.query_all(
            query_objs, qtypes, keys, retire=retire, db_indices=db_indices
        )


def run_in_blocks(
    database: Any,
    query_objs: Sequence[Any],
    qtypes: Sequence[QueryType] | QueryType,
    block_size: int,
    engine: str | None = None,
    use_avoidance: bool = True,
    max_pivots: int | None = None,
    db_indices: Sequence[int | None] | None = None,
    warm_start: bool = False,
) -> list[list[Answer]]:
    """Process ``M`` queries in consecutive blocks of ``block_size``.

    The canonical block runner (Sec. 5 evaluation setup): each block is
    one fresh :class:`QuerySession` drained to completion, so memory
    stays bounded by the block while the disk's LRU buffer persists
    across blocks like a DBMS buffer would.  Re-exported as
    :func:`repro.core.multi_query.run_in_blocks`.
    """
    if block_size < 1:
        raise ValueError("block size must be positive")
    qtypes_list = MultiQueryProcessor._broadcast_types(qtypes, len(query_objs))
    if len(qtypes_list) != len(query_objs):
        raise ValueError("need one query type per query object")
    observer = getattr(database, "observer", None)
    injector = getattr(database, "fault_injector", None)
    timeline = observer.timeline if observer is not None else None
    results: list[list[Answer]] = []
    for block_index, start in enumerate(range(0, len(query_objs), block_size)):
        if injector is not None:
            injector.begin_block()
        if timeline is not None:
            timeline_base = database.counters.copy()
        session = QuerySession(
            database,
            engine=engine,
            use_avoidance=use_avoidance,
            max_pivots=max_pivots,
            seed_from_queries=db_indices is not None,
            warm_start=warm_start,
        )
        block_objs = query_objs[start : start + block_size]
        block_types = qtypes_list[start : start + block_size]
        block_indices = (
            db_indices[start : start + block_size] if db_indices is not None else None
        )
        # One ``block.flush`` span per completed block: the moment the
        # buffered partial answers of Fig. 4 are fully drained.
        with maybe_phase(
            observer, "block.flush", block=block_index, size=len(block_objs)
        ):
            results.extend(
                session.run(block_objs, block_types, db_indices=block_indices)
            )
        if timeline is not None:
            # Outside a scheduler there is no submit/poll clock, so the
            # block runner is the tick source: one tick per block.
            timeline.record_block(
                database.counters.diff(timeline_base).as_dict()
            )
            timeline.advance()
    return results
