"""The query service: plan -> admit -> schedule -> execute -> stream.

This package layers the paper's multiple similarity query (Def. 4,
Fig. 4) into a service pipeline:

* :class:`~repro.service.session.QuerySession` -- the Def. 4
  partial-answer buffer as a first-class handle, with a streaming
  generator face (:meth:`~repro.service.session.QuerySession.stream`)
  that emits the driver's answers the moment index traversal proves
  them final, and batch faces (``ask``/``run``) that are
  ``MultiQueryProcessor.process``/``query_all`` exactly;
* :class:`~repro.service.scheduler.QueryScheduler` -- dynamic batching
  of queries from many concurrent logical clients (flush on block-size
  target, deadline or queue pressure; FIFO driver for fairness;
  optional affinity ordering), with the block target taken from
  :class:`~repro.core.planner.QueryPlanner` cost fits when available;
* :func:`~repro.service.session.run_in_blocks` -- the canonical block
  runner every mining driver and the CLI sit on.

Entry points: ``Database.session()`` and ``Database.serve()``.
"""

from repro.service.scheduler import (
    OPTIMIZER_V1,
    OPTIMIZER_V2,
    ORDER_AFFINITY,
    ORDER_FIFO,
    QueryScheduler,
    Ticket,
    knee_block_size,
    recommend_access,
)
from repro.service.session import (
    TTFA_METRIC,
    AnswerEvent,
    DegradedAnswerEvent,
    QueryCompleted,
    QuerySession,
    run_in_blocks,
)

__all__ = [
    "AnswerEvent",
    "DegradedAnswerEvent",
    "OPTIMIZER_V1",
    "OPTIMIZER_V2",
    "ORDER_AFFINITY",
    "ORDER_FIFO",
    "QueryCompleted",
    "QueryScheduler",
    "QuerySession",
    "TTFA_METRIC",
    "Ticket",
    "knee_block_size",
    "recommend_access",
    "run_in_blocks",
]
