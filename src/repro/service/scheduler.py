"""Dynamic batching of similarity queries from concurrent clients.

Sec. 3.3 of the paper argues that once the multiple similarity query
exists as a DBMS operator, "a query optimizer can automatically use"
it -- queries arriving independently should be *formed into blocks* by
the system, not by every caller hand-rolling ``run_in_blocks``.
:class:`QueryScheduler` is that optimizer stage, shaped like an
inference-serving dynamic batcher:

* clients :meth:`~QueryScheduler.submit` single queries and receive a
  :class:`Ticket`; the scheduler accumulates them in an admission queue;
* a block is flushed to a :class:`~repro.service.session.QuerySession`
  when the queue reaches the *block target*, when the oldest ticket has
  waited past the *deadline*, or when *queue pressure* exceeds the hard
  cap -- whichever comes first;
* the block target itself comes from the
  :class:`~repro.core.planner.QueryPlanner` cost fits when available:
  ``cost(m) = shared/m + marginal`` flattens quickly, so the scheduler
  picks the knee point -- the smallest m within ``tolerance`` of the
  asymptotic per-query cost -- rather than batching without bound;
* the *driver* of each block is always the oldest ticket (FIFO -- no
  client starves); with ``order="affinity"`` the remaining queries are
  arranged in a greedy nearest-neighbour chain starting from the
  driver, keeping the query-distance matrix entries small so the
  Lemma 1/2 avoidance bounds stay tight.  Ordering uses *uncounted*
  distances: it is planning work, not query work, and answers are
  independent of block order.

Time is a **logical tick clock** advanced on every submit/poll, so
scheduling decisions are a pure function of the request sequence --
deterministic and testable, with wall-clock latency reported only
through the observer metrics (``service.client_latency.seconds``,
``service.time_to_first_answer.seconds``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable, Mapping, Sequence

from repro.core.answers import Answer
from repro.core.planner import (
    DEFAULT_KNEE_TOLERANCE as _DEFAULT_KNEE_TOLERANCE,
)
from repro.core.planner import knee_block_size
from repro.core.types import QueryType
from repro.faults.errors import FaultError
from repro.obs.audit import PlanAudit
from repro.service.session import (
    DegradedAnswerEvent,
    QueryCompleted,
    QuerySession,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.planner import CostFit, PartitionPlan

ORDER_FIFO = "fifo"
ORDER_AFFINITY = "affinity"

#: Optimizer modes: v1 is the paper's single knee-point batcher (one
#: block target, one engine, one access method); v2 partitions each
#: admitted batch by predicted sharing and dispatches every partition
#: under its own :class:`~repro.core.planner.BatchPlan` entry.
OPTIMIZER_V1 = "v1"
OPTIMIZER_V2 = "v2"

#: Relative slack used for the knee-point block target (re-exported
#: from :mod:`repro.core.planner`, where the knee computation lives).
DEFAULT_KNEE_TOLERANCE = _DEFAULT_KNEE_TOLERANCE

#: Hysteresis threshold for anomaly back-off release: after an anomaly
#: halved the block target, a knee-point refit may only *raise* it
#: again once the ``planner.calibration_drift`` EWMA has been observed
#: (on at least one post-back-off audited block) below this ratio.
DEFAULT_DRIFT_RECOVERY = 1.5

#: Bucket bounds of the ``service.completeness`` histogram (a fraction
#: in [0, 1], not a latency; the SLO engine reads its buckets).
COMPLETENESS_BOUNDS: tuple[float, ...] = tuple(k / 20 for k in range(21))


def recommend_access(fits: Sequence["CostFit"], block_size: int) -> str:
    """Cheapest access method among ``fits`` at a given block size."""
    if not fits:
        raise ValueError("need at least one cost fit")
    best = min(fits, key=lambda fit: fit.per_query(block_size))
    return best.access


@dataclass
class Ticket:
    """One client query's handle through the scheduler.

    ``answers`` is ``None`` until the scheduler flushes a block
    containing the ticket; afterwards it holds the complete answer list
    (byte-identical to a direct batch query).
    """

    client_id: Hashable
    obj: Any
    qtype: QueryType
    key: Hashable
    db_index: int | None
    submitted_tick: int
    submitted_at: float = field(repr=False, default=0.0)
    answers: list[Answer] | None = None
    completed_tick: int | None = None
    batch_size: int | None = None
    #: ``True`` when recovery was exhausted and ``answers`` holds the
    #: Def. 4 partial-answer buffer contents instead of the exact list.
    degraded: bool = False
    #: Completeness bound of a degraded answer set (``None`` when exact).
    completeness: float | None = None

    @property
    def done(self) -> bool:
        """Whether the ticket's block has been flushed."""
        return self.answers is not None


class QueryScheduler:
    """Admission queue + dynamic batcher over one database.

    Parameters
    ----------
    database:
        The :class:`~repro.core.database.Database` to serve.
    block_target:
        Queue occupancy that triggers a flush.  Overridden by the knee
        point of ``fits`` when cost fits are supplied.
    max_block:
        Hard cap on the size of one flushed block (the memory bound of
        Sec. 5: answer buffer and O(m^2) query-distance matrix).
    max_wait:
        Deadline in logical ticks: once the oldest waiting ticket is
        this old, the next submit/poll flushes whatever is queued.
    max_queue:
        Queue-pressure bound: submits beyond this depth flush
        immediately (in ``max_block`` chunks) before admitting.
    order:
        ``"fifo"`` or ``"affinity"`` (greedy nearest-neighbour chain
        after the FIFO driver; see module docstring).
    fits:
        Optional :class:`~repro.core.planner.CostFit` sequence from a
        probe run; installs the knee-point block target and the access
        recommendation (see :meth:`replan`).
    optimizer:
        ``"v1"`` (one knee-point block target, one engine and access
        method for every block) or ``"v2"`` (each flushed batch is
        partitioned by predicted sharing and every partition dispatched
        under its own plan -- access method, engine and block size are
        per-partition decisions).  For any fixed partition assignment
        the executed work is identical to v1: a v2 flush that forms a
        single default partition is answer- and counter-byte-identical
        to the v1 flush of the same batch.
    planner:
        Optional :class:`~repro.core.planner.QueryPlanner`; with
        ``optimizer="v2"`` its probed cost surface prices each partition
        (:meth:`~repro.core.planner.QueryPlanner.plan_batch`).  Without
        one, v2 still partitions by sharing but keeps the scheduler's
        default access method and engine.
    share_bound:
        Distance bound cutting the v2 affinity chain into partitions
        (``None`` derives it per batch from the batch's own distance
        scale; ``math.inf`` forces one partition -- the v1-identical
        degenerate case).
    drift_recovery:
        Hysteresis threshold for anomaly back-off release (see
        :data:`DEFAULT_DRIFT_RECOVERY`).
    session_options:
        Extra keyword arguments for the underlying
        :class:`~repro.service.session.QuerySession` (engine,
        use_avoidance, max_pivots, matrix_mode, warm_start).
    """

    def __init__(
        self,
        database: Any,
        block_target: int = 8,
        max_block: int = 32,
        max_wait: int = 16,
        max_queue: int = 256,
        order: str = ORDER_FIFO,
        fits: Sequence["CostFit"] | None = None,
        knee_tolerance: float = DEFAULT_KNEE_TOLERANCE,
        optimizer: str = OPTIMIZER_V1,
        planner: Any = None,
        share_bound: float | None = None,
        drift_recovery: float = DEFAULT_DRIFT_RECOVERY,
        **session_options: Any,
    ):
        if order not in (ORDER_FIFO, ORDER_AFFINITY):
            raise ValueError(f"unknown scheduling order {order!r}")
        if optimizer not in (OPTIMIZER_V1, OPTIMIZER_V2):
            raise ValueError(f"unknown optimizer {optimizer!r}")
        if max_block < 1:
            raise ValueError("max block size must be positive")
        if block_target < 1:
            raise ValueError("block target must be positive")
        if max_wait < 0:
            raise ValueError("deadline must be non-negative")
        self.database = database
        self.session = QuerySession(database, **session_options)
        self.observer = self.session.observer
        self.max_block = max_block
        self.block_target = min(block_target, max_block)
        self.max_wait = max_wait
        self.max_queue = max_queue
        self.order = order
        self.knee_tolerance = knee_tolerance
        self.optimizer = optimizer
        self.planner = planner
        self.share_bound = share_bound
        self.drift_recovery = drift_recovery
        self.tick = 0
        self.recommended_access: str | None = None
        self._queue: list[Ticket] = []
        self._serial = 0
        self._n_flushed_blocks = 0
        self._n_degraded_sessions = 0
        #: Cost fits adopted by the last :meth:`replan(fits=...)` call;
        #: anomaly-triggered replans reuse them.
        self._fits: list["CostFit"] | None = None
        #: Block-target halvings triggered by anomaly firings.
        self.anomaly_replans = 0
        #: Hysteresis state: ``True`` between an anomaly halving and the
        #: first audited evidence that calibration drift recovered.
        self._anomaly_backoff = False
        self._backoff_blocks = 0
        #: Plan-vs-actual audit, armed by :meth:`replan` when cost fits
        #: are supplied (see :mod:`repro.obs.audit`).
        self.audit: PlanAudit | None = None
        #: Per-plan sessions keyed by (engine, access) overrides; the
        #: default plan reuses :attr:`session`.
        self._session_options = dict(session_options)
        self._sessions: dict[tuple[str | None, str | None], QuerySession] = {}
        if self.observer is not None:
            # Publish the gauge up front so a fault-free serving episode
            # still reports "0 degraded sessions" rather than nothing.
            self.observer.metrics.set_gauge("service.degraded_sessions", 0.0)
        if fits:
            self.replan(fits)

    # ------------------------------------------------------------------
    # Planner feedback
    # ------------------------------------------------------------------

    def replan(
        self,
        fits: Sequence["CostFit"] | None = None,
        anomalies: Sequence[Mapping[str, Any]] = (),
    ) -> None:
        """Adopt planner cost fits and/or react to anomaly firings.

        With ``fits``, adopts them (knee-point block target + access
        recommendation) and remembers them; called bare, re-plans from
        the remembered fits (raising when none were ever supplied).
        ``anomalies`` -- firing records drained from the timeline's
        :class:`~repro.obs.anomaly.AnomalyEngine` each flush -- may
        arrive with or without fits: any firing whose rule is marked
        ``replan: true`` halves the block target (floor 1), the live
        counterpart of the knee-point logic for conditions the cost
        model cannot see (degraded tickets, throughput collapse).

        The scheduler keeps serving through its current database either
        way -- :attr:`recommended_access` is advisory, surfaced so a
        caller holding a :class:`~repro.core.planner.QueryPlanner` can
        re-home the scheduler when the recommendation diverges.
        """
        if fits is None and not anomalies:
            fits = self._fits
            if fits is None:
                raise ValueError("need at least one cost fit")
        if fits is not None:
            fits = list(fits)
            if not fits:
                raise ValueError("need at least one cost fit")
            self._fits = list(fits)
            self._replan_fits(fits)
        if anomalies:
            self._replan_anomalies(anomalies)

    def _replan_fits(self, fits: list["CostFit"]) -> None:
        current = self.database.access_method.name
        own = [fit for fit in fits if fit.access == current]
        fit = own[0] if own else min(
            fits, key=lambda f: f.per_query(self.max_block)
        )
        if self.audit is not None and self.audit.blocks_audited:
            # Consume the audit's calibration feedback: the refit (or
            # drift-scaled) curve reflects what observed blocks actually
            # cost, so the knee lands where the *measured* amortisation
            # flattens, not where the stale probe said it would.
            fit = self.audit.calibrated(fit)
        target = knee_block_size(fit, self.max_block, self.knee_tolerance)
        if self._anomaly_backoff and target > self.block_target:
            # Hysteresis against halving/refit oscillation: an anomaly
            # halved the target, so a refit may only raise it again once
            # at least one *post-back-off* block has been audited and the
            # calibration-drift EWMA sits below the recovery threshold.
            # Until then the refit keeps the backed-off target.
            audit = self.audit
            recovered = (
                audit is not None
                and audit.blocks_audited > self._backoff_blocks
                and audit.drift_seconds is not None
                and audit.drift_seconds < self.drift_recovery
            )
            if recovered:
                self._anomaly_backoff = False
            else:
                target = self.block_target
        self.block_target = target
        self.recommended_access = recommend_access(fits, self.block_target)
        cost_model = getattr(self.database, "cost_model", None)
        if self.audit is None and cost_model is not None:
            self.audit = PlanAudit(fit, cost_model, self.observer)
        elif self.audit is not None:
            self.audit.fit = fit
        if self.observer is not None:
            self.observer.event(
                "service.replan",
                block_target=self.block_target,
                recommended_access=self.recommended_access,
                calibration_drift=(
                    self.audit.drift_seconds if self.audit is not None else None
                ),
            )

    def _replan_anomalies(
        self, anomalies: Sequence[Mapping[str, Any]]
    ) -> None:
        """Back off the block target when a replan-flagged rule fired.

        One halving per replan call no matter how many rules fired
        together, so a noisy window cannot collapse the target to 1 in
        a single step.
        """
        triggers = [f["rule"] for f in anomalies if f.get("replan")]
        if not triggers:
            return
        self.anomaly_replans += 1
        self.block_target = max(1, self.block_target // 2)
        self._anomaly_backoff = True
        self._backoff_blocks = (
            self.audit.blocks_audited if self.audit is not None else 0
        )
        if self.observer is not None:
            self.observer.metrics.inc("service.replan.anomaly")
            self.observer.event(
                "service.replan.anomaly",
                rules=",".join(triggers),
                block_target=self.block_target,
            )

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Number of tickets waiting for a flush."""
        return len(self._queue)

    def submit(
        self,
        obj: Any,
        qtype: QueryType,
        client_id: Hashable = 0,
        db_index: int | None = None,
    ) -> Ticket:
        """Admit one client query; may trigger a flush on the way.

        Advances the logical clock by one tick, enqueues the ticket and
        flushes if the occupancy target, the oldest ticket's deadline or
        the queue-pressure bound is hit.  The returned ticket is filled
        in place when its block runs.
        """
        self.tick += 1
        if (
            self.observer is not None
            and self.observer.timeline is not None
        ):
            self.observer.timeline.advance(self.tick)
        while len(self._queue) >= self.max_queue:
            self._flush_block()
        self._serial += 1
        ticket = Ticket(
            client_id=client_id,
            obj=obj,
            qtype=qtype,
            key=("serve", self._serial),
            db_index=db_index,
            submitted_tick=self.tick,
            submitted_at=time.perf_counter(),
        )
        self._queue.append(ticket)
        if self.observer is not None:
            self.observer.event(
                "service.submit",
                client=str(client_id),
                tick=self.tick,
                key=str(ticket.key),
            )
            self.observer.metrics.set_gauge(
                "service.queue_depth", float(len(self._queue))
            )
        self._maybe_flush()
        return ticket

    def poll(self) -> None:
        """Advance the clock one tick and apply the deadline rule.

        Lets an idle client (or a driving loop) age the queue so a
        partially filled block still flushes within ``max_wait`` ticks.
        """
        self.tick += 1
        if (
            self.observer is not None
            and self.observer.timeline is not None
        ):
            self.observer.timeline.advance(self.tick)
        self._maybe_flush()

    def drain(self) -> None:
        """Flush until the queue is empty (end of the serving episode)."""
        while self._queue:
            self._flush_block()

    def serve(
        self, requests: Sequence[tuple[Hashable, Any, QueryType]]
    ) -> list[Ticket]:
        """Submit a request trace and drain: one ticket per request.

        ``requests`` is a sequence of ``(client_id, obj, qtype)``
        triples in arrival order.  Answers land on the tickets.
        """
        tickets = [
            self.submit(obj, qtype, client_id=client_id)
            for client_id, obj, qtype in requests
        ]
        self.drain()
        return tickets

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------

    def _maybe_flush(self) -> None:
        while len(self._queue) >= self.block_target:
            self._flush_block()
        if (
            self._queue
            and self.tick - self._queue[0].submitted_tick >= self.max_wait
        ):
            self._flush_block()

    def _order_batch(self, batch: list[Ticket]) -> list[Ticket]:
        """Arrange a block behind its FIFO driver.

        The driver (``batch[0]``, the oldest ticket) is fixed -- that is
        the fairness guarantee.  With affinity ordering, the rest form a
        greedy nearest-neighbour chain: each next query is the one
        closest to the previous, computed with uncounted distances
        (planning work; answers do not depend on block order).
        """
        if self.order != ORDER_AFFINITY or len(batch) <= 2:
            return batch
        uncounted = self.database.space.uncounted
        remaining = batch[1:]
        chain = [batch[0]]
        while remaining:
            last = chain[-1]
            nearest = min(
                range(len(remaining)),
                key=lambda i: uncounted(last.obj, remaining[i].obj),
            )
            chain.append(remaining.pop(nearest))
        return chain

    def _fallback_fit(self) -> "CostFit | None":
        """The remembered fit pricing planner-less v2 partitions."""
        fits = self._fits
        if not fits:
            return None
        current = self.database.access_method.name
        own = [fit for fit in fits if fit.access == current]
        fit = own[0] if own else min(
            fits, key=lambda f: f.per_query(self.max_block)
        )
        if self.audit is not None and self.audit.blocks_audited:
            fit = self.audit.calibrated(fit)
        return fit

    def _plan_partitions(
        self, raw: list[Ticket]
    ) -> list[tuple[list[Ticket], "PartitionPlan"]]:
        """Form the v2 batch plan for one flushed batch.

        With a planner attached, the partitions are priced on its
        probed cost surface (per-partition access method and engine);
        without one, the batch is still partitioned by sharing but every
        partition keeps the scheduler's defaults, priced by the
        remembered replan fits when available.  Partition membership is
        decided here; *ordering within* a partition stays
        :meth:`_order_batch`'s job, so a single-partition v2 flush
        executes exactly the v1 work.
        """
        from repro.core.multi_query import query_label
        from repro.core.planner import (
            BatchPlan,
            PartitionPlan,
            partition_by_sharing,
        )

        objs = [t.obj for t in raw]
        qtypes = [t.qtype for t in raw]
        if self.planner is not None:
            plan = self.planner.plan_batch(
                objs,
                qtypes,
                max_block=self.max_block,
                share_bound=self.share_bound,
            )
        else:
            groups = partition_by_sharing(
                objs,
                self.database.space,
                share_bound=self.share_bound,
                max_partition=self.max_block,
            )
            fit = self._fallback_fit()
            parts = []
            total = 0.0
            for members in groups:
                m = len(members)
                predicted = fit.per_query(m) if fit is not None else 0.0
                sharing = fit.sharing_factor(m) if fit is not None else 1.0
                part = PartitionPlan(
                    members=tuple(members),
                    access=None,
                    engine=None,
                    block_size=m,
                    prefilter=getattr(self.database, "prefilter", None)
                    is not None,
                    predicted_seconds_per_query=predicted,
                    sharing_factor=sharing,
                )
                parts.append(part)
                total += part.predicted_seconds
            plan = BatchPlan(partitions=tuple(parts), predicted_seconds=total)
        observer = self.observer
        if observer is not None:
            observer.metrics.observe(
                "planner.partition.count", float(len(plan.partitions))
            )
            mean_sharing = sum(
                p.sharing_factor * p.size for p in plan.partitions
            ) / max(1, plan.n_queries)
            observer.metrics.set_gauge(
                "planner.partition.sharing_factor", mean_sharing
            )
        default_access = self.database.access_method.name
        default_engine = self.session.processor.engine_name
        result: list[tuple[list[Ticket], "PartitionPlan"]] = []
        for index, part in enumerate(plan.partitions):
            tickets = self._order_batch([raw[i] for i in part.members])
            if observer is not None:
                observer.metrics.observe(
                    "planner.partition.size", float(len(tickets))
                )
                observer.event(
                    "planner.plan",
                    block=self._n_flushed_blocks - 1,
                    partition=index,
                    size=len(tickets),
                    access=part.access or default_access,
                    engine=part.engine or default_engine,
                    block_size=part.block_size,
                    predicted_ms_per_query=(
                        part.predicted_seconds_per_query * 1000.0
                    ),
                    sharing=round(part.sharing_factor, 3),
                    queries="|".join(
                        query_label(t.key) for t in tickets
                    ),
                )
            result.append((tickets, part))
        return result

    def _session_for(self, plan: "PartitionPlan | None") -> QuerySession:
        """The session matching a partition plan's engine and access.

        The default plan (no overrides, or overrides equal to the
        scheduler's own defaults) reuses the shared :attr:`session`;
        other (engine, access) pairs get one lazily created session
        each, cached for the scheduler's lifetime.  Sessions retire all
        their keys at the end of every partition, so reuse is
        counter-equivalent to fresh sessions.
        """
        if plan is None:
            return self.session
        engine = plan.engine
        if engine == self.session.processor.engine_name:
            engine = None
        access = plan.access
        if access == self.database.access_method.name:
            access = None
        if engine is None and access is None:
            return self.session
        key = (engine, access)
        session = self._sessions.get(key)
        if session is None:
            options = dict(self._session_options)
            if engine is not None:
                options["engine"] = engine
            session = QuerySession(self.database, access=access, **options)
            self._sessions[key] = session
        return session

    def _flush_block(self) -> None:
        """Run one block of waiting tickets through its session(s).

        Exactly the repeated-call pattern of ``query_all`` -- the first
        call streamed (recording time-to-first-answer), the rest drained
        -- so the answers match ``run_in_blocks`` on the same grouping,
        answer for answer and counter for counter.

        Under ``optimizer="v1"`` the whole batch is one partition on the
        shared session.  Under ``"v2"`` the batch is first partitioned
        by predicted sharing (:meth:`_plan_partitions`); each partition
        runs -- in order of its oldest member, so the FIFO fairness
        guarantee survives the re-grouping -- on a session matching its
        plan's engine and access method, with its own audit window.

        When an unrecoverable fault aborts a partition, its remaining
        tickets are completed *degraded*: partial answers from the
        Def. 4 buffer, a completeness bound, and the
        ``service.degraded_sessions`` gauge bumped -- clients always get
        their tickets back.
        """
        if not self._queue:
            return
        injector = getattr(self.database, "fault_injector", None)
        if injector is not None:
            injector.begin_block()
        raw = self._queue[: self.max_block]
        del self._queue[: len(raw)]
        observer = self.observer
        self._n_flushed_blocks += 1
        if observer is not None:
            observer.event(
                "service.flush",
                block=self._n_flushed_blocks - 1,
                size=len(raw),
                tick=self.tick,
                waited=self.tick - raw[0].submitted_tick,
            )
            observer.metrics.observe(
                "service.batch_occupancy", float(len(raw))
            )
            observer.metrics.set_gauge(
                "service.queue_depth", float(len(self._queue))
            )
        timeline = observer.timeline if observer is not None else None
        if timeline is not None:
            timeline_base = self.database.counters.copy()
        if self.optimizer == OPTIMIZER_V2:
            partitions = self._plan_partitions(raw)
        else:
            partitions = [(self._order_batch(raw), None)]
        for batch, plan in partitions:
            session = self._session_for(plan)
            audit = self.audit
            if audit is not None:
                audit.begin_block(self.database.counters)
            degraded_events, degraded_reason = self._execute_batch(
                batch, session
            )
            if degraded_reason is not None:
                self._degrade_batch(
                    batch, degraded_events, degraded_reason, session
                )
            elif audit is not None:
                # Degraded partitions are excluded: their counter delta
                # covers only the work done before the fault, which
                # would read as a spurious "plan too expensive" signal.
                audit.end_block(self.database.counters, len(batch))
            for ticket in batch:
                session.retire(ticket.key)
        if timeline is not None:
            # Degraded blocks are included here, unlike the audit: the
            # timeline records what the block actually cost, and a
            # collapsed window is exactly the signal the anomaly rules
            # watch for.
            timeline.record_block(
                self.database.counters.diff(timeline_base).as_dict()
            )
            firings = timeline.drain_anomalies()
            if firings:
                self.replan(anomalies=firings)

    def _execute_batch(
        self, batch: list[Ticket], session: QuerySession
    ) -> tuple[dict[Hashable, DegradedAnswerEvent], str | None]:
        """Run one ordered partition through ``session``, filling tickets.

        Returns the degraded-answer events and fault reason (``None``
        when every ticket completed exactly).
        """
        observer = self.observer
        objs = [t.obj for t in batch]
        qtypes = [t.qtype for t in batch]
        keys = [t.key for t in batch]
        db_indices: list[int | None] | None = [t.db_index for t in batch]
        if all(index is None for index in db_indices):
            db_indices = None
        degraded_events: dict[Hashable, DegradedAnswerEvent] = {}
        degraded_reason: str | None = None
        for position, ticket in enumerate(batch):
            sub_indices = (
                db_indices[position:] if db_indices is not None else None
            )
            if position == 0:
                answers: list[Answer] = []
                for event in session.stream(
                    objs[position:], qtypes[position:],
                    keys[position:], sub_indices,
                ):
                    if isinstance(event, QueryCompleted):
                        answers = list(event.answers)
                    elif isinstance(event, DegradedAnswerEvent):
                        degraded_events[event.key] = event
                        degraded_reason = event.reason
                if degraded_reason is not None:
                    break
            else:
                try:
                    answers = session.ask(
                        objs[position:], qtypes[position:],
                        keys[position:], sub_indices,
                    )
                except FaultError as fault:
                    degraded_reason = f"{type(fault).__name__}: {fault}"
                    break
            ticket.answers = answers
            ticket.completed_tick = self.tick
            ticket.batch_size = len(batch)
            if observer is not None:
                observer.metrics.inc("service.tickets.completed")
                observer.metrics.observe(
                    "service.client_latency.seconds",
                    time.perf_counter() - ticket.submitted_at,
                )
                observer.metrics.observe(
                    "service.wait.ticks",
                    float(self.tick - ticket.submitted_tick),
                )
        return degraded_events, degraded_reason

    def _degrade_batch(
        self,
        batch: list[Ticket],
        events: dict[Hashable, DegradedAnswerEvent],
        reason: str,
        session: QuerySession | None = None,
    ) -> None:
        """Complete the unfinished tickets of a faulted block, degraded."""
        if session is None:
            session = self.session
        observer = self.observer
        injector = getattr(self.database, "fault_injector", None)
        self._n_degraded_sessions += 1
        n_degraded_tickets = 0
        for ticket in batch:
            if ticket.done and not ticket.degraded:
                continue  # completed before the fault; answers are exact
            event = events.get(ticket.key)
            if event is None:
                event = session._degraded_event(ticket.key, 0, reason)
            ticket.answers = list(event.answers)
            ticket.degraded = True
            ticket.completeness = event.completeness
            ticket.completed_tick = self.tick
            ticket.batch_size = len(batch)
            n_degraded_tickets += 1
            if injector is not None:
                # Degraded tickets burn the completeness error budget
                # (see the SLO engine); record the shortfall with the
                # fault accounting it stems from.
                injector.record_degraded(event.completeness)
            if observer is not None:
                observer.metrics.inc("service.tickets.degraded")
                observer.metrics.histogram(
                    "service.completeness", COMPLETENESS_BOUNDS
                ).observe(event.completeness)
        if observer is not None:
            observer.event(
                "service.degraded_block",
                block=self._n_flushed_blocks - 1,
                tickets=n_degraded_tickets,
                reason=reason,
            )
            observer.metrics.set_gauge(
                "service.degraded_sessions", float(self._n_degraded_sessions)
            )

    @property
    def degraded_sessions(self) -> int:
        """Blocks that completed in degraded mode so far."""
        return self._n_degraded_sessions

    @property
    def prefilter_stats(self) -> dict[str, float] | None:
        """Pre-filter accounting of the shared session, if one is active.

        Pass ``prefilter=...`` through the scheduler's session options
        (or enable it database-wide) to activate the tier; the snapshot
        covers every block the scheduler has flushed so far.
        """
        return self.session.prefilter_stats
