"""The database facade tying the substrates together.

:class:`Database` owns one dataset, one instrumented metric space, one
simulated disk and one access method, and exposes the paper's two query
operations plus measured runs:

>>> import numpy as np
>>> from repro.core.database import Database
>>> from repro.core.types import knn_query
>>> db = Database(np.random.default_rng(0).random((500, 8)), access="xtree")
>>> with db.measure() as run:
...     answers = db.similarity_query(db.dataset[0], knn_query(5))
>>> len(answers)
5
>>> run.counters.page_reads > 0
True
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

import numpy as np

from repro.core.answers import Answer
from repro.core.engine import ENGINE_BATCHED, ENGINE_REFERENCE, ENGINE_VECTORIZED
from repro.core.multi_query import MultiQueryProcessor, run_in_blocks
from repro.core.ranking import neighbor_ranking
from repro.core.types import QueryType
from repro.costmodel import CostBreakdown, CostModel, Counters
from repro.data import Dataset, as_dataset
from repro.index.base import AccessMethod
from repro.index.mtree import MTree
from repro.index.scan import LinearScan
from repro.index.vafile import VAFile
from repro.index.xtree import XTree
from repro.index.rstar.tree import RStarTree
from repro.metric.distances import DistanceFunction
from repro.metric.space import MetricSpace
from repro.storage.disk import SimulatedDisk
from repro.storage.page import DEFAULT_BLOCK_SIZE

_ACCESS_METHODS = {
    "scan": LinearScan,
    "xtree": XTree,
    "rstar": RStarTree,
    "mtree": MTree,
    "vafile": VAFile,
}

#: Cost-model dimension assumed for non-vector metrics (how expensive
#: one distance evaluation is relative to one comparison).
_GENERIC_EFFECTIVE_DIMENSION = 32


@dataclass(frozen=True)
class MeasuredRun:
    """Counters accumulated during a measured block, plus modelled cost."""

    counters: Counters
    cost_model: CostModel

    @property
    def cost(self) -> CostBreakdown:
        """Modelled I/O + CPU cost of the run."""
        return self.cost_model.breakdown(self.counters)

    @property
    def io_seconds(self) -> float:
        """Modelled I/O seconds."""
        return self.cost.io_seconds

    @property
    def cpu_seconds(self) -> float:
        """Modelled CPU seconds."""
        return self.cost.cpu_seconds

    @property
    def total_seconds(self) -> float:
        """Modelled total seconds."""
        return self.cost.total_seconds


class _MeasureHandle:
    """Mutable handle populated when a ``measure`` block closes."""

    def __init__(self) -> None:
        self.counters = Counters()
        self.run: MeasuredRun | None = None

    @property
    def cost(self) -> CostBreakdown:
        assert self.run is not None, "measure block has not finished"
        return self.run.cost

    @property
    def io_seconds(self) -> float:
        return self.cost.io_seconds

    @property
    def cpu_seconds(self) -> float:
        return self.cost.cpu_seconds

    @property
    def total_seconds(self) -> float:
        return self.cost.total_seconds


class Database:
    """A metric database with one access method (Sec. 2).

    Parameters
    ----------
    data:
        A :class:`~repro.data.Dataset`, an ``(n, d)`` array, or any
        sequence of objects.
    metric:
        Distance-function name or instance (default Euclidean).
    access:
        ``"scan"``, ``"xtree"``, ``"rstar"``, ``"mtree"`` or ``"vafile"``.
    block_size:
        Disk block size in bytes (paper: 32 KB).
    buffer_fraction:
        LRU buffer capacity as a fraction of the database/index size
        (paper: 10 %); 0 disables buffering.
    engine:
        Default page-processing engine: ``"batched"`` (one fused kernel
        per page x query-batch), ``"vectorized"``, ``"reference"`` or
        ``"auto"`` (vectorised when possible).
    index_options:
        Extra keyword arguments forwarded to the access method.
    observer:
        Optional :class:`~repro.obs.Observer` to attach (see
        :meth:`attach_observer`).  Without one, queries run the exact
        uninstrumented code paths.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` (or its dict form);
        when given, :meth:`inject_faults` is called with it.  Without
        one, the read path stays entirely fault-free.
    prefilter:
        Optional sketch-based page pre-filter tier: ``True`` builds one
        with defaults, a dict or :class:`~repro.prefilter.PrefilterConfig`
        customises it (see :meth:`enable_prefilter`).  Exact by default:
        answers and counters stay byte-identical to running without it.
    """

    def __init__(
        self,
        data: Dataset | np.ndarray | Sequence[Any],
        metric: str | DistanceFunction = "euclidean",
        access: str = "scan",
        block_size: int = DEFAULT_BLOCK_SIZE,
        buffer_fraction: float = 0.1,
        engine: str = "auto",
        index_options: dict[str, Any] | None = None,
        observer: Any = None,
        fault_plan: Any = None,
        prefilter: Any = None,
    ):
        self.dataset = as_dataset(data)
        self.counters = Counters()
        self.space = MetricSpace(metric, self.counters)
        self.disk = SimulatedDisk(self.counters, block_size=block_size)
        try:
            factory = _ACCESS_METHODS[access]
        except KeyError:
            known = ", ".join(sorted(_ACCESS_METHODS))
            raise ValueError(f"unknown access method {access!r}; known: {known}")
        self.access_method: AccessMethod = factory(
            self.dataset, self.space, self.disk, **(index_options or {})
        )
        #: Lazily built secondary access methods over the same dataset,
        #: metric space, counters and disk (see :meth:`access_method_for`).
        self._access_variants: dict[str, AccessMethod] = {}
        if buffer_fraction > 0:
            buffer_blocks = max(1, int(buffer_fraction * self.disk.total_blocks))
            self.disk.set_buffer_blocks(buffer_blocks)
        if engine == "auto":
            engine = (
                ENGINE_VECTORIZED
                if self.dataset.is_vector and self.space.is_vector_metric
                else ENGINE_REFERENCE
            )
        if engine not in (ENGINE_REFERENCE, ENGINE_VECTORIZED, ENGINE_BATCHED):
            raise ValueError(f"unknown engine {engine!r}")
        self.engine = engine
        dimension = (
            self.dataset.dimension
            if self.dataset.is_vector
            else _GENERIC_EFFECTIVE_DIMENSION
        )
        self.cost_model = CostModel(dimension)
        self.observer: Any = None
        if observer is not None:
            self.attach_observer(observer)
        self.fault_injector: Any = None
        if fault_plan is not None:
            self.inject_faults(fault_plan)
        self.prefilter: Any = None
        if prefilter is not None and prefilter is not False:
            self.enable_prefilter(None if prefilter is True else prefilter)

    def attach_observer(self, observer: Any) -> Any:
        """Attach an :class:`~repro.obs.Observer` to this database.

        Registers the shared :class:`Counters` and the buffer pool as
        snapshot-time metric collectors and makes every processor
        created from this database -- and every page stream opened by
        the access method -- report phases, spans and events through
        the observer.  Purely additive: answers and counters are
        identical with and without an observer.
        """
        from repro.obs import attach_counters

        self.observer = observer
        self.access_method.observer = observer
        for variant in self._access_variants.values():
            variant.observer = observer
        attach_counters(observer.metrics, self.counters)
        observer.metrics.register_collector(self._buffer_stats)
        return observer

    def access_method_for(self, access: str | None) -> AccessMethod:
        """The named access method over this database's pages.

        ``None`` or the configured name returns the primary access
        method; any other known name lazily builds (and caches) a
        secondary structure over the *same* dataset, metric space,
        counters and simulated disk, so a processor can run one block
        through a different index without a second database.  Index
        construction charges no query counters (building uses uncounted
        distances), and page ids are unique across structures on one
        disk, so the variants coexist in the shared LRU buffer exactly
        like separate relations in one buffer pool.
        """
        if access is None or access == self.access_method.name:
            return self.access_method
        variant = self._access_variants.get(access)
        if variant is None:
            try:
                factory = _ACCESS_METHODS[access]
            except KeyError:
                known = ", ".join(sorted(_ACCESS_METHODS))
                raise ValueError(
                    f"unknown access method {access!r}; known: {known}"
                )
            variant = factory(self.dataset, self.space, self.disk)
            variant.observer = self.observer
            self._access_variants[access] = variant
        return variant

    def inject_faults(
        self, plan: Any, site: str = "server:0", policy: Any = None
    ) -> Any:
        """Arm the fault plan against this database's disk.

        Creates a :class:`~repro.faults.FaultInjector` over ``plan``
        (reporting through the attached observer, if any) and installs
        its read gate for ``site`` on the simulated disk.  Returns the
        injector so callers can inspect :meth:`~repro.faults.FaultInjector.summary`.
        """
        from repro.faults import FaultInjector

        injector = FaultInjector(plan, policy=policy, observer=self.observer)
        self.fault_injector = injector
        self.disk.faults = injector.gate(site)
        return injector

    def enable_prefilter(self, config: Any = None) -> Any:
        """Build and attach the sketch-based page pre-filter tier.

        ``config`` may be ``None`` (defaults), a
        :class:`~repro.prefilter.PrefilterConfig`, its dict form, or an
        already-built :class:`~repro.prefilter.PagePrefilter` (e.g. one
        restored via :mod:`repro.storage.sketch_store`).  The sketch is
        built over the access method's current data pages using its
        :meth:`~repro.index.base.AccessMethod.prefilter_profile` hints;
        construction-time distances are uncounted planning work.
        Returns the attached :class:`~repro.prefilter.PagePrefilter`.
        """
        from repro.prefilter import PagePrefilter, PrefilterConfig

        if isinstance(config, PagePrefilter):
            self.prefilter = config
            return config
        if isinstance(config, dict):
            config = PrefilterConfig(**config)
        prefilter = PagePrefilter.build(
            self.dataset, self.space, self.access_method, config
        )
        self.prefilter = prefilter
        return prefilter

    def disable_prefilter(self) -> None:
        """Detach the pre-filter tier (queries run unfiltered again)."""
        self.prefilter = None

    def _buffer_stats(self) -> dict[str, float]:
        """Snapshot-time buffer-pool statistics (Sec. 5.1 I/O sharing)."""
        buffer = self.disk.buffer
        return {
            "buffer.lookups": buffer.lookups,
            "buffer.hits": buffer.hits,
            "derived.buffer_hit_rate": buffer.hit_rate,
        }

    def __len__(self) -> int:
        return len(self.dataset)

    # ------------------------------------------------------------------
    # Query operations
    # ------------------------------------------------------------------

    def similarity_query(self, query_obj: Any, qtype: QueryType) -> list[Answer]:
        """Single similarity query (Fig. 1)."""
        processor = MultiQueryProcessor(self)
        return processor.process([query_obj], [qtype])

    def ranking(self, query_obj: Any) -> "Iterator[Answer]":
        """Neighbours of ``query_obj`` in ascending distance, lazily.

        The incremental ranking of [13]; see
        :func:`repro.core.ranking.neighbor_ranking`.
        """
        return neighbor_ranking(self, query_obj)

    def processor(
        self,
        engine: str | None = None,
        use_avoidance: bool = True,
        max_pivots: int | None = None,
        seed_from_queries: bool = False,
        warm_start: bool = False,
        matrix_mode: str = "eager",
        prefilter: Any = None,
    ) -> MultiQueryProcessor:
        """Create an incremental multiple-query processor (Fig. 4)."""
        kwargs = {} if max_pivots is None else {"max_pivots": max_pivots}
        return MultiQueryProcessor(
            self,
            engine=engine,
            use_avoidance=use_avoidance,
            seed_from_queries=seed_from_queries,
            warm_start=warm_start,
            matrix_mode=matrix_mode,
            prefilter=prefilter,
            **kwargs,
        )

    def session(
        self,
        engine: str | None = None,
        use_avoidance: bool = True,
        max_pivots: int | None = None,
        seed_from_queries: bool = False,
        warm_start: bool = False,
        matrix_mode: str = "eager",
        prefilter: Any = None,
        access: str | None = None,
    ) -> Any:
        """Open a streaming :class:`~repro.service.QuerySession`.

        The Def. 4 partial-answer buffer as a first-class handle:
        ``submit``/``partial_answers``/``retire`` manage the buffer,
        ``stream`` yields the driver's answers incrementally as pages
        are processed, ``ask``/``run`` are the drained (batch) forms.
        ``access`` runs the session through a secondary access method
        (see :meth:`access_method_for`); engine and access method are
        per-session -- i.e. per-block -- decisions, not database ones.
        """
        from repro.service.session import QuerySession

        return QuerySession(
            self,
            engine=engine,
            use_avoidance=use_avoidance,
            max_pivots=max_pivots,
            seed_from_queries=seed_from_queries,
            warm_start=warm_start,
            matrix_mode=matrix_mode,
            prefilter=prefilter,
            access=access,
        )

    def serve(
        self,
        block_target: int = 8,
        max_block: int = 32,
        max_wait: int = 16,
        max_queue: int = 256,
        order: str = "fifo",
        fits: Sequence[Any] | None = None,
        optimizer: str = "v1",
        planner: Any = None,
        share_bound: float | None = None,
        **session_options: Any,
    ) -> Any:
        """Open a dynamic-batching :class:`~repro.service.QueryScheduler`.

        Clients ``submit`` single queries and receive tickets; the
        scheduler forms multiple-query blocks automatically (Sec. 3.3)
        and flushes them through a shared session.  Pass the cost
        ``fits`` of a :class:`~repro.core.planner.QueryPlanner` probe to
        install the knee-point block target.  ``optimizer="v2"``
        partitions each admitted batch by predicted sharing and
        dispatches every partition under its own
        :class:`~repro.core.planner.BatchPlan` entry (per-partition
        access method and engine); pass ``planner`` to price partitions
        on a probed cost surface.
        """
        from repro.service.scheduler import QueryScheduler

        return QueryScheduler(
            self,
            block_target=block_target,
            max_block=max_block,
            max_wait=max_wait,
            max_queue=max_queue,
            order=order,
            fits=fits,
            optimizer=optimizer,
            planner=planner,
            share_bound=share_bound,
            **session_options,
        )

    def multiple_similarity_query(
        self,
        query_objs: Sequence[Any],
        qtypes: Sequence[QueryType] | QueryType,
        use_avoidance: bool = True,
    ) -> list[list[Answer]]:
        """Answer a batch of queries completely via one shared session."""
        session = self.session(use_avoidance=use_avoidance)
        return session.run(query_objs, qtypes)

    def run_in_blocks(
        self,
        query_objs: Sequence[Any],
        qtypes: Sequence[QueryType] | QueryType,
        block_size: int,
        use_avoidance: bool = True,
        db_indices: Sequence[int | None] | None = None,
        warm_start: bool = False,
        engine: str | None = None,
    ) -> list[list[Answer]]:
        """Process M queries in consecutive blocks of ``block_size``.

        Passing ``db_indices`` (the dataset index of each query object)
        declares the queries to be database members and enables radius
        seeding from the query-distance matrix.  ``engine`` overrides
        the database's default page-processing engine for these blocks.
        """
        return run_in_blocks(
            self,
            query_objs,
            qtypes,
            block_size,
            use_avoidance=use_avoidance,
            db_indices=db_indices,
            warm_start=warm_start,
            engine=engine,
        )

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def measure(self) -> Iterator[_MeasureHandle]:
        """Measure the counters accumulated inside a ``with`` block.

        >>> # with db.measure() as run: db.similarity_query(...)
        >>> # run.counters, run.io_seconds, run.cpu_seconds
        """
        before = self.counters.copy()
        handle = _MeasureHandle()
        try:
            yield handle
        finally:
            handle.counters = self.counters.diff(before)
            handle.run = MeasuredRun(handle.counters, self.cost_model)

    def cold(self) -> None:
        """Clear the disk buffer (start from a cold cache)."""
        self.disk.clear_buffer()

    def summary(self) -> dict[str, Any]:
        """Structural summary of dataset, disk and access method."""
        info = {
            "objects": len(self.dataset),
            "metric": self.space.distance.name,
            "engine": self.engine,
            "disk_blocks": self.disk.total_blocks,
            "buffer_blocks": self.disk.buffer.capacity_blocks,
            "prefilter": (
                self.prefilter.describe() if self.prefilter is not None else "off"
            ),
        }
        info.update(self.access_method.summary())
        return info
