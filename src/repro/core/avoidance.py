"""Triangle-inequality distance avoidance (Sec. 5.2, Lemmas 1 and 2).

Given the distances between all pairs of query objects (the query
distance matrix) and the distances between the current database object
``O`` and some already-handled query objects ``Q_j``, the calculation of
``dist(O, Q_i)`` is *avoidable* when either lemma proves it exceeds the
current query distance ``r_i``:

* Lemma 1: ``dist(O, Q_j) >  dist(Q_i, Q_j) + r_i``  (``O`` far, queries close)
* Lemma 2: ``dist(Q_i, Q_j) >  dist(O, Q_j) + r_i``  (``O`` close, queries far)

Both conditions use a strict inequality so the conclusion
``dist(O, Q_i) > r_i`` is strict, which keeps boundary objects
(``dist == eps``) in range-query answers, as Definition 2 requires.

Every evaluated lemma counts as one *avoiding try* (the paper's
``avoiding_tries`` term in the CPU cost formula); per object the tries
stop at the first success.  Two implementations with identical counting
semantics are provided: :func:`avoid_reference` (object-at-a-time, the
literal Fig. 4 loop) and :func:`avoid_vectorized` (page-at-a-time with
numpy, used at benchmark scale).
"""

from __future__ import annotations

import math
from typing import Any, Hashable, Sequence

import numpy as np

from repro.costmodel import Counters
from repro.metric.space import MetricSpace


#: Default bound on how many known queries ("pivots") are consulted per
#: avoidance decision.  An unbounded search can spend more time on failed
#: comparisons than the avoided distance calculation would have cost
#: (2 * (m-1) comparisons vs. one distance, and the paper's own parallel
#: results with m = 1600 are only consistent with a bounded search).
#: 32 pivots keep the worst case per object at ``64 * t_cmp``, about one
#: distance calculation at 20-d, while catching nearly all avoidable
#: calculations at every block size -- see the avoidance-pivots ablation
#: benchmark.  Non-positive means unbounded.
DEFAULT_MAX_PIVOTS = 32


def avoid_vectorized(
    known: np.ndarray,
    query_to_known: np.ndarray,
    radius: float,
    counters: Counters,
    max_pivots: int = DEFAULT_MAX_PIVOTS,
    use_lemma1: bool = True,
    use_lemma2: bool = True,
) -> np.ndarray:
    """Vectorised avoidance test for one query over a page of objects.

    Parameters
    ----------
    known:
        Array of shape ``(n_known, n_objects)``: row ``j`` holds the
        distances of each page object to the already-handled query
        ``Q_j``; entries are NaN where that distance itself was avoided
        (an unknown value can never be used in a lemma).
    query_to_known:
        Array of shape ``(n_known,)``: ``dist(Q_i, Q_j)`` from the query
        distance matrix.
    radius:
        The current query distance ``r_i`` of ``Q_i``.
    max_pivots:
        Consult at most this many known queries; non-positive means
        unbounded.
    use_lemma1, use_lemma2:
        Per-lemma switches for the ablation study; both default on.

    Returns
    -------
    Boolean mask over the page objects: ``True`` where computing
    ``dist(O, Q_i)`` is avoidable.
    """
    n_objects = known.shape[1] if known.size else 0
    if known.size == 0 or math.isinf(radius):
        return np.zeros(n_objects, dtype=bool)
    n_known = known.shape[0]
    if max_pivots > 0:
        n_known = min(n_known, max_pivots)
    known = known[:n_known]
    query_to_known = query_to_known[:n_known]

    # Evaluate both lemmas for every (pivot, object) pair in one sweep,
    # then replay the per-object early stop ("tries end at the first
    # successful pivot") as arithmetic on the success matrix.  NaN rows
    # (the distance to Q_j was itself avoided) never match and are never
    # charged a try.
    valid = ~np.isnan(known)
    if use_lemma1:
        # Lemma 1: dist(O, Q_j) > dist(Q_i, Q_j) + r_i
        lemma1 = valid & (known > (query_to_known + radius)[:, None])
    else:
        lemma1 = np.zeros_like(valid)
    if use_lemma2:
        # Lemma 2: dist(Q_i, Q_j) > dist(O, Q_j) + r_i
        lemma2 = valid & ~lemma1 & (query_to_known[:, None] > known + radius)
        success = lemma1 | lemma2
    else:
        success = lemma1
    first = np.where(success.any(axis=0), success.argmax(axis=0), n_known)
    avoided = first < n_known

    # Tries: each valid pivot consulted before the first success costs
    # one try per enabled lemma; the successful pivot costs one try when
    # Lemma 1 fires and (use_lemma1 + 1) when Lemma 2 fires.
    tries_per_pivot = int(use_lemma1) + int(use_lemma2)
    if tries_per_pivot:
        columns = np.arange(n_objects)
        cumulative_valid = np.cumsum(valid, axis=0)
        valid_before = np.where(
            first > 0, cumulative_valid[first - 1, columns], 0
        )
        n_lemma1 = int(
            np.count_nonzero(
                avoided & lemma1[np.minimum(first, n_known - 1), columns]
            )
        )
        n_lemma2 = int(np.count_nonzero(avoided)) - n_lemma1
        counters.avoidance_tries += (
            tries_per_pivot * int(valid_before.sum())
            + n_lemma1
            + n_lemma2 * (int(use_lemma1) + 1)
        )
    counters.avoided_calculations += int(np.count_nonzero(avoided))
    return avoided


def avoid_reference(
    known_for_object: Sequence[tuple[float, float]],
    radius: float,
    counters: Counters,
    use_lemma1: bool = True,
    use_lemma2: bool = True,
) -> bool:
    """Object-at-a-time avoidance test (the literal Fig. 4 inner loop).

    ``known_for_object`` holds ``(dist(O, Q_j), dist(Q_i, Q_j))`` pairs
    for the already-handled queries whose distance to ``O`` was actually
    computed, in handling order, already truncated to the pivot cap by
    the caller.  Returns whether ``dist(O, Q_i)`` is avoidable, charging
    one try per evaluated lemma and stopping at the first success -- the
    same counting as :func:`avoid_vectorized`.
    """
    if math.isinf(radius):
        return False
    avoided = False
    for object_to_known, query_to_known in known_for_object:
        if use_lemma1:
            counters.avoidance_tries += 1
            if object_to_known > query_to_known + radius:  # Lemma 1
                avoided = True
                break
        if use_lemma2:
            counters.avoidance_tries += 1
            if query_to_known > object_to_known + radius:  # Lemma 2
                avoided = True
                break
    if avoided:
        counters.avoided_calculations += 1
    return avoided


class PairwiseDistanceCache:
    """Query-to-query distances (``QObjDists`` in Fig. 4), cached.

    The paper charges ``(m-1) * m / 2`` distance calculations per
    multiple similarity query for the matrix initialisation.  Within an
    incremental processor the same pair may be needed by many successive
    calls; it is computed (and charged) exactly once and dropped when a
    query retires.
    """

    def __init__(self, space: MetricSpace):
        self._space = space
        self._pairs: dict[tuple[Hashable, Hashable], float] = {}

    @staticmethod
    def _key(a: Hashable, b: Hashable) -> tuple[Hashable, Hashable]:
        return (a, b) if a <= b else (b, a)

    def __len__(self) -> int:
        return len(self._pairs)

    def get(self, key_a: Hashable, obj_a: Any, key_b: Hashable, obj_b: Any) -> float:
        """Distance between two query objects, computing it on first use."""
        key = self._key(key_a, key_b)
        value = self._pairs.get(key)
        if value is None:
            value = self._space.d_query_pair(obj_a, obj_b)
            self._pairs[key] = value
        return value

    def matrix(
        self, keys: Sequence[Hashable], objs: Sequence[Any]
    ) -> np.ndarray:
        """Symmetric distance matrix over the given queries.

        Missing pairs are computed and charged; the diagonal is zero.
        """
        m = len(keys)
        matrix = np.zeros((m, m), dtype=float)
        for i in range(m):
            for j in range(i + 1, m):
                value = self.get(keys[i], objs[i], keys[j], objs[j])
                matrix[i, j] = matrix[j, i] = value
        return matrix

    def drop(self, key_a: Hashable) -> None:
        """Forget every cached pair involving ``key_a`` (query retired)."""
        stale = [pair for pair in self._pairs if key_a in pair]
        for pair in stale:
            del self._pairs[pair]

    def clear(self) -> None:
        """Drop all cached pairs."""
        self._pairs.clear()
