"""The multiple similarity query (Definition 4 and Fig. 4).

:class:`MultiQueryProcessor` is the stateful operator the paper proposes
as a basic DBMS operation.  One ``process`` call receives a sequence of
query objects and guarantees complete answers for the *first* of them
(the "driver"); for every other query it collects partial answers from
the pages loaded for the driver and keeps them -- together with the set
of already-processed pages -- in an internal buffer
(``restore_from_buffer`` / ``buffer_answers``).  Repeated calls with the
remaining queries complete the whole batch while never reading a page
twice for the same query.

The query-distance matrix (``QObjDists``) is maintained incrementally in
a slot-recycling array: admitting a query charges one distance
calculation per already-pending query, so a block of m queries pays
exactly the ``(m-1) * m / 2`` initialisation cost of the paper's CPU
formula, and queries dynamically added later (the
ExploreNeighborhoodsMultiple scenario of Sec. 5.1) pay only against the
queries still pending.
"""

from __future__ import annotations

import math
import zlib
from typing import Any, Hashable, Iterator, Sequence

import numpy as np

from repro.core.answers import Answer, AnswerList
from repro.core.avoidance import DEFAULT_MAX_PIVOTS
from repro.core.engine import (
    ENGINE_VECTORIZED,
    PendingQuery,
    get_engine,
)
from repro.core.types import QueryType
from repro.prefilter.replay import replay_pruned_page


MATRIX_EAGER = "eager"
MATRIX_LAZY = "lazy"


class _SlotMatrix:
    """Incrementally maintained query-distance matrix with slot reuse.

    Rows/columns of retired queries are recycled, so the memory footprint
    is bounded by the maximum number of *concurrently* pending queries,
    not by the total number of queries a mining run ever issues.

    Two fill policies address the paper's closing remark that "methods to
    reduce the initialization overhead implied by the query distance
    matrix" should be investigated (Sec. 7):

    * ``eager`` (the paper's scheme): admitting the m-th query computes
      its distance to every pending query, so a block pays the full
      ``(m-1) * m / 2`` cost upfront;
    * ``lazy``: pair distances are computed -- and charged -- only when
      first consulted (as avoidance pivots, relevance bounds or radius
      seeds).  With a bounded pivot set most pairs are never consulted,
      which removes the quadratic term that limits large parallel blocks
      (see the matrix-mode ablation benchmark).
    """

    def __init__(self, space: Any, mode: str = MATRIX_EAGER):
        if mode not in (MATRIX_EAGER, MATRIX_LAZY):
            raise ValueError(f"unknown matrix mode {mode!r}")
        self._space = space
        self.mode = mode
        self._capacity = 0
        self.matrix = np.zeros((0, 0), dtype=float)
        self._known = np.zeros((0, 0), dtype=bool)
        self._objs: list[Any] = []
        self._vectors: np.ndarray | None = None
        self._free: list[int] = []
        self._active: list[int] = []
        # Mirror of ``_active`` for O(1) membership tests: the free-list
        # rebuild after a grow scans every slot, and a list scan there
        # is O(capacity * active) per grow.
        self._active_set: set[int] = set()

    @property
    def n_active(self) -> int:
        return len(self._active)

    def _grow(self, minimum: int) -> None:
        new_capacity = max(16, 2 * self._capacity, minimum)
        grown = np.zeros((new_capacity, new_capacity), dtype=float)
        grown_known = np.zeros((new_capacity, new_capacity), dtype=bool)
        if self._capacity:
            grown[: self._capacity, : self._capacity] = self.matrix
            grown_known[: self._capacity, : self._capacity] = self._known
        self.matrix = grown
        self._known = grown_known
        self._objs.extend([None] * (new_capacity - self._capacity))
        if self._vectors is not None:
            grown_vectors = np.zeros(
                (new_capacity, self._vectors.shape[1]), dtype=float
            )
            grown_vectors[: self._capacity] = self._vectors
            self._vectors = grown_vectors
        self._capacity = new_capacity

    def add(self, obj: Any) -> int:
        """Admit a query object; returns its slot.

        In eager mode this charges one query-matrix distance calculation
        per currently active slot; in lazy mode nothing is computed yet.
        """
        if not self._free:
            self._grow(len(self._active) + 1)
            self._free = [
                slot
                for slot in range(self._capacity - 1, -1, -1)
                if slot not in self._active_set and self._objs[slot] is None
            ]
        slot = self._free.pop()
        self._objs[slot] = obj

        is_vector = (
            self._space.distance.is_vector_metric and np.ndim(obj) == 1
        )
        if is_vector:
            vector = np.asarray(obj, dtype=float)
            if self._vectors is None:
                self._vectors = np.zeros((self._capacity, vector.size), dtype=float)
            self._vectors[slot] = vector
        self._known[slot, :] = False
        self._known[:, slot] = False
        if self._active and self.mode == MATRIX_EAGER:
            self._compute_pairs(slot, list(self._active))
        self.matrix[slot, slot] = 0.0
        self._known[slot, slot] = True
        self._active.append(slot)
        self._active_set.add(slot)
        return slot

    def _compute_pairs(self, slot: int, others: list[int]) -> None:
        """Compute and charge the distances from ``slot`` to ``others``."""
        distance = self._space.distance
        obj = self._objs[slot]
        self._space.counters.query_matrix_distance_calculations += len(others)
        if (
            self._vectors is not None
            and distance.is_vector_metric
            and np.ndim(obj) == 1
        ):
            values = distance.many(self._vectors[others], np.asarray(obj, float))
        else:
            values = np.array(
                [distance.one(self._objs[other], obj) for other in others]
            )
        self.matrix[slot, others] = values
        self.matrix[others, slot] = values
        self._known[slot, others] = True
        self._known[others, slot] = True

    def remove(self, slot: int) -> None:
        """Retire a slot; its row becomes reusable."""
        self._active.remove(slot)
        self._active_set.discard(slot)
        self._objs[slot] = None
        self._free.append(slot)

    def row(self, slot: int, other_slots: Sequence[int]) -> np.ndarray:
        """Distances from one query to a set of others, filling gaps."""
        return self.pairs(slot, other_slots)

    def pairs(self, slot: int, other_slots: Sequence[int]) -> np.ndarray:
        """Distances from one query to a set of others, filling gaps.

        In lazy mode, pairs not yet known are computed (and charged)
        here, at first use.
        """
        others = list(other_slots)
        if self.mode == MATRIX_LAZY and others:
            missing = [o for o in others if not self._known[slot, o]]
            if missing:
                self._compute_pairs(slot, missing)
        return self.matrix[slot, others]


def query_label(key: Hashable) -> str:
    """Compact, process-stable trace label of a query key.

    Explicit keys (``("serve", 3)``, ``("parallel", 17)``) render as
    their ``str``; :func:`default_query_key` keys embed the query
    object's raw bytes, which are digested (CRC32 -- stable across
    processes, unlike ``hash``) so trace attributes stay small.  The
    label is what ``query.admit`` / ``query.drive`` records carry and
    what :mod:`repro.obs.provenance` joins cards on.
    """
    if (
        isinstance(key, tuple)
        and len(key) == 3
        and key[0] == "array"
        and isinstance(key[1], bytes)
    ):
        digest = zlib.crc32(key[1]) & 0xFFFFFFFF
        return f"('array', {digest:#010x}, {key[2]})"
    return str(key)


def default_query_key(obj: Any, qtype: QueryType) -> Hashable:
    """Identity of a query within a processor's buffer.

    Numpy query objects hash by content; everything else by value.  The
    query type is part of the key because the same object may be queried
    with different types.
    """
    if isinstance(obj, np.ndarray):
        return ("array", obj.tobytes(), qtype)
    return ("object", obj, qtype)


class MultiQueryProcessor:
    """Incremental multiple-similarity-query operator (Fig. 4).

    Parameters
    ----------
    database:
        The :class:`~repro.core.database.Database` to query.
    engine:
        ``"batched"``, ``"vectorized"``, ``"reference"`` or ``None``
        (the database default).  ``batched`` evaluates a whole page x
        query-batch in one fused kernel and falls back to
        object-at-a-time evaluation for non-vector metrics.
    use_avoidance:
        Enable the triangle-inequality CPU optimisation (Sec. 5.2).
    max_pivots:
        Bound on the known queries consulted per avoidance decision
        (see :data:`repro.core.avoidance.DEFAULT_MAX_PIVOTS`);
        non-positive means unbounded.
    seed_from_queries:
        When the query objects are *database members* (the evaluation
        setup of Sec. 6) the query-distance matrix row of a k-NN query
        contains distances to other database objects, so its k-th
        smallest entry is a valid upper bound on the final query
        distance.  Enabling this seeds each query's radius with that
        bound, tightening page relevance from the start.  It never
        changes answers, but it is only *sound* when every batch query
        carries its dataset index (``db_indices``/``keys``).
    matrix_mode:
        ``"eager"`` (paper scheme: the full pairwise matrix is paid per
        block) or ``"lazy"`` (pairs computed at first use; addresses the
        Sec. 7 future-work item on matrix initialisation overhead).
    warm_start:
        Definition 4 only requires the driver's answers to be complete;
        ``determine_relevant_data_pages`` may add any pages relevant to
        the other queries.  With warm start, each newly admitted query
        has its single best page (the head of its own page stream)
        processed immediately, which collapses its query distance to a
        near-final value and makes both the page-relevance test and the
        avoidance lemmas effective from the first driver call.  Answers
        are unaffected.  Ignored for sequential access methods, whose
        streams are not distance-ranked.
    observer:
        Optional :class:`~repro.obs.Observer`.  Defaults to the
        database's attached observer; when neither is set the processor
        uses the raw (uninstrumented) engine functions and emits
        nothing.  Observation never changes answers or counters.
    prefilter:
        Page pre-filter tier: ``None`` inherits the database's
        (``Database.prefilter``), ``False`` disables it for this
        processor, or pass a :class:`~repro.prefilter.PagePrefilter`
        directly.  In exact mode (the default) the filter replays
        provably empty pages instead of evaluating them, so answers and
        counters stay byte-identical to running without it.
    access:
        Access method serving this processor's page streams: ``None``
        (the database's configured method) or any name accepted by
        :meth:`~repro.core.database.Database.access_method_for`.  Makes
        the access method a per-block decision: one database can serve
        concurrent blocks through different index structures over the
        same pages and counters.
    """

    def __init__(
        self,
        database: Any,
        engine: str | None = None,
        use_avoidance: bool = True,
        max_pivots: int = DEFAULT_MAX_PIVOTS,
        seed_from_queries: bool = False,
        warm_start: bool = False,
        use_lemma1: bool = True,
        use_lemma2: bool = True,
        matrix_mode: str = MATRIX_EAGER,
        observer: Any = None,
        prefilter: Any = None,
        access: str | None = None,
    ):
        self.database = database
        self.access = (
            database.access_method
            if access is None
            else database.access_method_for(access)
        )
        self.space = database.space
        self.disk = database.disk
        self.dataset = database.dataset
        engine_name = engine if engine is not None else database.engine
        if engine_name == ENGINE_VECTORIZED and not self.dataset.is_vector:
            raise ValueError("the vectorized engine requires a vector dataset")
        self.engine_name = engine_name
        self.observer = (
            observer if observer is not None else getattr(database, "observer", None)
        )
        self._process_page = get_engine(engine_name, self.observer)
        self.use_avoidance = use_avoidance
        self.max_pivots = max_pivots
        self.use_lemma1 = use_lemma1
        self.use_lemma2 = use_lemma2
        self.seed_from_queries = seed_from_queries
        self.warm_start = warm_start and not self.access.sequential_data_access
        if prefilter is None:
            prefilter = getattr(database, "prefilter", None)
            if prefilter is not None and self.access is not database.access_method:
                # The database's sketches cover only its primary access
                # method's pages; a variant's page ids are unknown to
                # them, so the inherited filter is disabled rather than
                # silently mispriced.
                prefilter = None
        elif prefilter is False:
            prefilter = None
        self.prefilter = prefilter
        self._pending: dict[Hashable, PendingQuery] = {}
        self._slots = _SlotMatrix(self.space, mode=matrix_mode)
        self._n_data_pages = len(self.access.data_pages())

    # ------------------------------------------------------------------
    # Buffer management
    # ------------------------------------------------------------------

    @property
    def pending_queries(self) -> list[PendingQuery]:
        """Currently buffered queries (complete and incomplete)."""
        return list(self._pending.values())

    @property
    def n_data_pages(self) -> int:
        """Total data pages of the access method (completeness bounds)."""
        return self._n_data_pages

    def admit(
        self,
        obj: Any,
        qtype: QueryType,
        key: Hashable | None = None,
        db_index: int | None = None,
    ) -> PendingQuery:
        """Restore a query from the buffer or register a new one."""
        if key is None:
            key = default_query_key(obj, qtype)
        pending = self._pending.get(key)
        if pending is not None:
            if pending.qtype != qtype:
                raise ValueError(
                    f"query key {key!r} already buffered with a different type"
                )
            return pending
        pending = PendingQuery(
            key=key,
            obj=obj,
            qtype=qtype,
            answers=AnswerList(qtype),
            slot=self._slots.add(obj),
            db_index=db_index,
        )
        self._pending[key] = pending
        if self.observer is not None:
            self.observer.event(
                "query.admit",
                slot=pending.slot,
                kind=qtype.kind,
                pending=len(self._pending),
                query=query_label(key),
            )
        return pending

    def retire(self, key: Hashable) -> None:
        """Drop a buffered query and recycle its matrix slot."""
        pending = self._pending.pop(key, None)
        if pending is not None:
            self._slots.remove(pending.slot)

    def clear(self) -> None:
        """Drop the whole buffer (start a fresh block)."""
        for key in list(self._pending):
            self.retire(key)

    def _mark_complete(self, pending: PendingQuery) -> None:
        if not pending.complete:
            pending.complete = True
            self.space.counters.queries_completed += 1

    # ------------------------------------------------------------------
    # Query processing
    # ------------------------------------------------------------------

    def lookup(self, key: Hashable) -> PendingQuery | None:
        """The buffered query registered under ``key``, if any."""
        return self._pending.get(key)

    def process(
        self,
        query_objs: Sequence[Any],
        qtypes: Sequence[QueryType] | QueryType,
        keys: Sequence[Hashable] | None = None,
        db_indices: Sequence[int | None] | None = None,
    ) -> list[Answer]:
        """One multiple-similarity-query call (Fig. 4).

        Completes the first query and returns its answers; the other
        queries accumulate partial answers in the buffer.
        """
        driver, others = self.prepare(query_objs, qtypes, keys, db_indices)
        if not driver.complete:
            self._drive(driver, others)
        return driver.answers.materialize()

    def prepare(
        self,
        query_objs: Sequence[Any],
        qtypes: Sequence[QueryType] | QueryType,
        keys: Sequence[Hashable] | None = None,
        db_indices: Sequence[int | None] | None = None,
    ) -> tuple[PendingQuery, list[PendingQuery]]:
        """Admit a batch and return ``(driver, others)`` ready to drive.

        Everything :meth:`process` does short of the drive itself:
        validation, buffer restore/admission, duplicate folding, radius
        seeding and warm start.  :class:`~repro.service.QuerySession`
        uses this entry point to run the same preparation as the batch
        path before streaming the drive page by page.
        """
        qtypes = self._broadcast_types(qtypes, len(query_objs))
        if len(query_objs) != len(qtypes):
            raise ValueError("need one query type per query object")
        if not query_objs:
            raise ValueError("need at least one query object")
        if keys is not None and len(keys) != len(query_objs):
            raise ValueError("need one key per query object")
        if db_indices is not None and len(db_indices) != len(query_objs):
            raise ValueError("need one dataset index (or None) per query object")
        pendings = [
            self.admit(
                obj,
                qtype,
                keys[i] if keys is not None else None,
                db_indices[i] if db_indices is not None else None,
            )
            for i, (obj, qtype) in enumerate(zip(query_objs, qtypes))
        ]
        # Duplicate query objects resolve to one shared pending; keep a
        # single occurrence so no page is processed twice for it.
        seen: set[int] = set()
        pendings = [
            p for p in pendings if not (id(p) in seen or seen.add(id(p)))
        ]
        if self.seed_from_queries:
            self.seed_radius_hints(pendings)
        if self.warm_start:
            self.warm_up(pendings)
        return pendings[0], pendings[1:]

    def warm_up(self, pendings: Sequence[PendingQuery]) -> None:
        """Process each new query's best page to tighten its radius."""
        counters = self.space.counters
        for pending in pendings:
            if pending.complete or pending.warmed:
                continue
            pending.warmed = True
            stream = self.access.page_stream(pending.obj)
            item = stream.next_page(pending.radius)
            while item is not None and item[1].page_id in pending.processed_pages:
                item = stream.next_page(pending.radius)
            if item is None:
                continue
            __, page = item
            self.disk.read(page, sequential=self.access.sequential_data_access)
            self._process_page(
                page,
                [pending],
                self.dataset,
                self.space,
                self._slots,
                counters,
                use_avoidance=False,
            )
            if len(pending.processed_pages) >= self._n_data_pages:
                self._mark_complete(pending)

    def seed_radius_hints(self, pendings: Sequence[PendingQuery]) -> None:
        """Derive radius upper bounds from the query-distance matrix.

        For a k-NN query whose batch contains at least k other queries
        over *distinct database objects*, those objects are themselves
        candidate answers at the distances the matrix already holds, so
        the k-th smallest row entry bounds the final query distance.
        Each query is seeded once, on its first processed batch.
        """
        for pending in pendings:
            if pending.seeded or pending.complete:
                continue
            if not pending.qtype.adapts_radius or pending.db_index is None:
                pending.seeded = True
                continue
            pending.seeded = True
            others: dict[int, int] = {}
            for other in pendings:
                if other is pending or other.db_index is None:
                    continue
                if other.db_index != pending.db_index:
                    others.setdefault(other.db_index, other.slot)
            k = pending.qtype.k
            if len(others) < k:
                continue
            row = self._slots.row(pending.slot, list(others.values()))
            hint = float(np.partition(row, k - 1)[k - 1])
            if hint < pending.radius_hint:
                pending.radius_hint = hint

    def query_all(
        self,
        query_objs: Sequence[Any],
        qtypes: Sequence[QueryType] | QueryType,
        keys: Sequence[Hashable] | None = None,
        retire: bool = True,
        db_indices: Sequence[int | None] | None = None,
    ) -> list[list[Answer]]:
        """Answer every query of a batch completely.

        Implements the repeated-call pattern of Sec. 5.1: the method is
        called for ``[Q_1..Q_m]``, then ``[Q_2..Q_m]``, and so on; each
        call restores the partial answers of the previous ones from the
        buffer.
        """
        qtypes = self._broadcast_types(qtypes, len(query_objs))
        results = []
        for i in range(len(query_objs)):
            sub_keys = keys[i:] if keys is not None else None
            sub_indices = db_indices[i:] if db_indices is not None else None
            results.append(
                self.process(query_objs[i:], qtypes[i:], sub_keys, sub_indices)
            )
        if retire:
            for i, (obj, qtype) in enumerate(zip(query_objs, qtypes)):
                key = keys[i] if keys is not None else default_query_key(obj, qtype)
                self.retire(key)
        return results

    @staticmethod
    def _broadcast_types(
        qtypes: Sequence[QueryType] | QueryType, n: int
    ) -> list[QueryType]:
        if isinstance(qtypes, QueryType):
            return [qtypes] * n
        return list(qtypes)

    def _drive(self, driver: PendingQuery, others: Sequence[PendingQuery]) -> None:
        """Complete ``driver``, collecting partial answers for ``others``."""
        if self.observer is not None:
            with self.observer.phase(
                "query.drive",
                slot=driver.slot,
                others=len(others),
                query=query_label(driver.key),
            ):
                self._drive_inner(driver, others)
            return
        self._drive_inner(driver, others)

    def _drive_inner(
        self, driver: PendingQuery, others: Sequence[PendingQuery]
    ) -> None:
        for _ in self.drive_pages(driver, others):
            pass

    def drive_pages(
        self, driver: PendingQuery, others: Sequence[PendingQuery]
    ) -> "Iterator[float]":
        """Page-step generator behind both execution paths.

        This is the loop of Fig. 4: pull the next relevant page from the
        driver's stream, read it, and evaluate the batch against it.
        Before each page is read, the generator yields the page's lower
        bound on the driver distance.  Because page streams deliver
        pages in non-decreasing lower-bound order, every current driver
        answer strictly below that bound is final -- this is the hook
        :class:`~repro.service.QuerySession` uses to stream confirmed
        answers incrementally (Def. 4), while the batch path simply
        drains the generator.  Draining without acting on the yields is
        exactly the pre-generator loop: answers and counters are
        byte-identical.

        With a page pre-filter attached, each delivered page passes the
        sketch tier first: in exact mode a page provably empty for the
        whole batch is *replayed* (identical counters, no engine
        kernels) after the usual read and batch formation; in the
        opt-in approximate mode a page whose driver bound exceeds
        ``recall_target * radius`` is dropped before it is even read.
        """
        stream = self.access.page_stream(driver.obj)
        counters = self.space.counters
        drive_filter = (
            self.prefilter.open_drive([driver, *others], self.observer)
            if self.prefilter is not None
            else None
        )
        while True:
            item = stream.next_page(driver.radius)
            if item is None:
                break
            lower_bound, page = item
            if page.page_id in driver.processed_pages:
                continue
            if drive_filter is not None and drive_filter.skip_before_read(
                driver, page
            ):
                driver.processed_pages.add(page.page_id)
                driver.approx_pruned += 1
                continue
            yield lower_bound
            self.disk.read(
                page, sequential=self.access.sequential_data_access
            )
            batch = [driver]
            active_others = [
                p
                for p in others
                if not p.complete and page.page_id not in p.processed_pages
            ]
            if active_others:
                driver_distances = self._slots.row(
                    driver.slot, [p.slot for p in active_others]
                )
                bounds = stream.lower_bounds_for_others(
                    page,
                    [p.obj for p in active_others],
                    lower_bound,
                    driver_distances,
                )
                batch.extend(
                    p
                    for p, bound in zip(active_others, bounds)
                    if bound <= p.radius
                )
            if drive_filter is not None and drive_filter.provably_empty(
                batch, page
            ):
                # Exact replay: every counter charge of the engine call
                # below, none of its kernels (see repro.prefilter.replay).
                replay_pruned_page(
                    page,
                    batch,
                    self.dataset,
                    self.space,
                    self._slots,
                    counters,
                    use_avoidance=self.use_avoidance,
                    max_pivots=self.max_pivots,
                    use_lemma1=self.use_lemma1,
                    use_lemma2=self.use_lemma2,
                )
            else:
                self._process_page(
                    page,
                    batch,
                    self.dataset,
                    self.space,
                    self._slots,
                    counters,
                    use_avoidance=self.use_avoidance,
                    max_pivots=self.max_pivots,
                    use_lemma1=self.use_lemma1,
                    use_lemma2=self.use_lemma2,
                )
            for query in batch:
                if len(query.processed_pages) >= self._n_data_pages:
                    self._mark_complete(query)
        self._mark_complete(driver)
        if drive_filter is not None:
            drive_filter.finish()


def run_in_blocks(
    database: Any,
    query_objs: Sequence[Any],
    qtypes: Sequence[QueryType] | QueryType,
    block_size: int,
    engine: str | None = None,
    use_avoidance: bool = True,
    max_pivots: int = DEFAULT_MAX_PIVOTS,
    db_indices: Sequence[int | None] | None = None,
    warm_start: bool = False,
) -> list[list[Answer]]:
    """Process ``M`` queries in consecutive blocks of ``block_size``.

    This is the evaluation setup of Sec. 5: memory bounds the number of
    simultaneously buffered queries, so a workload of M queries runs as
    ``M / m`` independent multiple similarity queries.  Each block gets a
    fresh session (fresh answer buffer and query-distance matrix); the
    disk's LRU buffer persists across blocks like a DBMS buffer would.

    The implementation lives in :mod:`repro.service.session` -- each
    block is one :class:`~repro.service.QuerySession` drained to
    completion -- and is re-exported here for backwards compatibility.
    """
    from repro.service.session import run_in_blocks as _run_in_blocks

    return _run_in_blocks(
        database,
        query_objs,
        qtypes,
        block_size,
        engine=engine,
        use_avoidance=use_avoidance,
        max_pivots=max_pivots,
        db_indices=db_indices,
        warm_start=warm_start,
    )
