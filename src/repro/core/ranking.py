"""Incremental neighbour ranking (Hjaltason & Samet [13]).

The paper's ``determine_relevant_data_pages`` is based on the ranking
algorithm of [13]: data pages are visited in ascending order of their
distance lower bound, which provably minimises the number of pages read
for a k-NN query.  This module exposes the algorithm directly as a lazy
generator: neighbours are produced one at a time in ascending distance
order, and pages are only read when the next candidate cannot yet be
proven to be the next neighbour.

Useful wherever k is not known in advance -- e.g. "give me neighbours
until the distance doubles" -- and as the reference for the page-stream
implementations.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Iterator

from repro.core.answers import Answer


def neighbor_ranking(database: Any, query_obj: Any) -> Iterator[Answer]:
    """Yield database objects in ascending distance from ``query_obj``.

    Lazily reads data pages via the database's access method: a
    candidate object is emitted only once its distance is no larger than
    the lower bound of every unread page, so consuming the first k
    results costs exactly the pages a k-NN query would read.

    >>> # first three neighbours without fixing k upfront:
    >>> # [next(it) for _ in range(3)] where it = neighbor_ranking(db, q)
    """
    access = database.access_method
    stream = access.page_stream(query_obj)
    sequential = access.sequential_data_access
    candidates: list[tuple[float, int]] = []
    next_item = stream.next_page(math.inf)
    while True:
        while next_item is not None and (
            not candidates or next_item[0] <= candidates[0][0]
        ):
            _, page = next_item
            database.disk.read(page, sequential=sequential)
            objects = database.dataset.batch(page.indices)
            distances = database.space.d_many(objects, query_obj)
            for index, distance in zip(page.indices, distances):
                heapq.heappush(candidates, (float(distance), int(index)))
            next_item = stream.next_page(math.inf)
        if not candidates:
            return
        distance, index = heapq.heappop(candidates)
        yield Answer(index, distance)


def neighbors_within_factor(
    database: Any, query_obj: Any, factor: float, max_results: int = 1000
) -> list[Answer]:
    """All neighbours within ``factor`` times the nearest distance.

    A classic use of incremental ranking: the cut-off depends on the
    first result, so no fixed k or radius exists upfront.  The nearest
    neighbour itself is always included; with a nearest distance of 0
    (the query object is a database member) only distance-0 objects
    qualify.
    """
    if factor < 1.0:
        raise ValueError("factor must be at least 1")
    results: list[Answer] = []
    for answer in neighbor_ranking(database, query_obj):
        if results and answer.distance > factor * results[0].distance:
            break
        results.append(answer)
        if len(results) >= max_results:
            break
    return results
