"""The paper's primary contribution: single and multiple similarity queries.

Public surface:

* :class:`~repro.core.types.QueryType` with the constructors
  :func:`~repro.core.types.range_query`,
  :func:`~repro.core.types.knn_query` and
  :func:`~repro.core.types.bounded_knn_query` (Definitions 1-3);
* :class:`~repro.core.database.Database`, the facade tying together a
  dataset, metric, simulated disk and access method, offering
  ``similarity_query`` (Fig. 1), ``multiple_similarity_query`` (Fig. 4)
  and measured runs;
* :class:`~repro.core.multi_query.MultiQueryProcessor`, the stateful,
  incremental multiple-query operator of Definition 4.
"""

from repro.core.answers import Answer, AnswerList
from repro.core.avoidance import PairwiseDistanceCache, avoid_reference, avoid_vectorized
from repro.core.database import Database, MeasuredRun
from repro.core.multi_query import MultiQueryProcessor, run_in_blocks
from repro.core.planner import CostFit, QueryPlanner, WorkloadPlan
from repro.core.ranking import neighbor_ranking, neighbors_within_factor
from repro.core.types import QueryType, bounded_knn_query, knn_query, range_query

__all__ = [
    "Answer",
    "AnswerList",
    "CostFit",
    "Database",
    "MeasuredRun",
    "MultiQueryProcessor",
    "PairwiseDistanceCache",
    "QueryType",
    "avoid_reference",
    "avoid_vectorized",
    "bounded_knn_query",
    "knn_query",
    "neighbor_ranking",
    "neighbors_within_factor",
    "QueryPlanner",
    "range_query",
    "run_in_blocks",
    "WorkloadPlan",
]
