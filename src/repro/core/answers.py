"""Answer lists with the query-distance semantics of Fig. 1.

The answer list of a similarity query keeps at most ``T.cardinality``
answers within distance ``T.range`` and exposes the *current query
distance* (``QueryDist`` in the paper): the radius beyond which no
object can improve the answer set.  For k-NN queries the radius shrinks
to the k-th best distance once k candidates are known; for range queries
it stays at ``eps``.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, NamedTuple

from repro.core.types import QueryType


class Answer(NamedTuple):
    """One answer: dataset index and distance to the query object."""

    index: int
    distance: float


class AnswerList:
    """Bounded, radius-tracking answer collection for one query."""

    __slots__ = ("qtype", "_heap", "_items")

    def __init__(self, qtype: QueryType):
        self.qtype = qtype
        if qtype.adapts_radius:
            # Max-heap of (-distance, -index) keeping the k best answers.
            self._heap: list[tuple[float, int]] = []
            self._items = None
        else:
            self._heap = []
            self._items: list[Answer] | None = []

    @property
    def radius(self) -> float:
        """Current query distance (``QueryDist``).

        Objects at a distance strictly greater than this radius cannot
        enter the answer set any more.
        """
        if not self.qtype.adapts_radius:
            return self.qtype.range
        if len(self._heap) < self.qtype.k:
            return self.qtype.range
        return -self._heap[0][0]

    def __len__(self) -> int:
        if self._items is not None:
            return len(self._items)
        return len(self._heap)

    def offer(self, index: int, distance: float) -> bool:
        """Consider one candidate; return whether it was accepted.

        Implements ``Answers.insert`` / ``remove_last_element`` of
        Fig. 1: candidates beyond the range are rejected, and once the
        cardinality is reached only strictly closer candidates displace
        the current k-th answer.
        """
        if distance > self.qtype.range:
            return False
        if self._items is not None:
            self._items.append(Answer(index, distance))
            return True
        entry = (-distance, -index)
        if len(self._heap) < self.qtype.k:
            heapq.heappush(self._heap, entry)
            return True
        if distance < -self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def offer_many(self, indices: Iterable[int], distances: Iterable[float]) -> None:
        """Consider candidates in order (page processing helper)."""
        for index, distance in zip(indices, distances):
            self.offer(int(index), float(distance))

    def materialize(self) -> list[Answer]:
        """Return the answers in ascending order of distance.

        Ties are broken by ascending dataset index so that both query
        engines produce identical output.
        """
        if self._items is not None:
            return sorted(self._items, key=lambda a: (a.distance, a.index))
        return sorted(
            (Answer(-neg_index, -neg_dist) for neg_dist, neg_index in self._heap),
            key=lambda a: (a.distance, a.index),
        )

    @property
    def is_saturated(self) -> bool:
        """Whether the cardinality bound has been reached (k-NN only)."""
        return self.qtype.adapts_radius and len(self._heap) >= self.qtype.k

    def __repr__(self) -> str:
        radius = self.radius
        radius_repr = "inf" if math.isinf(radius) else f"{radius:.4g}"
        return f"AnswerList(n={len(self)}, radius={radius_repr})"
