"""Answer lists with the query-distance semantics of Fig. 1.

The answer list of a similarity query keeps at most ``T.cardinality``
answers within distance ``T.range`` and exposes the *current query
distance* (``QueryDist`` in the paper): the radius beyond which no
object can improve the answer set.  For k-NN queries the radius shrinks
to the k-th best distance once k candidates are known; for range queries
it stays at ``eps``.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, NamedTuple

import numpy as np

from repro.core.types import QueryType


class Answer(NamedTuple):
    """One answer: dataset index and distance to the query object."""

    index: int
    distance: float


class AnswerList:
    """Bounded, radius-tracking answer collection for one query."""

    __slots__ = ("qtype", "_heap", "_items")

    def __init__(self, qtype: QueryType):
        self.qtype = qtype
        if qtype.adapts_radius:
            # Max-heap of (-distance, -index) keeping the k best answers.
            self._heap: list[tuple[float, int]] = []
            self._items = None
        else:
            self._heap = []
            self._items: list[Answer] | None = []

    @property
    def radius(self) -> float:
        """Current query distance (``QueryDist``).

        Objects at a distance strictly greater than this radius cannot
        enter the answer set any more.
        """
        if not self.qtype.adapts_radius:
            return self.qtype.range
        if len(self._heap) < self.qtype.k:
            return self.qtype.range
        return -self._heap[0][0]

    def __len__(self) -> int:
        if self._items is not None:
            return len(self._items)
        return len(self._heap)

    def offer(self, index: int, distance: float) -> bool:
        """Consider one candidate; return whether it was accepted.

        Implements ``Answers.insert`` / ``remove_last_element`` of
        Fig. 1: candidates beyond the range are rejected, and once the
        cardinality is reached only strictly closer candidates displace
        the current k-th answer.
        """
        if distance > self.qtype.range:
            return False
        if self._items is not None:
            self._items.append(Answer(index, distance))
            return True
        entry = (-distance, -index)
        if len(self._heap) < self.qtype.k:
            heapq.heappush(self._heap, entry)
            return True
        if distance < -self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def offer_many(self, indices: Iterable[int], distances: Iterable[float]) -> None:
        """Consider candidates in order (page processing helper).

        Semantically identical to offering one by one, but candidates
        that provably cannot be accepted are dropped up front with a
        single vectorised comparison: the radius never grows during an
        offer sequence, so anything beyond the range (or, once
        saturated, at or beyond the current k-th distance) is rejected
        no matter when it is offered.
        """
        distances = np.asarray(distances, dtype=float)
        if distances.size == 0:
            return
        indices = np.asarray(indices)
        qtype = self.qtype
        limit = qtype.range
        if self._items is not None:
            mask = distances <= limit
            if mask.any():
                append = self._items.append
                for pair in zip(indices[mask].tolist(), distances[mask].tolist()):
                    append(Answer(*pair))
            return
        heap = self._heap
        k = qtype.k
        mask = None
        if math.isfinite(limit):
            mask = distances <= limit
        if len(heap) >= k:
            tighter = distances < -heap[0][0]
            mask = tighter if mask is None else mask & tighter
        if mask is not None:
            if not mask.any():
                return
            indices = indices[mask]
            distances = distances[mask]
        push = heapq.heappush
        replace = heapq.heapreplace
        for index, distance in zip(indices.tolist(), distances.tolist()):
            if distance > limit:
                continue
            if len(heap) < k:
                push(heap, (-distance, -index))
            elif distance < -heap[0][0]:
                replace(heap, (-distance, -index))

    def materialize(self) -> list[Answer]:
        """Return the answers in ascending order of distance.

        Ties are broken by ascending dataset index so that both query
        engines produce identical output.
        """
        if self._items is not None:
            return sorted(self._items, key=lambda a: (a.distance, a.index))
        return sorted(
            (Answer(-neg_index, -neg_dist) for neg_dist, neg_index in self._heap),
            key=lambda a: (a.distance, a.index),
        )

    @property
    def is_saturated(self) -> bool:
        """Whether the cardinality bound has been reached (k-NN only)."""
        return self.qtype.adapts_radius and len(self._heap) >= self.qtype.k

    def __repr__(self) -> str:
        radius = self.radius
        radius_repr = "inf" if math.isinf(radius) else f"{radius:.4g}"
        return f"AnswerList(n={len(self)}, radius={radius_repr})"
