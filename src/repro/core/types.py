"""Similarity query types (Definitions 1-3 of the paper).

A query type ``T`` has three components: ``T.range`` (maximum distance),
``T.cardinality`` (maximum answer count) and ``T.kind`` (how the two
conditions combine).  Range queries and k-nearest-neighbour queries are
the two classic specialisations; the combined form ("the k nearest, but
only within distance eps") is also supported, as suggested at the end of
Sec. 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

KIND_RANGE = "range"
KIND_KNN = "k-nearest neighbor"
KIND_BOUNDED_KNN = "bounded k-nearest neighbor"

_VALID_KINDS = frozenset({KIND_RANGE, KIND_KNN, KIND_BOUNDED_KNN})


@dataclass(frozen=True)
class QueryType:
    """Specification of a similarity query (Definition 1).

    Attributes
    ----------
    range:
        Maximum distance between the query object and an answer
        (``eps`` for range queries, ``+inf`` for pure k-NN queries).
    cardinality:
        Maximum number of answers (``k`` for k-NN queries; ``math.inf``
        for pure range queries).
    kind:
        One of ``"range"``, ``"k-nearest neighbor"`` or
        ``"bounded k-nearest neighbor"``.
    """

    range: float = math.inf
    cardinality: float = math.inf
    kind: str = KIND_RANGE

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(f"unknown query kind {self.kind!r}")
        if self.range < 0 or math.isnan(self.range):
            raise ValueError("range must be a non-negative number")
        if self.cardinality != math.inf:
            if self.cardinality < 1 or int(self.cardinality) != self.cardinality:
                raise ValueError("cardinality must be a positive integer or inf")
        if self.kind == KIND_RANGE and math.isinf(self.range):
            raise ValueError("a range query needs a finite range")
        if self.kind in (KIND_KNN, KIND_BOUNDED_KNN) and math.isinf(self.cardinality):
            raise ValueError("a k-NN query needs a finite cardinality")
        if self.kind == KIND_BOUNDED_KNN and math.isinf(self.range):
            raise ValueError("a bounded k-NN query needs a finite range")

    @property
    def adapts_radius(self) -> bool:
        """Whether the query distance shrinks as answers accumulate.

        ``adapt_query_dist`` in Fig. 1 changes the query distance only
        for k-NN-style queries, never for pure range queries.
        """
        return self.cardinality != math.inf

    @property
    def k(self) -> int:
        """Cardinality as an integer (only for finite cardinalities)."""
        if math.isinf(self.cardinality):
            raise ValueError("query type has unbounded cardinality")
        return int(self.cardinality)


def range_query(eps: float) -> QueryType:
    """Range query (Definition 2): all objects within distance ``eps``."""
    return QueryType(range=eps, cardinality=math.inf, kind=KIND_RANGE)


def knn_query(k: int) -> QueryType:
    """k-nearest-neighbour query (Definition 3)."""
    return QueryType(range=math.inf, cardinality=k, kind=KIND_KNN)


def bounded_knn_query(k: int, eps: float) -> QueryType:
    """The ``k`` nearest neighbours among those within distance ``eps``."""
    return QueryType(range=eps, cardinality=k, kind=KIND_BOUNDED_KNN)
