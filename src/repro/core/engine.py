"""Page processing shared by single and multiple similarity queries.

This module implements the inner loop of Figs. 1 and 4: given a data
page in memory and an ordered batch of queries the page is relevant for
(the driving query first), evaluate every query against every object on
the page, avoiding distance calculations via the triangle inequality
where possible.

Three engines with *identical* semantics and *identical* counter values:

* ``reference`` -- the literal object-at-a-time loop of the paper's
  pseudo code; easy to audit, used by tests and small runs;
* ``vectorized`` -- numpy page-at-a-time evaluation: one batched
  distance call per query per page;
* ``batched`` -- fused page x query-batch evaluation: the whole
  cross-distance matrix is computed by a single kernel call
  (:meth:`repro.metric.space.MetricSpace.cross_many`), then the
  Lemma-1/Lemma-2 avoidance of Sec. 5.2 is replayed as a post-hoc
  *counter adjustment*: calculations the reference engine would have
  avoided are refunded from ``distance_calculations`` and charged to
  ``avoided_calculations``, so the counters (and thus the modelled CPU
  cost) are those of the paper's algorithm while the FLOPs actually
  happen in one GEMM.

All use the query distance at page entry for the avoidance tests and
tighten it while inserting the page's computed answers, so their answer
sets and counters match exactly (see DESIGN.md, design decision 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Hashable

import numpy as np

from repro.core.answers import AnswerList
from repro.core.avoidance import (
    DEFAULT_MAX_PIVOTS,
    avoid_reference,
    avoid_vectorized,
)
from repro.core.types import QueryType
from repro.costmodel import Counters
from repro.data import Dataset
from repro.metric.space import MetricSpace
from repro.storage.page import Page

ENGINE_REFERENCE = "reference"
ENGINE_VECTORIZED = "vectorized"
ENGINE_BATCHED = "batched"


def _fetch_pairs(matrix: Any, slot: int, other_slots: list) -> np.ndarray:
    """Query-to-query distances from a raw array or a slot matrix.

    A :class:`~repro.core.multi_query._SlotMatrix` computes lazy pairs on
    first use; a plain ndarray (as used by direct engine tests) is
    indexed directly.
    """
    if hasattr(matrix, "pairs"):
        return matrix.pairs(slot, other_slots)
    return matrix[slot, other_slots]


@dataclass
class PendingQuery:
    """State of one similarity query inside a multiple-query processor.

    This is the unit the answer buffer of Fig. 4 stores: the partial
    answer list, the set of pages already processed for the query, and
    the completion flag.
    """

    key: Hashable
    obj: Any
    qtype: QueryType
    answers: AnswerList
    slot: int = -1
    processed_pages: set[int] = field(default_factory=set)
    complete: bool = False
    #: Dataset index of the query object, when it is a database member.
    db_index: int | None = None
    #: Upper bound on the final query distance derived from the query
    #: distance matrix (other query objects are database objects, so the
    #: k-th smallest matrix entry bounds the k-th-NN distance).  Purely
    #: an optimisation: answers are unaffected.
    radius_hint: float = math.inf
    #: Whether the radius hint has been derived already.
    seeded: bool = False
    #: Whether the warm-start page has been processed already.
    warmed: bool = False
    #: Cached query-to-pivot distances of the page pre-filter sketch
    #: (set by :class:`~repro.prefilter.PagePrefilter`).
    sketch_qd: Any = None
    #: Pages dropped *unread* for this query by the approximate
    #: pre-filter mode; they count into ``processed_pages`` (the query
    #: completes without them) but not into completeness bounds, which
    #: are computed over the post-filter candidate set.
    approx_pruned: int = 0

    @property
    def radius(self) -> float:
        """Current query distance of this query."""
        answer_radius = self.answers.radius
        if self.radius_hint < answer_radius:
            return self.radius_hint
        return answer_radius


def process_page_vectorized(
    page: Page,
    batch: list[PendingQuery],
    dataset: Dataset,
    space: MetricSpace,
    matrix: np.ndarray,
    counters: Counters,
    use_avoidance: bool = True,
    max_pivots: int = DEFAULT_MAX_PIVOTS,
    use_lemma1: bool = True,
    use_lemma2: bool = True,
) -> None:
    """Evaluate every query of ``batch`` against every object of ``page``.

    ``matrix`` is the query-distance matrix indexed by query slots.
    Distances computed for earlier queries of the batch on this page
    (``AvoidingDists`` in Fig. 4) feed the avoidance tests of the later
    ones.
    """
    indices = page.indices
    n_objects = indices.size
    if n_objects == 0:
        for query in batch:
            query.processed_pages.add(page.page_id)
        return
    objects = dataset.batch(indices)
    if not use_avoidance:
        # No avoidance: no later query consults earlier rows, so skip
        # the known-row allocation and bookkeeping entirely.
        for query in batch:
            distances = space.d_many(objects, query.obj)
            query.answers.offer_many(indices, distances)
            query.processed_pages.add(page.page_id)
        return

    known_rows = np.empty((len(batch), n_objects), dtype=float)
    known_slots: list[int] = []

    for query in batch:
        radius = query.radius
        n_known = len(known_slots)
        if n_known and not math.isinf(radius):
            n_pivots = min(n_known, max_pivots) if max_pivots > 0 else n_known
            pivot_slots = known_slots[:n_pivots]
            query_to_known = _fetch_pairs(matrix, query.slot, pivot_slots)
            avoided = avoid_vectorized(
                known_rows[:n_pivots],
                query_to_known,
                radius,
                counters,
                max_pivots=0,
                use_lemma1=use_lemma1,
                use_lemma2=use_lemma2,
            )
            compute = ~avoided
        else:
            compute = np.ones(n_objects, dtype=bool)

        row = np.full(n_objects, np.nan)
        if compute.any():
            distances = space.d_many(objects[compute], query.obj)
            row[compute] = distances
            query.answers.offer_many(indices[compute], distances)
        known_rows[n_known] = row
        known_slots.append(query.slot)
        query.processed_pages.add(page.page_id)


def process_page_batched(
    page: Page,
    batch: list[PendingQuery],
    dataset: Dataset,
    space: MetricSpace,
    matrix: np.ndarray,
    counters: Counters,
    use_avoidance: bool = True,
    max_pivots: int = DEFAULT_MAX_PIVOTS,
    use_lemma1: bool = True,
    use_lemma2: bool = True,
) -> None:
    """Fused page x query-batch variant of :func:`process_page_vectorized`.

    The full ``(n_objects, len(batch))`` cross-distance matrix is
    evaluated by one kernel call, so the m BLAS dispatches of the
    vectorised engine collapse into a single GEMM.  Avoidance (Sec. 5.2)
    is then *replayed* over the already-computed matrix purely for its
    counter semantics: positions the reference engine would have avoided
    are refunded from ``distance_calculations``, charged to
    ``avoided_calculations``, masked to NaN in the known rows consulted
    by later queries, and withheld from the answer lists (they are
    provably outside the query distance, so answers are unaffected
    either way).  Answer sets and counters therefore match the other two
    engines exactly.
    """
    indices = page.indices
    n_objects = indices.size
    if n_objects == 0:
        for query in batch:
            query.processed_pages.add(page.page_id)
        return
    objects = dataset.batch(indices)
    distances = space.cross_many(objects, [query.obj for query in batch])

    # Fused offer prefilter: one (n_objects, m) comparison finds, per
    # query, the candidates that could possibly be accepted.  A candidate
    # at or beyond the current radius of a saturated k-NN list (or beyond
    # the range) is rejected by ``offer`` whenever it is offered, and a
    # query's radius only shrinks through its *own* offers, so the bound
    # taken at page entry is exact for the whole page.
    strict_flags = [query.answers.is_saturated for query in batch]
    bounds = np.array([query.answers.radius for query in batch])
    accept = distances < bounds[None, :]
    if not all(strict_flags):
        loose = ~np.array(strict_flags)
        accept[:, loose] = distances[:, loose] <= bounds[loose]
    # Group the (few) surviving candidates by query once, instead of
    # extracting one boolean column per query.  ``nonzero`` walks the
    # mask in row order; the stable sort by query keeps each group in
    # page order -- the order ``offer`` expects.
    rows_all, query_all = np.nonzero(accept)
    if rows_all.size:
        order = np.argsort(query_all, kind="stable")
        rows_all = rows_all[order]
        group_starts = np.searchsorted(
            query_all[order], np.arange(len(batch) + 1)
        ).tolist()
    else:
        group_starts = [0] * (len(batch) + 1)

    if not use_avoidance:
        for position, query in enumerate(batch):
            rows = rows_all[group_starts[position]:group_starts[position + 1]]
            if rows.size:
                query.answers.offer_many(indices[rows], distances[rows, position])
            query.processed_pages.add(page.page_id)
        return

    known_rows = np.empty((len(batch), n_objects), dtype=float)
    known_slots: list[int] = []

    for position, query in enumerate(batch):
        radius = query.radius
        n_known = len(known_slots)
        column = distances[:, position]
        avoided = None
        if n_known and not math.isinf(radius):
            n_pivots = min(n_known, max_pivots) if max_pivots > 0 else n_known
            pivot_slots = known_slots[:n_pivots]
            query_to_known = _fetch_pairs(matrix, query.slot, pivot_slots)
            avoided = avoid_vectorized(
                known_rows[:n_pivots],
                query_to_known,
                radius,
                counters,
                max_pivots=0,
                use_lemma1=use_lemma1,
                use_lemma2=use_lemma2,
            )
            if not avoided.any():
                avoided = None
        rows = rows_all[group_starts[position]:group_starts[position + 1]]
        if avoided is None:
            if rows.size:
                query.answers.offer_many(indices[rows], column[rows])
            known_rows[n_known] = column
        else:
            counters.distance_calculations -= int(np.count_nonzero(avoided))
            if rows.size:
                rows = rows[~avoided[rows]]
                if rows.size:
                    query.answers.offer_many(indices[rows], column[rows])
            known_rows[n_known] = np.where(avoided, np.nan, column)
        known_slots.append(query.slot)
        query.processed_pages.add(page.page_id)


def process_page_reference(
    page: Page,
    batch: list[PendingQuery],
    dataset: Dataset,
    space: MetricSpace,
    matrix: np.ndarray,
    counters: Counters,
    use_avoidance: bool = True,
    max_pivots: int = DEFAULT_MAX_PIVOTS,
    use_lemma1: bool = True,
    use_lemma2: bool = True,
) -> None:
    """Object-at-a-time variant of :func:`process_page_vectorized`.

    Follows the pseudo code of Fig. 4 literally; produces the same
    answers and the same counter values as the vectorised engine.
    """
    indices = page.indices
    n_objects = indices.size
    objects = dataset.batch(indices)
    known_rows: list[tuple[int, list[float]]] = []

    for query in batch:
        radius = query.radius
        avoidance_active = (
            use_avoidance and known_rows and not math.isinf(radius)
        )
        if avoidance_active:
            pivot_rows = known_rows[:max_pivots] if max_pivots > 0 else known_rows
            pivot_dqq = _fetch_pairs(
                matrix, query.slot, [slot for slot, _ in pivot_rows]
            )
        row: list[float] = []
        for position in range(n_objects):
            obj = objects[position]
            if avoidance_active:
                pairs = [
                    (known_row[position], pivot_dqq[j])
                    for j, (_, known_row) in enumerate(pivot_rows)
                    if not math.isnan(known_row[position])
                ]
                if avoid_reference(
                    pairs, radius, counters, use_lemma1, use_lemma2
                ):
                    row.append(math.nan)
                    continue
            distance = space.d(obj, query.obj)
            row.append(distance)
            query.answers.offer(int(indices[position]), distance)
        known_rows.append((query.slot, row))
        query.processed_pages.add(page.page_id)


_ENGINES = {
    ENGINE_REFERENCE: process_page_reference,
    ENGINE_VECTORIZED: process_page_vectorized,
    ENGINE_BATCHED: process_page_batched,
}


def engine_names() -> list[str]:
    """Registered page-processing engine names, in registry order."""
    return list(_ENGINES)


def _instrument_engine(name: str, process: Any, observer: Any) -> Any:
    """Wrap an engine with the ``page.process`` phase profile.

    Each page evaluation is timed into the observer's
    ``phase.page.process.seconds`` histogram (and recorded as a span
    when tracing is on), the sharing-factor inputs (pages processed,
    queries served per page) are counted, and the Lemma-1/2 outcome of
    the page is emitted as one aggregated ``avoidance.try`` event --
    per page, not per object, so tracing granularity never enters the
    inner loops.  Answers and counters are untouched: the wrapper only
    reads counter deltas around the unmodified engine call.
    """

    def process_page_observed(
        page: Page,
        batch: list[PendingQuery],
        dataset: Dataset,
        space: MetricSpace,
        matrix: Any,
        counters: Counters,
        **kwargs: Any,
    ) -> None:
        metrics = observer.metrics
        tries_before = counters.avoidance_tries
        avoided_before = counters.avoided_calculations
        computed_before = counters.distance_calculations
        with observer.phase(
            "page.process", engine=name, page_id=page.page_id, batch=len(batch)
        ):
            process(page, batch, dataset, space, matrix, counters, **kwargs)
        metrics.inc("pages.processed")
        metrics.inc("page.queries_served", len(batch))
        tries = counters.avoidance_tries - tries_before
        if tries:
            observer.event(
                "avoidance.try",
                engine=name,
                page_id=page.page_id,
                tries=tries,
                avoided=counters.avoided_calculations - avoided_before,
                computed=counters.distance_calculations - computed_before,
            )

    return process_page_observed


def get_engine(name: str, observer: Any = None) -> Any:
    """Resolve a page-processing engine by name.

    With ``observer=None`` (the default) the raw engine function is
    returned -- the uninstrumented hot path, byte-for-byte the code the
    tests and benchmarks audit.  With an :class:`~repro.obs.Observer`
    the engine is wrapped with per-page phase profiling and events.
    """
    try:
        process = _ENGINES[name]
    except KeyError:
        known = ", ".join(sorted(_ENGINES))
        raise ValueError(f"unknown engine {name!r}; known: {known}") from None
    if observer is None:
        return process
    return _instrument_engine(name, process, observer)
