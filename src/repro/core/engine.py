"""Page processing shared by single and multiple similarity queries.

This module implements the inner loop of Figs. 1 and 4: given a data
page in memory and an ordered batch of queries the page is relevant for
(the driving query first), evaluate every query against every object on
the page, avoiding distance calculations via the triangle inequality
where possible.

Two engines with *identical* semantics and *identical* counter values:

* ``reference`` -- the literal object-at-a-time loop of the paper's
  pseudo code; easy to audit, used by tests and small runs;
* ``vectorized`` -- numpy page-at-a-time evaluation used at benchmark
  scale.

Both use the query distance at page entry for the avoidance tests and
tighten it while inserting the page's computed answers, so their answer
sets and counters match exactly (see DESIGN.md, design decision 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Hashable

import numpy as np

from repro.core.answers import AnswerList
from repro.core.avoidance import (
    DEFAULT_MAX_PIVOTS,
    avoid_reference,
    avoid_vectorized,
)
from repro.core.types import QueryType
from repro.costmodel import Counters
from repro.data import Dataset
from repro.metric.space import MetricSpace
from repro.storage.page import Page

ENGINE_REFERENCE = "reference"
ENGINE_VECTORIZED = "vectorized"


def _fetch_pairs(matrix: Any, slot: int, other_slots: list) -> np.ndarray:
    """Query-to-query distances from a raw array or a slot matrix.

    A :class:`~repro.core.multi_query._SlotMatrix` computes lazy pairs on
    first use; a plain ndarray (as used by direct engine tests) is
    indexed directly.
    """
    if hasattr(matrix, "pairs"):
        return matrix.pairs(slot, other_slots)
    return matrix[slot, other_slots]


@dataclass
class PendingQuery:
    """State of one similarity query inside a multiple-query processor.

    This is the unit the answer buffer of Fig. 4 stores: the partial
    answer list, the set of pages already processed for the query, and
    the completion flag.
    """

    key: Hashable
    obj: Any
    qtype: QueryType
    answers: AnswerList
    slot: int = -1
    processed_pages: set[int] = field(default_factory=set)
    complete: bool = False
    #: Dataset index of the query object, when it is a database member.
    db_index: int | None = None
    #: Upper bound on the final query distance derived from the query
    #: distance matrix (other query objects are database objects, so the
    #: k-th smallest matrix entry bounds the k-th-NN distance).  Purely
    #: an optimisation: answers are unaffected.
    radius_hint: float = math.inf
    #: Whether the radius hint has been derived already.
    seeded: bool = False
    #: Whether the warm-start page has been processed already.
    warmed: bool = False

    @property
    def radius(self) -> float:
        """Current query distance of this query."""
        answer_radius = self.answers.radius
        if self.radius_hint < answer_radius:
            return self.radius_hint
        return answer_radius


def process_page_vectorized(
    page: Page,
    batch: list[PendingQuery],
    dataset: Dataset,
    space: MetricSpace,
    matrix: np.ndarray,
    counters: Counters,
    use_avoidance: bool = True,
    max_pivots: int = DEFAULT_MAX_PIVOTS,
    use_lemma1: bool = True,
    use_lemma2: bool = True,
) -> None:
    """Evaluate every query of ``batch`` against every object of ``page``.

    ``matrix`` is the query-distance matrix indexed by query slots.
    Distances computed for earlier queries of the batch on this page
    (``AvoidingDists`` in Fig. 4) feed the avoidance tests of the later
    ones.
    """
    indices = page.indices
    n_objects = indices.size
    if n_objects == 0:
        for query in batch:
            query.processed_pages.add(page.page_id)
        return
    objects = dataset.batch(indices)
    known_rows = np.empty((len(batch), n_objects), dtype=float)
    known_slots: list[int] = []

    for query in batch:
        radius = query.radius
        n_known = len(known_slots)
        if use_avoidance and n_known and not math.isinf(radius):
            n_pivots = min(n_known, max_pivots) if max_pivots > 0 else n_known
            pivot_slots = known_slots[:n_pivots]
            query_to_known = _fetch_pairs(matrix, query.slot, pivot_slots)
            avoided = avoid_vectorized(
                known_rows[:n_pivots],
                query_to_known,
                radius,
                counters,
                max_pivots=0,
                use_lemma1=use_lemma1,
                use_lemma2=use_lemma2,
            )
            compute = ~avoided
        else:
            compute = np.ones(n_objects, dtype=bool)

        row = np.full(n_objects, np.nan)
        if compute.any():
            distances = space.d_many(objects[compute], query.obj)
            row[compute] = distances
            query.answers.offer_many(indices[compute], distances)
        known_rows[n_known] = row
        known_slots.append(query.slot)
        query.processed_pages.add(page.page_id)


def process_page_reference(
    page: Page,
    batch: list[PendingQuery],
    dataset: Dataset,
    space: MetricSpace,
    matrix: np.ndarray,
    counters: Counters,
    use_avoidance: bool = True,
    max_pivots: int = DEFAULT_MAX_PIVOTS,
    use_lemma1: bool = True,
    use_lemma2: bool = True,
) -> None:
    """Object-at-a-time variant of :func:`process_page_vectorized`.

    Follows the pseudo code of Fig. 4 literally; produces the same
    answers and the same counter values as the vectorised engine.
    """
    indices = page.indices
    n_objects = indices.size
    objects = dataset.batch(indices)
    known_rows: list[tuple[int, list[float]]] = []

    for query in batch:
        radius = query.radius
        avoidance_active = (
            use_avoidance and known_rows and not math.isinf(radius)
        )
        if avoidance_active:
            pivot_rows = known_rows[:max_pivots] if max_pivots > 0 else known_rows
            pivot_dqq = _fetch_pairs(
                matrix, query.slot, [slot for slot, _ in pivot_rows]
            )
        row: list[float] = []
        for position in range(n_objects):
            obj = objects[position]
            if avoidance_active:
                pairs = [
                    (known_row[position], pivot_dqq[j])
                    for j, (_, known_row) in enumerate(pivot_rows)
                    if not math.isnan(known_row[position])
                ]
                if avoid_reference(
                    pairs, radius, counters, use_lemma1, use_lemma2
                ):
                    row.append(math.nan)
                    continue
            distance = space.d(obj, query.obj)
            row.append(distance)
            query.answers.offer(int(indices[position]), distance)
        known_rows.append((query.slot, row))
        query.processed_pages.add(page.page_id)


_ENGINES = {
    ENGINE_REFERENCE: process_page_reference,
    ENGINE_VECTORIZED: process_page_vectorized,
}


def get_engine(name: str) -> Any:
    """Resolve a page-processing engine by name."""
    try:
        return _ENGINES[name]
    except KeyError:
        known = ", ".join(sorted(_ENGINES))
        raise ValueError(f"unknown engine {name!r}; known: {known}") from None
