"""Workload planning: choosing access method and block size.

Sec. 3.3 of the paper argues that "a query optimizer can automatically
use multiple similarity queries" once the operator exists; Sec. 6.3
shows the optimal access method flips from index to scan as the block
size m grows.  :class:`QueryPlanner` automates that choice: it probes a
small sample of the intended workload on each candidate access method,
fits the paper's cost structure

    cost_per_query(m) = shared_cost / m + marginal_cost

(block-shared work such as a sequential scan or the page-set union
amortises over m; per-query work does not), and recommends the cheapest
(access method, block size) plan for the full workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.database import Database
from repro.core.types import QueryType
from repro.data import Dataset, as_dataset
from repro.workloads.queries import sample_database_queries


@dataclass(frozen=True)
class CostFit:
    """Fitted per-query cost curve of one access method.

    Besides the headline seconds curve, the probe fits the same
    ``shared/m + marginal`` structure to the two *counted* cost
    components of the paper's Sec. 4 model -- page reads and distance
    calculations -- so the plan-vs-actual audit
    (:mod:`repro.obs.audit`) can compare each modelled component against
    the observed counters, not just the bottom line.  The component
    fields default to 0 for fits constructed the pre-audit way.
    """

    access: str
    shared_seconds: float
    marginal_seconds: float
    shared_io_pages: float = 0.0
    marginal_io_pages: float = 0.0
    shared_distances: float = 0.0
    marginal_distances: float = 0.0

    def per_query(self, block_size: int) -> float:
        """Predicted per-query cost at block size ``block_size``."""
        if block_size < 1:
            raise ValueError("block size must be positive")
        return self.shared_seconds / block_size + self.marginal_seconds

    def pages_per_query(self, block_size: int) -> float:
        """Predicted page reads per query at block size ``block_size``."""
        if block_size < 1:
            raise ValueError("block size must be positive")
        return self.shared_io_pages / block_size + self.marginal_io_pages

    def distances_per_query(self, block_size: int) -> float:
        """Predicted distance calculations per query at ``block_size``."""
        if block_size < 1:
            raise ValueError("block size must be positive")
        return self.shared_distances / block_size + self.marginal_distances


@dataclass(frozen=True)
class WorkloadPlan:
    """The planner's recommendation for a workload."""

    access: str
    block_size: int
    predicted_seconds_per_query: float
    fits: tuple[CostFit, ...]

    def describe(self) -> str:
        """One-paragraph human-readable explanation."""
        lines = [
            f"recommended: access={self.access!r}, block_size={self.block_size} "
            f"(predicted {self.predicted_seconds_per_query * 1000:.2f} ms/query)"
        ]
        for fit in self.fits:
            lines.append(
                f"  {fit.access:>7}: shared={fit.shared_seconds * 1000:8.2f} ms/block-unit, "
                f"marginal={fit.marginal_seconds * 1000:8.2f} ms/query"
            )
        return "\n".join(lines)


class QueryPlanner:
    """Probe-based planner over candidate access methods.

    Parameters
    ----------
    data:
        The database contents (a dataset or raw array).
    metric:
        Distance function, as for :class:`~repro.core.database.Database`.
    candidates:
        Access methods to consider.
    probe_queries:
        Sample size used for probing; larger samples cost more planning
        time and give stabler fits.
    probe_block:
        The larger of the two probed block sizes (the smaller is 1).
    prefilter:
        Optional page pre-filter configuration forwarded to every
        candidate database (see
        :meth:`~repro.core.database.Database.enable_prefilter`).  The
        sketch pass itself is uncounted planning work, so its modelled
        cost is folded into the fits explicitly: the fitted curves --
        and with them the scheduler's knee-point replan -- see the
        filtered read path *including* the sketch pass, not a
        fictitious free lunch.

    Probing cost is real query work; the built candidate databases are
    kept, so executing the plan afterwards starts with warm structures.
    """

    def __init__(
        self,
        data: Dataset | Any,
        metric: str = "euclidean",
        candidates: Sequence[str] = ("scan", "xtree"),
        probe_queries: int = 8,
        probe_block: int | None = None,
        seed: int = 0,
        prefilter: Any = None,
    ):
        if probe_queries < 2:
            raise ValueError("need at least two probe queries")
        self.dataset = as_dataset(data)
        self.candidates = tuple(candidates)
        if not self.candidates:
            raise ValueError("need at least one candidate access method")
        self.probe_queries = probe_queries
        self.probe_block = probe_block if probe_block is not None else probe_queries
        self.seed = seed
        self.databases = {
            access: Database(
                self.dataset, metric=metric, access=access, prefilter=prefilter
            )
            for access in self.candidates
        }

    @staticmethod
    def _sketch_pass_state(database: Database) -> tuple[int, int]:
        """Current sketch-pass work counts of the database's pre-filter."""
        prefilter = database.prefilter
        if prefilter is None:
            return (0, 0)
        stats = prefilter.stats
        return (stats.bound_evaluations, stats.pivot_distance_evaluations)

    @staticmethod
    def _sketch_pass_seconds(
        database: Database, before: tuple[int, int]
    ) -> float:
        """Modelled seconds of the sketch passes run since ``before``.

        One sketch bound costs one comparison; one query-to-pivot
        distance costs one distance calculation -- the same unit prices
        the cost model charges the counted work, applied to the
        uncounted planning work the pre-filter performed.
        """
        bounds, pivot_dists = QueryPlanner._sketch_pass_state(database)
        model = database.cost_model
        return (
            (bounds - before[0]) * model.comparison_seconds
            + (pivot_dists - before[1]) * model.distance_seconds
        )

    def _probe(self, database: Database, qtype: QueryType) -> CostFit:
        # Clamp the probe sample to the dataset: sampling more queries
        # than there are objects would repeat objects, and repeated
        # queries fold into one buffered query inside a block while the
        # single-query probe pays each repeat fully -- inflating the
        # apparent sharing and producing degenerate fits on tiny
        # datasets.  With fewer than two distinct probes no two-point
        # fit exists; the cost curve degrades to a flat marginal cost.
        n_probe = min(self.probe_queries, len(self.dataset))
        indices = sample_database_queries(self.dataset, n_probe, self.seed)
        queries = [self.dataset[i] for i in indices]
        # Point 1: single queries (m = 1).
        database.cold()
        sketch_before = self._sketch_pass_state(database)
        with database.measure() as single:
            for query in queries:
                database.similarity_query(query, qtype)
        cost_single = (
            single.total_seconds + self._sketch_pass_seconds(database, sketch_before)
        ) / len(queries)
        # Point 2: one block of probe_block queries.
        database.cold()
        sketch_before = self._sketch_pass_state(database)
        with database.measure() as block:
            database.run_in_blocks(
                queries,
                qtype,
                block_size=self.probe_block,
                db_indices=indices,
                warm_start=not database.access_method.sequential_data_access,
            )
        cost_block = (
            block.total_seconds + self._sketch_pass_seconds(database, sketch_before)
        ) / len(queries)
        # Solve  cost(m) = shared/m + marginal  through both points --
        # for seconds and for each counted component (Sec. 4 model).
        m2 = min(self.probe_block, len(queries))

        def two_point(at_one: float, at_m2: float) -> tuple[float, float]:
            if m2 <= 1:
                return 0.0, at_one
            shared = max(0.0, (at_one - at_m2) * m2 / (m2 - 1))
            return shared, max(0.0, at_one - shared)

        shared, marginal = two_point(cost_single, cost_block)
        n = len(queries)
        shared_pages, marginal_pages = two_point(
            single.counters.page_reads / n, block.counters.page_reads / n
        )
        shared_dists, marginal_dists = two_point(
            single.counters.total_distance_calculations / n,
            block.counters.total_distance_calculations / n,
        )
        return CostFit(
            access=database.access_method.name,
            shared_seconds=shared,
            marginal_seconds=marginal,
            shared_io_pages=shared_pages,
            marginal_io_pages=marginal_pages,
            shared_distances=shared_dists,
            marginal_distances=marginal_dists,
        )

    def plan(
        self,
        n_queries: int,
        qtype: QueryType,
        max_block_size: int | None = None,
    ) -> WorkloadPlan:
        """Recommend access method and block size for ``n_queries``.

        ``max_block_size`` models the memory bound of Sec. 5 (the answer
        buffer and the O(m^2) query-distance matrix limit m); the block
        size recommendation is the workload size clipped to it.
        """
        if n_queries < 1:
            raise ValueError("workload must contain at least one query")
        block_size = n_queries
        if max_block_size is not None:
            block_size = min(block_size, max_block_size)
        fits = tuple(
            self._probe(self.databases[access], qtype) for access in self.candidates
        )
        best = min(fits, key=lambda fit: fit.per_query(block_size))
        return WorkloadPlan(
            access=best.access,
            block_size=block_size,
            predicted_seconds_per_query=best.per_query(block_size),
            fits=fits,
        )

    def database_for(self, plan: WorkloadPlan) -> Database:
        """The already-built database matching a plan."""
        return self.databases[plan.access]
