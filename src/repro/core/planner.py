"""Workload planning: choosing access method, engine and block size.

Sec. 3.3 of the paper argues that "a query optimizer can automatically
use multiple similarity queries" once the operator exists; Sec. 6.3
shows the optimal access method flips from index to scan as the block
size m grows.  :class:`QueryPlanner` automates that choice: it probes a
small sample of the intended workload on each candidate access method,
fits the paper's cost structure

    cost_per_query(m) = shared_cost / m + marginal_cost

(block-shared work such as a sequential scan or the page-set union
amortises over m; per-query work does not), and recommends the cheapest
(access method, block size) plan for the full workload.

The optimizer-v2 layer generalises the one-shot recommendation into a
cost surface and a batch former:

* :meth:`QueryPlanner.fit_for` probes one (query-type, access-method,
  engine) cell of the surface and caches the fit; cells whose index or
  engine cannot serve the dataset are skipped (never a silent fallback
  -- a ``planner.probe.skipped`` event records each one);
* :func:`partition_by_sharing` groups a heterogeneous admitted batch by
  predicted I/O sharing -- the greedy nearest-neighbour affinity chain
  of the scheduler, generalised into a clustering step that *cuts* the
  chain whenever the next query is further than the share bound;
* :meth:`QueryPlanner.plan_batch` combines both into a structured
  :class:`BatchPlan`: per partition the members, the cheapest (access,
  engine) pair at the partition's block size, and the predicted cost
  and sharing factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.database import _ACCESS_METHODS, Database
from repro.core.multi_query import MultiQueryProcessor
from repro.core.types import QueryType
from repro.data import Dataset, as_dataset
from repro.workloads.queries import sample_database_queries

#: Engine names a planner accepts in ``engines`` (``None`` = the
#: candidate database's default engine).
_KNOWN_ENGINES = (None, "reference", "vectorized", "batched")

#: Multiple of the batch's median nearest-neighbour distance used as
#: the default share bound of :func:`partition_by_sharing`: chain links
#: longer than this predict little page overlap, so the chain is cut.
DEFAULT_SHARE_FACTOR = 2.0

#: Relative slack used for the knee-point block target: the smallest
#: block size whose predicted per-query cost is within this fraction of
#: the cost at the maximum block size.
DEFAULT_KNEE_TOLERANCE = 0.1


@dataclass(frozen=True)
class CostFit:
    """Fitted per-query cost curve of one access method.

    Besides the headline seconds curve, the probe fits the same
    ``shared/m + marginal`` structure to the two *counted* cost
    components of the paper's Sec. 4 model -- page reads and distance
    calculations -- so the plan-vs-actual audit
    (:mod:`repro.obs.audit`) can compare each modelled component against
    the observed counters, not just the bottom line.  The component
    fields default to 0 for fits constructed the pre-audit way.

    ``engine`` and ``kind`` tag which cell of the optimizer-v2 cost
    surface the fit belongs to (``None``/``None`` for fits constructed
    the pre-surface way: the database's default engine, any kind).
    """

    access: str
    shared_seconds: float
    marginal_seconds: float
    shared_io_pages: float = 0.0
    marginal_io_pages: float = 0.0
    shared_distances: float = 0.0
    marginal_distances: float = 0.0
    engine: str | None = None
    kind: str | None = None

    def per_query(self, block_size: int) -> float:
        """Predicted per-query cost at block size ``block_size``."""
        if block_size < 1:
            raise ValueError("block size must be positive")
        return self.shared_seconds / block_size + self.marginal_seconds

    def pages_per_query(self, block_size: int) -> float:
        """Predicted page reads per query at block size ``block_size``."""
        if block_size < 1:
            raise ValueError("block size must be positive")
        return self.shared_io_pages / block_size + self.marginal_io_pages

    def distances_per_query(self, block_size: int) -> float:
        """Predicted distance calculations per query at ``block_size``."""
        if block_size < 1:
            raise ValueError("block size must be positive")
        return self.shared_distances / block_size + self.marginal_distances

    def sharing_factor(self, block_size: int) -> float:
        """Predicted speed-up of batching: cost at m=1 over cost at m."""
        at_block = self.per_query(block_size)
        if at_block <= 0.0:
            return 1.0
        return self.per_query(1) / at_block


def knee_block_size(
    fit: CostFit, max_block: int, tolerance: float = DEFAULT_KNEE_TOLERANCE
) -> int:
    """Smallest block size within ``tolerance`` of the asymptotic cost.

    The fitted per-query cost ``shared/m + marginal`` decreases
    monotonically in m with diminishing returns; batching beyond the
    knee buys almost nothing but costs every client queueing delay.
    """
    if max_block < 1:
        raise ValueError("max block size must be positive")
    asymptote = fit.per_query(max_block)
    for m in range(1, max_block + 1):
        if fit.per_query(m) <= asymptote * (1.0 + tolerance):
            return m
    return max_block


@dataclass(frozen=True)
class WorkloadPlan:
    """The planner's recommendation for a homogeneous workload."""

    access: str
    block_size: int
    predicted_seconds_per_query: float
    fits: tuple[CostFit, ...]

    def describe(self) -> str:
        """One-paragraph human-readable explanation."""
        lines = [
            f"recommended: access={self.access!r}, block_size={self.block_size} "
            f"(predicted {self.predicted_seconds_per_query * 1000:.2f} ms/query)"
        ]
        for fit in self.fits:
            lines.append(
                f"  {fit.access:>7}: shared={fit.shared_seconds * 1000:8.2f} ms/block-unit, "
                f"marginal={fit.marginal_seconds * 1000:8.2f} ms/query"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class PartitionPlan:
    """One partition of a :class:`BatchPlan`.

    ``members`` are positions into the planned batch (admission order).
    ``access``/``engine`` of ``None`` mean "the serving database's
    default" -- used by the scheduler's planner-less fallback; plans
    produced by :meth:`QueryPlanner.plan_batch` always name both.
    """

    members: tuple[int, ...]
    access: str | None
    engine: str | None
    block_size: int
    prefilter: bool
    predicted_seconds_per_query: float
    sharing_factor: float

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def predicted_seconds(self) -> float:
        """Predicted total seconds of the partition."""
        return self.predicted_seconds_per_query * len(self.members)


@dataclass(frozen=True)
class BatchPlan:
    """Structured plan for one admitted heterogeneous batch.

    Replaces the flat :class:`WorkloadPlan` for batch formation: instead
    of one (access, block size) pair for the whole workload, the batch
    is partitioned by predicted sharing and every partition carries its
    own access method, engine, block size and predicted cost.
    """

    partitions: tuple[PartitionPlan, ...]
    predicted_seconds: float

    @property
    def n_queries(self) -> int:
        return sum(p.size for p in self.partitions)

    def describe(self) -> str:
        """Human-readable dump (the ``repro plan`` dry-run output)."""
        lines = [
            f"batch plan: {self.n_queries} queries -> "
            f"{len(self.partitions)} partition(s), predicted "
            f"{self.predicted_seconds * 1000:.2f} ms total"
        ]
        for index, part in enumerate(self.partitions):
            access = part.access if part.access is not None else "<default>"
            engine = part.engine if part.engine is not None else "<default>"
            lines.append(
                f"  partition {index}: {part.size:3d} queries  "
                f"access={access} engine={engine} block={part.block_size} "
                f"prefilter={'on' if part.prefilter else 'off'}  "
                f"predicted {part.predicted_seconds_per_query * 1000:.3f} ms/query, "
                f"sharing {part.sharing_factor:.2f}x"
            )
        return "\n".join(lines)


def _pairwise_uncounted(query_objs: Sequence[Any], space: Any) -> np.ndarray:
    """Full pairwise distance matrix as uncounted planning work.

    Uses the metric's fused cross kernel when it accepts the objects,
    falling back to pairwise ``uncounted`` calls for object types the
    kernel cannot stack (e.g. strings under edit distance).
    """
    n = len(query_objs)
    try:
        matrix = np.asarray(
            space.uncounted_cross(query_objs, query_objs), dtype=float
        )
        if matrix.shape == (n, n):
            return matrix
    except (TypeError, ValueError):
        pass
    uncounted = space.uncounted
    matrix = np.zeros((n, n), dtype=float)
    for i in range(n):
        for j in range(i + 1, n):
            matrix[i, j] = matrix[j, i] = uncounted(query_objs[i], query_objs[j])
    return matrix


def default_share_bound(
    query_objs: Sequence[Any],
    space: Any,
    factor: float = DEFAULT_SHARE_FACTOR,
    matrix: np.ndarray | None = None,
) -> float:
    """Derive a share bound from the batch's own distance scale.

    ``factor`` times the median nearest-neighbour distance among the
    batch queries: links of the affinity chain below it connect queries
    whose page sets overlap well; longer links predict little sharing.
    Uses *uncounted* distances (planning work, not query work); pass
    ``matrix`` to reuse an already-computed pairwise matrix.
    """
    n = len(query_objs)
    if n <= 1:
        return math.inf
    if matrix is None:
        matrix = _pairwise_uncounted(query_objs, space)
    off_diagonal = matrix + np.diag(np.full(n, np.inf))
    scale = float(np.median(off_diagonal.min(axis=1)))
    if scale <= 0.0 or not math.isfinite(scale):
        return math.inf
    return factor * scale


def partition_by_sharing(
    query_objs: Sequence[Any],
    space: Any,
    share_bound: float | None = None,
    max_partition: int | None = None,
) -> list[list[int]]:
    """Group a batch into partitions of predicted I/O sharing.

    The scheduler's greedy nearest-neighbour affinity chain, generalised
    into a clustering step: starting from the *oldest* unassigned query
    (FIFO fairness -- partitions execute in order of their oldest
    member, so no client is starved by a re-ordering), the chain grows
    by the nearest remaining query and is **cut** when that nearest
    distance exceeds ``share_bound`` (or the partition hits
    ``max_partition``).  Within each partition, members are returned in
    admission order; ordering inside a block stays the dispatcher's
    decision.

    ``share_bound=None`` derives the bound from the batch itself
    (:func:`default_share_bound`); ``math.inf`` forces one partition
    (the v1-identical degenerate case) and ``0.0`` forces singletons.
    All distances are uncounted planning work.
    """
    n = len(query_objs)
    if n <= 1:
        return [list(range(n))] if n else []
    if share_bound is not None and math.isinf(share_bound) and share_bound > 0:
        if max_partition is None or n <= max_partition:
            return [list(range(n))]
    matrix = _pairwise_uncounted(query_objs, space)
    if share_bound is None:
        share_bound = default_share_bound(query_objs, space, matrix=matrix)
    remaining = list(range(n))
    partitions: list[list[int]] = []
    while remaining:
        seed = remaining.pop(0)  # oldest unassigned query
        part = [seed]
        last = seed
        while remaining and (
            max_partition is None or len(part) < max_partition
        ):
            gaps = matrix[last, remaining]
            nearest = int(gaps.argmin())
            if gaps[nearest] > share_bound:
                break
            last = remaining.pop(nearest)
            part.append(last)
        partitions.append(sorted(part))
    return partitions


class QueryPlanner:
    """Probe-based planner over candidate access methods and engines.

    Parameters
    ----------
    data:
        The database contents (a dataset or raw array).
    metric:
        Distance function, as for :class:`~repro.core.database.Database`.
    candidates:
        Access methods to consider.  Candidates whose index cannot be
        built for this dataset/metric (e.g. a VA-file over a non-L2
        metric) are recorded as unavailable and *skipped* at probe time
        with a ``planner.probe.skipped`` event -- never silently
        substituted.
    engines:
        Page-processing engines to consider per candidate (``None`` =
        the candidate database's default).  Engines invalid for the
        dataset (``vectorized`` over non-vector data) are skipped the
        same way.
    probe_queries:
        Sample size used for probing; larger samples cost more planning
        time and give stabler fits.
    probe_block:
        The larger of the two probed block sizes (the smaller is 1).
    prefilter:
        Optional page pre-filter configuration forwarded to every
        candidate database (see
        :meth:`~repro.core.database.Database.enable_prefilter`).  The
        sketch pass itself is uncounted planning work, so its modelled
        cost is folded into the fits explicitly: the fitted curves --
        and with them the scheduler's knee-point replan -- see the
        filtered read path *including* the sketch pass, not a
        fictitious free lunch.
    observer:
        Optional :class:`~repro.obs.Observer`; receives the
        ``planner.probe.skipped`` events.

    Probing cost is real query work; the built candidate databases are
    kept, so executing the plan afterwards starts with warm structures.
    Probe results are cached per (query-type kind, access, engine), so
    repeated ``plan``/``plan_batch`` calls pay each cell once.
    """

    def __init__(
        self,
        data: Dataset | Any,
        metric: str = "euclidean",
        candidates: Sequence[str] = ("scan", "xtree"),
        engines: Sequence[str | None] = (None,),
        probe_queries: int = 8,
        probe_block: int | None = None,
        seed: int = 0,
        prefilter: Any = None,
        observer: Any = None,
    ):
        if probe_queries < 2:
            raise ValueError("need at least two probe queries")
        self.dataset = as_dataset(data)
        self.candidates = tuple(candidates)
        if not self.candidates:
            raise ValueError("need at least one candidate access method")
        for access in self.candidates:
            if access not in _ACCESS_METHODS:
                known = ", ".join(sorted(_ACCESS_METHODS))
                raise ValueError(
                    f"unknown access method {access!r}; known: {known}"
                )
        self.engines = tuple(engines)
        if not self.engines:
            raise ValueError("need at least one candidate engine")
        for engine in self.engines:
            if engine not in _KNOWN_ENGINES:
                raise ValueError(f"unknown engine {engine!r}")
        self.probe_queries = probe_queries
        self.probe_block = probe_block if probe_block is not None else probe_queries
        self.seed = seed
        self.prefilter = prefilter
        self.observer = observer
        self.probes_skipped = 0
        self.databases: dict[str, Database] = {}
        #: Human-readable reason per candidate whose index did not build.
        self.unavailable: dict[str, str] = {}
        for access in self.candidates:
            try:
                self.databases[access] = Database(
                    self.dataset, metric=metric, access=access, prefilter=prefilter
                )
            except (ValueError, TypeError) as exc:
                self.unavailable[access] = str(exc)
        if not self.databases:
            reasons = "; ".join(
                f"{access}: {reason}" for access, reason in self.unavailable.items()
            )
            raise ValueError(f"no candidate index could be built ({reasons})")
        #: Probe cache: (qtype.kind, access, engine) -> CostFit | None
        #: (``None`` records a skipped cell so it is not re-probed).
        self._fit_cache: dict[tuple[str, str, str | None], CostFit | None] = {}

    @staticmethod
    def _sketch_pass_state(database: Database) -> tuple[int, int]:
        """Current sketch-pass work counts of the database's pre-filter."""
        prefilter = database.prefilter
        if prefilter is None:
            return (0, 0)
        stats = prefilter.stats
        return (stats.bound_evaluations, stats.pivot_distance_evaluations)

    @staticmethod
    def _sketch_pass_seconds(
        database: Database, before: tuple[int, int]
    ) -> float:
        """Modelled seconds of the sketch passes run since ``before``.

        One sketch bound costs one comparison; one query-to-pivot
        distance costs one distance calculation -- the same unit prices
        the cost model charges the counted work, applied to the
        uncounted planning work the pre-filter performed.
        """
        bounds, pivot_dists = QueryPlanner._sketch_pass_state(database)
        model = database.cost_model
        return (
            (bounds - before[0]) * model.comparison_seconds
            + (pivot_dists - before[1]) * model.distance_seconds
        )

    def _probe(
        self, database: Database, qtype: QueryType, engine: str | None = None
    ) -> CostFit:
        # Clamp the probe sample to the dataset: sampling more queries
        # than there are objects would repeat objects, and repeated
        # queries fold into one buffered query inside a block while the
        # single-query probe pays each repeat fully -- inflating the
        # apparent sharing and producing degenerate fits on tiny
        # datasets.  With fewer than two distinct probes no two-point
        # fit exists; the cost curve degrades to a flat marginal cost.
        n_probe = min(self.probe_queries, len(self.dataset))
        indices = sample_database_queries(self.dataset, n_probe, self.seed)
        queries = [self.dataset[i] for i in indices]
        # Point 1: single queries (m = 1).
        database.cold()
        sketch_before = self._sketch_pass_state(database)
        with database.measure() as single:
            for query in queries:
                MultiQueryProcessor(database, engine=engine).process(
                    [query], [qtype]
                )
        cost_single = (
            single.total_seconds + self._sketch_pass_seconds(database, sketch_before)
        ) / len(queries)
        # Point 2: one block of probe_block queries.
        database.cold()
        sketch_before = self._sketch_pass_state(database)
        with database.measure() as block:
            database.run_in_blocks(
                queries,
                qtype,
                block_size=self.probe_block,
                db_indices=indices,
                warm_start=not database.access_method.sequential_data_access,
                engine=engine,
            )
        cost_block = (
            block.total_seconds + self._sketch_pass_seconds(database, sketch_before)
        ) / len(queries)
        # Solve  cost(m) = shared/m + marginal  through both points --
        # for seconds and for each counted component (Sec. 4 model).
        m2 = min(self.probe_block, len(queries))

        def two_point(at_one: float, at_m2: float) -> tuple[float, float]:
            if m2 <= 1:
                return 0.0, at_one
            shared = max(0.0, (at_one - at_m2) * m2 / (m2 - 1))
            return shared, max(0.0, at_one - shared)

        shared, marginal = two_point(cost_single, cost_block)
        n = len(queries)
        shared_pages, marginal_pages = two_point(
            single.counters.page_reads / n, block.counters.page_reads / n
        )
        shared_dists, marginal_dists = two_point(
            single.counters.total_distance_calculations / n,
            block.counters.total_distance_calculations / n,
        )
        return CostFit(
            access=database.access_method.name,
            shared_seconds=shared,
            marginal_seconds=marginal,
            shared_io_pages=shared_pages,
            marginal_io_pages=marginal_pages,
            shared_distances=shared_dists,
            marginal_distances=marginal_dists,
            engine=engine,
            kind=qtype.kind,
        )

    # ------------------------------------------------------------------
    # The cost surface: cached per-(kind, access, engine) probes
    # ------------------------------------------------------------------

    def _skip_probe(
        self, access: str, engine: str | None, reason: str
    ) -> None:
        self.probes_skipped += 1
        if self.observer is not None:
            self.observer.event(
                "planner.probe.skipped",
                access=access,
                engine=str(engine),
                reason=reason,
            )

    def fit_for(
        self, qtype: QueryType, access: str, engine: str | None = None
    ) -> CostFit | None:
        """Probe (and cache) one cell of the cost surface.

        Returns ``None`` -- after emitting ``planner.probe.skipped`` --
        when the candidate's index was never built for this dataset or
        the engine cannot serve it; the skip itself is cached so each
        unavailable cell is reported once.
        """
        key = (qtype.kind, access, engine)
        if key in self._fit_cache:
            return self._fit_cache[key]
        database = self.databases.get(access)
        fit: CostFit | None
        if database is None:
            fit = None
            self._skip_probe(
                access, engine,
                self.unavailable.get(access, "index not built"),
            )
        else:
            try:
                fit = self._probe(database, qtype, engine=engine)
            except (ValueError, TypeError) as exc:
                fit = None
                self._skip_probe(access, engine, str(exc))
        self._fit_cache[key] = fit
        return fit

    def fit_surface(self, qtype: QueryType) -> tuple[CostFit, ...]:
        """All available fits for one query type (the cost surface row)."""
        fits = tuple(
            fit
            for access in self.candidates
            for engine in self.engines
            if (fit := self.fit_for(qtype, access, engine)) is not None
        )
        if not fits:
            raise ValueError(
                "no (access, engine) candidate could be probed for "
                f"query kind {qtype.kind!r}"
            )
        return fits

    # ------------------------------------------------------------------
    # Plans
    # ------------------------------------------------------------------

    def plan(
        self,
        n_queries: int,
        qtype: QueryType,
        max_block_size: int | None = None,
    ) -> WorkloadPlan:
        """Recommend access method and block size for ``n_queries``.

        ``max_block_size`` models the memory bound of Sec. 5 (the answer
        buffer and the O(m^2) query-distance matrix limit m); the block
        size recommendation is the workload size clipped to it.
        """
        if n_queries < 1:
            raise ValueError("workload must contain at least one query")
        block_size = n_queries
        if max_block_size is not None:
            block_size = min(block_size, max_block_size)
        fits = self.fit_surface(qtype)
        best = min(fits, key=lambda fit: fit.per_query(block_size))
        return WorkloadPlan(
            access=best.access,
            block_size=block_size,
            predicted_seconds_per_query=best.per_query(block_size),
            fits=fits,
        )

    def plan_batch(
        self,
        query_objs: Sequence[Any],
        qtypes: Sequence[QueryType] | QueryType,
        max_block: int | None = None,
        share_bound: float | None = None,
    ) -> BatchPlan:
        """Form a :class:`BatchPlan` for one heterogeneous batch.

        Cost-based batch formation in three steps: split the batch by
        exact query type (a k-NN query and a wide range query share few
        pages, so batching them couples the cheap query to the expensive
        one's page union), cluster each type class by predicted sharing
        (:func:`partition_by_sharing`), then merge affinity-adjacent
        clusters while the cost surface prices the merged block cheaper
        than running the two separately (the shared traversal term
        amortizes, up to ``max_block``).  Each final partition is priced
        on the surface and gets its cheapest (access, engine) pair at
        the partition's block size.

        An infinite ``share_bound`` skips all of this and forms one
        partition (capped at ``max_block``) -- the v1-identical path.
        """
        if isinstance(qtypes, QueryType):
            qtypes_list = [qtypes] * len(query_objs)
        else:
            qtypes_list = list(qtypes)
        if len(qtypes_list) != len(query_objs):
            raise ValueError("need one query type per query object")
        if not query_objs:
            raise ValueError("batch must contain at least one query")
        space = next(iter(self.databases.values())).space
        forced_single = (
            share_bound is not None
            and math.isinf(share_bound)
            and share_bound > 0
        )
        if forced_single:
            groups = partition_by_sharing(
                query_objs,
                space,
                share_bound=share_bound,
                max_partition=max_block,
            )
        else:
            # Bucket by *kind*: the cost surface is probed per kind, so
            # radius classes of the same kind share one fit and may
            # merge when affine; different kinds never do.
            buckets: dict[str, list[int]] = {}
            for position, qtype in enumerate(qtypes_list):
                buckets.setdefault(qtype.kind, []).append(position)
            groups = []
            for positions in buckets.values():
                qtype = qtypes_list[positions[0]]
                local = partition_by_sharing(
                    [query_objs[i] for i in positions],
                    space,
                    share_bound=share_bound,
                    max_partition=max_block,
                )
                groups.extend(
                    self._merge_groups(
                        [sorted(positions[i] for i in g) for g in local],
                        qtype,
                        max_block,
                    )
                )
            groups.sort(key=lambda g: g[0])
        partitions = []
        total = 0.0
        for members in groups:
            qtype = qtypes_list[members[0]]
            fits = self.fit_surface(qtype)
            block = len(members) if max_block is None else min(
                len(members), max_block
            )
            best = min(fits, key=lambda fit: fit.per_query(block))
            part = PartitionPlan(
                members=tuple(members),
                access=best.access,
                engine=best.engine,
                block_size=block,
                prefilter=self.prefilter is not None,
                predicted_seconds_per_query=best.per_query(block),
                sharing_factor=best.sharing_factor(block),
            )
            partitions.append(part)
            total += part.predicted_seconds
        return BatchPlan(partitions=tuple(partitions), predicted_seconds=total)

    def _merge_groups(
        self,
        groups: list[list[int]],
        qtype: QueryType,
        max_block: int | None,
    ) -> list[list[int]]:
        """Merge affinity-adjacent groups while merging is priced cheaper.

        ``groups`` come out of :func:`partition_by_sharing` in chain
        order, so consecutive groups are each other's nearest clusters;
        a merge keeps member positions sorted (admission order within a
        partition, preserving the v1 execution discipline).  Merges are
        accepted while the cost surface prices the merged block cheaper
        *and* the merged size stays within the kind's knee-point block
        size: beyond the knee the predicted amortization is within
        tolerance of zero, while larger blocks couple more queries to
        one traversal -- the same diminishing-returns rule the v1
        scheduler applies to its single block target.
        """
        fits = self.fit_surface(qtype)
        total = sum(len(group) for group in groups)
        cap = total if max_block is None else min(total, max_block)
        best = min(fits, key=lambda fit: fit.per_query(cap))
        knee = knee_block_size(best, cap)

        def cost(m: int) -> float:
            return m * min(fit.per_query(min(m, cap)) for fit in fits)

        merged = [groups[0]]
        for group in groups[1:]:
            a, b = len(merged[-1]), len(group)
            if a + b <= knee and cost(a + b) <= cost(a) + cost(b):
                merged[-1] = sorted(merged[-1] + group)
            else:
                merged.append(group)
        return merged

    def database_for(self, plan: WorkloadPlan) -> Database:
        """The already-built database matching a plan."""
        return self.databases[plan.access]
