"""Dataset containers for metric databases.

Two kinds of databases appear in the paper: vector databases (feature
vectors of stars, colour histograms of images) and general metric
databases (e.g. WWW sessions compared by a metric that is not induced by
a vector space).  :class:`VectorDataset` stores a numpy matrix and
enables the vectorised engine and R-tree-family indexes;
:class:`GenericDataset` stores arbitrary objects for use with metric
indexes (M-tree) and the reference engine.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np


class Dataset:
    """Base class of dataset containers.

    A dataset assigns every object a stable integer identifier equal to
    its position; pages reference objects by these identifiers.
    """

    labels: np.ndarray | None

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> Any:
        raise NotImplementedError

    def batch(self, indices: np.ndarray) -> Any:
        """Return the objects at ``indices`` in a batch-friendly form."""
        raise NotImplementedError

    @property
    def is_vector(self) -> bool:
        """Whether the objects are rows of a numeric matrix."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[Any]:
        for i in range(len(self)):
            yield self[i]


class VectorDataset(Dataset):
    """A dataset of fixed-dimension numeric vectors.

    Parameters
    ----------
    vectors:
        Matrix of shape ``(n, d)``; copied to float64 and made read-only.
    labels:
        Optional per-object labels (class ids for classification
        workloads, cluster ids for generated data).
    """

    def __init__(self, vectors: np.ndarray, labels: Sequence[Any] | None = None):
        vectors = np.asarray(vectors, dtype=float)
        if vectors.ndim != 2:
            raise ValueError("vectors must be a 2-d array of shape (n, d)")
        self.vectors = vectors.copy()
        self.vectors.setflags(write=False)
        if labels is not None:
            labels = np.asarray(labels)
            if labels.shape[0] != vectors.shape[0]:
                raise ValueError("labels must have one entry per object")
        self.labels = labels

    @property
    def dimension(self) -> int:
        """Number of vector components per object."""
        return int(self.vectors.shape[1])

    @property
    def is_vector(self) -> bool:
        return True

    def __len__(self) -> int:
        return int(self.vectors.shape[0])

    def __getitem__(self, index: int) -> np.ndarray:
        return self.vectors[index]

    def batch(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.intp)
        n = indices.size
        if n > 1:
            first = int(indices[0])
            # Consecutive pages (scan access, benchmark pages) come back
            # as a view instead of a gather copy; callers treat batches
            # as read-only.
            if int(indices[-1]) - first == n - 1 and np.array_equal(
                indices, np.arange(first, first + n)
            ):
                return self.vectors[first:first + n]
        return self.vectors[indices]

    def __repr__(self) -> str:
        return f"VectorDataset(n={len(self)}, d={self.dimension})"


class GenericDataset(Dataset):
    """A dataset of arbitrary objects under a user-supplied metric."""

    def __init__(self, objects: Sequence[Any], labels: Sequence[Any] | None = None):
        self.objects = list(objects)
        if labels is not None:
            labels = np.asarray(labels)
            if labels.shape[0] != len(self.objects):
                raise ValueError("labels must have one entry per object")
        self.labels = labels

    @property
    def is_vector(self) -> bool:
        return False

    def __len__(self) -> int:
        return len(self.objects)

    def __getitem__(self, index: int) -> Any:
        return self.objects[index]

    def batch(self, indices: np.ndarray) -> list[Any]:
        return [self.objects[int(i)] for i in np.asarray(indices, dtype=np.intp)]

    def __repr__(self) -> str:
        return f"GenericDataset(n={len(self)})"


def as_dataset(data: Dataset | np.ndarray | Sequence[Any]) -> Dataset:
    """Coerce raw data into a :class:`Dataset`.

    Numeric 2-d arrays become :class:`VectorDataset`; any other sequence
    becomes :class:`GenericDataset`.
    """
    if isinstance(data, Dataset):
        return data
    if isinstance(data, np.ndarray) and data.ndim == 2:
        return VectorDataset(data)
    try:
        array = np.asarray(data, dtype=float)
    except (TypeError, ValueError):
        return GenericDataset(list(data))
    if array.ndim == 2:
        return VectorDataset(array)
    return GenericDataset(list(data))
