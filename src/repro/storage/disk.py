"""Simulated disk: page registry plus I/O accounting."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.costmodel import Counters
from repro.storage.buffer import LRUBufferPool
from repro.storage.page import DEFAULT_BLOCK_SIZE, Page

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import DiskFaultGate


class SimulatedDisk:
    """Registry of pages with sequential/random read accounting.

    The disk distinguishes two access patterns, mirroring the argument of
    [22] (VA-file) that the paper adopts: a scan over consecutive
    physical addresses is charged as sequential block reads, any other
    access as random block reads (seek + transfer).  An optional LRU
    buffer pool absorbs re-reads.

    Reading a page returns the :class:`Page` itself -- object payloads
    live in the dataset arrays; the disk only accounts for the I/O.
    """

    def __init__(
        self,
        counters: Counters | None = None,
        buffer_blocks: int = 0,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ):
        self.counters = counters if counters is not None else Counters()
        self.block_size = block_size
        self.buffer = LRUBufferPool(buffer_blocks)
        self._pages: dict[int, Page] = {}
        self._last_address_read: int | None = None
        #: Optional :class:`~repro.faults.injector.DiskFaultGate`;
        #: consulted before every read is charged.  ``None`` (the
        #: default) keeps the read path entirely fault-free -- no extra
        #: work beyond one attribute check.
        self.faults: DiskFaultGate | None = None

    def register(self, page: Page) -> Page:
        """Add a page to the disk; page ids must be unique."""
        if page.page_id in self._pages:
            raise ValueError(f"page id {page.page_id} already registered")
        self._pages[page.page_id] = page
        return page

    def register_all(self, pages: Iterable[Page]) -> None:
        """Register several pages."""
        for page in pages:
            self.register(page)

    def allocate_page_id(self) -> int:
        """Return the next unused physical address."""
        return max(self._pages, default=-1) + 1

    def page(self, page_id: int) -> Page:
        """Look up a registered page without performing I/O."""
        return self._pages[page_id]

    @property
    def n_pages(self) -> int:
        """Number of registered pages."""
        return len(self._pages)

    @property
    def total_blocks(self) -> int:
        """Total number of blocks occupied by all registered pages."""
        return sum(p.n_blocks for p in self._pages.values())

    def read(self, page: Page | int, sequential: bool = False) -> Page:
        """Read a page, charging buffer hits or block reads.

        ``sequential=True`` asserts the caller reads consecutive physical
        addresses (the linear scan); the charge is further downgraded to
        random when the previous read was not the immediately preceding
        address, so mislabelled access patterns cannot understate cost.
        """
        if isinstance(page, int):
            page = self._pages[page]
        elif page.page_id not in self._pages:
            raise KeyError(f"page {page.page_id} is not registered")

        if self.faults is not None:
            # Injection happens strictly before any counter is charged:
            # retried reads charge nothing, the final successful read
            # charges exactly once, so recovered runs keep counters
            # byte-identical to the fault-free run.
            self.faults.before_read(page.page_id)

        if self.buffer.access(page.page_id, page.n_blocks):
            self.counters.buffer_hits += page.n_blocks
        else:
            is_consecutive = (
                self._last_address_read is not None
                and page.page_id == self._last_address_read + 1
            )
            if sequential and is_consecutive:
                self.counters.sequential_page_reads += page.n_blocks
            elif sequential and self._last_address_read is None:
                self.counters.sequential_page_reads += page.n_blocks
            else:
                self.counters.random_page_reads += page.n_blocks
        self._last_address_read = page.page_id + page.n_blocks - 1
        return page

    def set_buffer_blocks(self, capacity_blocks: int) -> None:
        """Resize the buffer pool (used once the index size is known).

        The paper sizes the buffer relative to the built index (10 % of
        the X-tree); resizing empties the pool.
        """
        self.buffer = LRUBufferPool(capacity_blocks)

    def snapshot_state(self) -> dict[str, Any]:
        """Capture mutable I/O state (buffer + head) for crash rollback.

        Counters are snapshotted separately by the recovery layer (they
        may be shared with distance accounting); this covers the state
        the disk itself owns.
        """
        return {
            "buffer": self.buffer.snapshot(),
            "last_address_read": self._last_address_read,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Roll back to a :meth:`snapshot_state` before replaying a block."""
        self.buffer.restore(state["buffer"])
        self._last_address_read = state["last_address_read"]

    def reset_head(self) -> None:
        """Forget the last read address (a new scan starts cold)."""
        self._last_address_read = None

    def clear_buffer(self) -> None:
        """Empty the buffer pool (cold-cache experiments)."""
        self.buffer.clear()
        self._last_address_read = None
