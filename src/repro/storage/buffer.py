"""LRU buffer pool for the simulated disk."""

from __future__ import annotations

from collections import OrderedDict


class LRUBufferPool:
    """Least-recently-used page buffer with a capacity in blocks.

    The paper's evaluation used a buffer sized at 10 % of the X-tree
    (Sec. 6).  A page request that hits the buffer causes no physical
    I/O.  Pages larger than one block (X-tree supernodes) occupy their
    full block count in the pool.

    A capacity of zero disables buffering entirely.
    """

    def __init__(self, capacity_blocks: int):
        if capacity_blocks < 0:
            raise ValueError("buffer capacity cannot be negative")
        self.capacity_blocks = capacity_blocks
        self._pages: OrderedDict[int, int] = OrderedDict()
        self._used_blocks = 0
        #: Lifetime page lookups (one per :meth:`access` call, counted
        #: per request -- unlike ``Counters.buffer_hits``, which charges
        #: per *block* for multi-block supernodes).
        self.lookups = 0
        #: Lifetime lookups satisfied without physical I/O.
        self.hits = 0

    @property
    def used_blocks(self) -> int:
        """Blocks currently occupied by buffered pages."""
        return self._used_blocks

    @property
    def hit_rate(self) -> float:
        """Fraction of page lookups served from the pool (hits/lookups).

        The I/O-sharing argument of Sec. 5.1 shows up here directly: a
        multiple similarity query turns the re-reads that single queries
        would pay into buffer hits (or avoids them entirely via the
        per-batch page stream), so batched workloads push this rate up
        at equal buffer capacity.  Returns 0.0 before any lookup.
        """
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def access(self, page_id: int, n_blocks: int = 1) -> bool:
        """Record an access to ``page_id``; return ``True`` on a hit.

        On a miss the page is admitted (when it fits at all) and the
        least-recently-used pages are evicted to make room.
        """
        self.lookups += 1
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self.hits += 1
            return True
        self._admit(page_id, n_blocks)
        return False

    def _admit(self, page_id: int, n_blocks: int) -> None:
        if n_blocks > self.capacity_blocks:
            return
        while self._used_blocks + n_blocks > self.capacity_blocks:
            _, evicted_blocks = self._pages.popitem(last=False)
            self._used_blocks -= evicted_blocks
        self._pages[page_id] = n_blocks
        self._used_blocks += n_blocks

    def snapshot(self) -> tuple[OrderedDict[int, int], int, int, int]:
        """Capture pool contents and statistics for crash rollback."""
        return (
            self._pages.copy(),
            self._used_blocks,
            self.lookups,
            self.hits,
        )

    def restore(self, state: tuple[OrderedDict[int, int], int, int, int]) -> None:
        """Roll the pool back to a :meth:`snapshot` (recovery replay)."""
        pages, used_blocks, lookups, hits = state
        self._pages = pages.copy()
        self._used_blocks = used_blocks
        self.lookups = lookups
        self.hits = hits

    def invalidate(self, page_id: int) -> None:
        """Drop ``page_id`` from the pool (e.g. after a page split)."""
        blocks = self._pages.pop(page_id, None)
        if blocks is not None:
            self._used_blocks -= blocks

    def clear(self) -> None:
        """Empty the pool (cold-cache experiments)."""
        self._pages.clear()
        self._used_blocks = 0
