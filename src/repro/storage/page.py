"""Disk pages of the simulated database."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

#: Disk block size used throughout the paper's evaluation (Sec. 6).
DEFAULT_BLOCK_SIZE = 32 * 1024


class PageKind(enum.Enum):
    """What a page stores: database objects or index directory entries."""

    DATA = "data"
    DIRECTORY = "directory"


@dataclass
class Page:
    """One disk page of the simulated database.

    Attributes
    ----------
    page_id:
        Stable identifier; also the physical address on the simulated
        disk.  Data pages of one database occupy a contiguous address
        range in physical order, which is what makes a sequential scan
        seek-free.
    kind:
        Data page (stores objects) or directory page (stores index
        entries).
    indices:
        For data pages: row indices of the stored objects within the
        dataset, in storage order.
    n_blocks:
        Number of physical blocks occupied.  Regular pages occupy one
        block; X-tree supernodes occupy several consecutive blocks and
        are charged accordingly on every read.
    """

    page_id: int
    kind: PageKind = PageKind.DATA
    indices: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.intp))
    n_blocks: int = 1

    def __post_init__(self) -> None:
        self.indices = np.asarray(self.indices, dtype=np.intp)
        if self.n_blocks < 1:
            raise ValueError("a page occupies at least one block")

    @property
    def n_objects(self) -> int:
        """Number of database objects stored on this page."""
        return int(self.indices.size)

    def __hash__(self) -> int:
        return hash(self.page_id)

    def __repr__(self) -> str:
        return (
            f"Page(id={self.page_id}, kind={self.kind.value}, "
            f"objects={self.n_objects}, blocks={self.n_blocks})"
        )
