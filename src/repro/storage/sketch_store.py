"""Persistence for page pre-filter sketches.

A :class:`~repro.prefilter.sketch.PivotSketch` is a pure function of the
dataset, the page layout, and the build parameters, so rebuilding it is
always possible -- but on large datasets pivot selection performs
``n_pivots`` full passes over the data, and a mining campaign re-opening
the same database should not pay that repeatedly.  This module stores
the sketch arrays in a single compressed ``.npz`` archive.

Pivot *objects* are deliberately not serialised: they live in the
dataset, and persisting copies would both bloat the file and risk the
copy drifting from the data it summarises.  :func:`load_sketch` rebinds
them from the dataset via the stored pivot indices and validates the
shapes, so a sketch file paired with the wrong dataset fails loudly
instead of producing unsound bounds.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.data import Dataset

if TYPE_CHECKING:  # pragma: no cover - import cycle: prefilter uses storage
    from repro.prefilter.sketch import PivotSketch

#: Format marker stored inside the archive; bump on incompatible change.
_FORMAT = "repro-sketch-v1"

#: Array fields persisted verbatim (the optional ones only when set).
_OPTIONAL_ARRAYS = ("grid_lo", "grid_step", "codes_lo", "codes_hi")


def save_sketch(sketch: "PivotSketch", path: str | Path) -> Path:
    """Write a sketch to ``path`` as a compressed ``.npz`` archive."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {
        "format": np.array(_FORMAT),
        "kind": np.array(sketch.kind),
        "bits": np.array(sketch.bits, dtype=np.int64),
        "pivot_indices": np.asarray(sketch.pivot_indices),
        "page_ids": np.asarray(sketch.page_ids),
        "page_lo": np.asarray(sketch.page_lo),
        "page_hi": np.asarray(sketch.page_hi),
    }
    for name in _OPTIONAL_ARRAYS:
        value = getattr(sketch, name)
        if value is not None:
            arrays[name] = np.asarray(value)
    with path.open("wb") as handle:
        np.savez_compressed(handle, **arrays)
    return path


def load_sketch(path: str | Path, dataset: Dataset) -> "PivotSketch":
    """Load a sketch and rebind its pivot objects from ``dataset``.

    Raises ``ValueError`` when the file is not a sketch archive, the
    format version is unknown, or the stored pivot indices fall outside
    the dataset -- the symptom of pairing a sketch with data it was not
    built over.
    """
    # Imported here, not at module level: the prefilter package itself
    # builds on the storage substrate.
    from repro.prefilter.sketch import KIND_QUANTIZED, PivotSketch

    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        if "format" not in archive.files:
            raise ValueError(f"{path} is not a sketch archive")
        fmt = str(archive["format"])
        if fmt != _FORMAT:
            raise ValueError(f"unsupported sketch format {fmt!r}")
        kind = str(archive["kind"])
        bits = int(archive["bits"])
        pivot_indices = archive["pivot_indices"].astype(np.intp)
        page_ids = archive["page_ids"].astype(np.int64)
        page_lo = archive["page_lo"].astype(float)
        page_hi = archive["page_hi"].astype(float)
        optional = {
            name: archive[name] if name in archive.files else None
            for name in _OPTIONAL_ARRAYS
        }
    n = len(dataset)
    if pivot_indices.size and (
        pivot_indices.min() < 0 or pivot_indices.max() >= n
    ):
        raise ValueError(
            f"sketch pivots reference objects outside the dataset "
            f"(n={n}); the sketch was built over different data"
        )
    if kind == KIND_QUANTIZED and optional["grid_lo"] is not None:
        expected = (pivot_indices.size,)
        if optional["grid_lo"].shape != expected:
            raise ValueError("sketch grid does not match the pivot count")
    return PivotSketch(
        kind=kind,
        pivot_indices=pivot_indices,
        pivot_objects=[dataset[int(i)] for i in pivot_indices],
        page_ids=page_ids,
        page_lo=page_lo,
        page_hi=page_hi,
        bits=bits,
        grid_lo=optional["grid_lo"],
        grid_step=optional["grid_step"],
        codes_lo=optional["codes_lo"],
        codes_hi=optional["codes_hi"],
    )
