"""Storage substrate: simulated disk, pages and buffer management.

The paper measures I/O cost as the number (and kind) of disk-block reads
on a system with 32 KB blocks and an LRU buffer sized at 10 % of the
index.  This package reproduces that model: datasets are laid out on
:class:`Page` objects with physical addresses, a :class:`SimulatedDisk`
charges sequential or random block reads to the shared counters, and an
:class:`LRUBufferPool` absorbs re-reads of hot pages.
"""

from repro.storage.buffer import LRUBufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.layout import data_page_capacity, paginate
from repro.storage.page import DEFAULT_BLOCK_SIZE, Page, PageKind
from repro.storage.sketch_store import load_sketch, save_sketch

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "LRUBufferPool",
    "Page",
    "PageKind",
    "SimulatedDisk",
    "data_page_capacity",
    "load_sketch",
    "paginate",
    "save_sketch",
]
