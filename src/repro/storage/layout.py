"""Laying out a dataset on data pages."""

from __future__ import annotations

import numpy as np

from repro.storage.page import DEFAULT_BLOCK_SIZE, Page, PageKind

#: Bytes per stored vector component (the paper stored 32-bit floats).
VALUE_BYTES = 4

#: Per-object record overhead (object identifier).
RECORD_OVERHEAD_BYTES = 8


def data_page_capacity(
    dimension: int,
    block_size: int = DEFAULT_BLOCK_SIZE,
    value_bytes: int = VALUE_BYTES,
) -> int:
    """Objects per data page for ``dimension``-d vectors.

    >>> data_page_capacity(20)
    372
    """
    record = dimension * value_bytes + RECORD_OVERHEAD_BYTES
    capacity = block_size // record
    if capacity < 1:
        raise ValueError(
            f"block size {block_size} cannot hold one {dimension}-d record"
        )
    return capacity


def paginate(
    n_objects: int,
    capacity: int,
    order: np.ndarray | None = None,
    first_page_id: int = 0,
) -> list[Page]:
    """Slice ``n_objects`` into data pages of at most ``capacity`` objects.

    ``order`` optionally permutes the objects before slicing (clustered
    layouts place similar objects on the same page); by default objects
    are stored in dataset order.  Pages receive consecutive physical
    addresses starting at ``first_page_id``.
    """
    if capacity < 1:
        raise ValueError("page capacity must be positive")
    if order is None:
        order = np.arange(n_objects, dtype=np.intp)
    else:
        order = np.asarray(order, dtype=np.intp)
        if order.size != n_objects:
            raise ValueError("order must be a permutation of all objects")
    pages = []
    for offset, start in enumerate(range(0, n_objects, capacity)):
        pages.append(
            Page(
                page_id=first_page_id + offset,
                kind=PageKind.DATA,
                indices=order[start : start + capacity],
            )
        )
    return pages
