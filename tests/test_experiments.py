"""Tests for the evaluation harness (small preset)."""

import pytest

from repro.experiments import ExperimentConfig, FigureResult, Series
from repro.experiments import figures as figures_module
from repro.experiments.runner import (
    clear_caches,
    dataset_k,
    get_dataset,
    sweep,
    workload_queries,
)


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig.small()


class TestRunner:
    def test_datasets_cached(self, config):
        a = get_dataset("astronomy", config)
        b = get_dataset("astronomy", config)
        assert a is b
        assert len(a) == config.astronomy_n

    def test_unknown_dataset(self, config):
        with pytest.raises(ValueError):
            get_dataset("weather", config)

    def test_dataset_k(self, config):
        assert dataset_k("astronomy", config) == config.astronomy_k
        assert dataset_k("image", config) == config.image_k

    def test_workload_queries_are_db_indices(self, config):
        for name in ("astronomy", "image"):
            queries = workload_queries(name, config)
            n = len(get_dataset(name, config))
            assert len(queries) == config.n_queries
            assert all(0 <= q < n for q in queries)

    def test_image_queries_are_dependent(self, config):
        # The image workload must be neighbourhood-derived: consecutive
        # queries are much closer together than random pairs.
        import numpy as np

        dataset = get_dataset("image", config)
        queries = workload_queries("image", config)
        vectors = dataset.vectors[queries]
        consecutive = np.sqrt(((vectors[1:] - vectors[:-1]) ** 2).sum(1)).mean()
        rng = np.random.default_rng(0)
        random_pairs = dataset.vectors[rng.integers(0, len(dataset), (200, 2))]
        random_mean = np.sqrt(
            ((random_pairs[:, 0] - random_pairs[:, 1]) ** 2).sum(1)
        ).mean()
        assert consecutive < random_mean

    def test_sweep_shapes(self, config):
        points = sweep("astronomy", "scan", config)
        assert set(points) == set(config.m_values)
        m_lo, m_hi = config.m_values[0], config.m_values[-1]
        # Batching can never increase the scan's per-query I/O cost.
        assert points[m_hi].io_seconds < points[m_lo].io_seconds
        # Scan I/O reduction is essentially the block size.
        ratio = points[m_lo].io_seconds / points[m_hi].io_seconds
        assert ratio == pytest.approx(m_hi, rel=0.15)

    def test_sweep_cached(self, config):
        assert sweep("astronomy", "scan", config) is sweep(
            "astronomy", "scan", config
        )

    def test_clear_caches(self, config):
        sweep("astronomy", "scan", config)
        first = get_dataset("astronomy", config)
        clear_caches()
        assert get_dataset("astronomy", config) is not first


class TestFigures:
    @pytest.mark.parametrize(
        "harness",
        [
            figures_module.run_figure7,
            figures_module.run_figure8,
            figures_module.run_figure9,
        ],
    )
    def test_cost_figures_have_four_series(self, harness, config):
        result = harness(config)
        assert len(result.series) == 4
        assert all(len(s.values) == len(config.m_values) for s in result.series)
        assert all(all(v >= 0 for v in s.values) for s in result.series)
        assert result.paper_notes and result.measured_notes

    def test_figure10_normalised_to_one(self, config):
        result = figures_module.run_figure10(config)
        for series in result.series:
            assert series.values[0] == pytest.approx(1.0)
            assert series.values[-1] > 1.0  # batching always helps

    def test_figure9_is_sum_of_7_and_8(self, config):
        io = figures_module.run_figure7(config)
        cpu = figures_module.run_figure8(config)
        total = figures_module.run_figure9(config)
        for s_io, s_cpu, s_total in zip(io.series, cpu.series, total.series):
            for a, b, c in zip(s_io.values, s_cpu.values, s_total.values):
                assert c == pytest.approx(a + b)

    def test_figure11_and_12(self, config):
        fig11 = figures_module.run_figure11(config)
        fig12 = figures_module.run_figure12(config)
        assert len(fig11.series) == 4
        for series in fig11.series:
            assert series.values[0] == pytest.approx(1.0, rel=0.05)
        for series in fig12.series:
            # Combined technique always beats sequential single queries.
            assert all(v > 1.0 for v in series.values)

    def test_k_robustness(self, config):
        result = figures_module.run_k_robustness(config)
        assert len(result.series) == 4
        assert all(len(s.values) == len(config.k_values) for s in result.series)

    def test_microtimings(self):
        result = figures_module.run_sec62_microtimings(repeats=20_000)
        measured = result.series_by_label("measured (vectorised, per element)")
        dist20, dist64, comparison = measured.values
        assert dist64 > dist20 > comparison
        # A distance calculation is at least 5x a comparison even in
        # numpy-amortised Python.
        assert dist20 / comparison > 5


class TestReport:
    def _figure(self):
        return FigureResult(
            figure_id="Figure X",
            title="Test figure",
            x_label="m",
            x_values=[1, 10],
            y_label="seconds",
            series=[Series(label="a", values=[1.0, 0.5])],
            paper_notes=["note"],
            measured_notes=["got"],
        )

    def test_render_contains_everything(self):
        text = self._figure().render()
        assert "Figure X" in text
        assert "a" in text
        assert "paper:" in text and "measured:" in text

    def test_markdown_table(self):
        md = self._figure().to_markdown()
        assert md.startswith("### Figure X")
        assert "| m | 1 | 10 |" in md
        assert "**Paper reports:**" in md

    def test_series_lookup(self):
        figure = self._figure()
        assert figure.series_by_label("a").values == [1.0, 0.5]
        with pytest.raises(KeyError):
            figure.series_by_label("b")
