"""Tests for dynamic index maintenance: deletion, forced reinsertion,
and the M-tree construction paths."""

import numpy as np
import pytest

from repro import Database, GenericDataset, get_distance, knn_query


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(91)
    centers = rng.random((5, 5))
    return np.clip(
        centers[rng.integers(0, 5, 600)] + rng.standard_normal((600, 5)) * 0.05,
        0,
        1,
    )


def check_xtree_invariants(tree, dataset, expected_indices):
    stored = sorted(int(i) for page in tree.data_pages() for i in page.indices)
    assert stored == sorted(expected_indices)
    for node in tree.iter_nodes():
        if node.is_leaf:
            for point in dataset.batch(node.page.indices):
                assert node.mbr.contains_point(point)
        else:
            assert node.children
            for child in node.children:
                assert child.parent is node
                assert np.all(node.mbr.lo <= child.mbr.lo + 1e-12)
                assert np.all(child.mbr.hi <= node.mbr.hi + 1e-12)


class TestXTreeDeletion:
    def _dynamic_db(self, vectors):
        return Database(
            vectors,
            access="xtree",
            block_size=1024,
            index_options={"bulk_load": False},
        )

    def test_delete_removes_object(self, vectors):
        db = self._dynamic_db(vectors)
        tree = db.access_method
        assert tree.delete(42)
        check_xtree_invariants(tree, db.dataset, set(range(600)) - {42})

    def test_delete_missing_returns_false(self, vectors):
        db = self._dynamic_db(vectors)
        tree = db.access_method
        assert tree.delete(42)
        assert not tree.delete(42)

    def test_queries_correct_after_mass_deletion(self, vectors):
        db = self._dynamic_db(vectors)
        tree = db.access_method
        rng = np.random.default_rng(3)
        deleted = set(int(i) for i in rng.choice(600, 300, replace=False))
        for index in deleted:
            assert tree.delete(index)
        remaining = np.array(sorted(set(range(600)) - deleted))
        check_xtree_invariants(tree, db.dataset, remaining.tolist())
        query = vectors[remaining[0]]
        answers = db.similarity_query(query, knn_query(5))
        dists = np.sqrt(((vectors[remaining] - query) ** 2).sum(axis=1))
        assert np.allclose(
            sorted(a.distance for a in answers), np.sort(dists)[:5]
        )
        assert all(a.index not in deleted for a in answers)

    def test_delete_everything_empties_tree(self, vectors):
        db = self._dynamic_db(vectors[:50])
        tree = db.access_method
        for index in range(50):
            assert tree.delete(index)
        assert tree.root is None
        assert tree.data_pages() == []

    def test_interleaved_insert_delete(self, vectors):
        from repro.costmodel import Counters
        from repro.data import VectorDataset
        from repro.index.xtree import XTree
        from repro.metric import MetricSpace
        from repro.storage import SimulatedDisk

        counters = Counters()
        space = MetricSpace("euclidean", counters)
        disk = SimulatedDisk(counters, block_size=1024)
        dataset = VectorDataset(vectors)
        tree = XTree(dataset, space, disk, bulk_load=False, leaf_capacity=16)
        # Shrink to the first 300, then churn: re-insert one deleted
        # object and delete a random present one, repeatedly.
        rng = np.random.default_rng(4)
        present = set(range(300))
        for index in range(300, 600):
            assert tree.delete(index)
        for index in range(300, 450):
            tree.insert(index)
            present.add(index)
            victim = int(rng.choice(sorted(present)))
            assert tree.delete(victim)
            present.discard(victim)
        check_xtree_invariants(tree, dataset, present)


class TestForcedReinsertion:
    def test_dynamic_build_quality(self, vectors):
        # Forced reinsertion should not hurt: the dynamically built tree
        # answers correctly and its pages respect capacity.
        db = Database(
            vectors,
            access="xtree",
            block_size=1024,
            index_options={"bulk_load": False},
        )
        tree = db.access_method
        for page in tree.data_pages():
            assert 1 <= page.n_objects <= tree.leaf_capacity
        check_xtree_invariants(tree, db.dataset, range(600))

    def test_reinsertion_triggered(self, vectors):
        from repro.costmodel import Counters
        from repro.data import VectorDataset
        from repro.index.xtree import XTree
        from repro.metric import MetricSpace
        from repro.storage import SimulatedDisk

        counters = Counters()
        space = MetricSpace("euclidean", counters)
        disk = SimulatedDisk(counters, block_size=1024)
        tree = XTree(
            VectorDataset(vectors[:100]),
            space,
            disk,
            bulk_load=False,
            leaf_capacity=8,
        )
        # With capacity 8 and 100 clustered inserts, reinsertion paths
        # ran; compare against brute force to prove nothing was lost.
        stored = sorted(int(i) for page in tree.data_pages() for i in page.indices)
        assert stored == list(range(100))


class TestMTreeConstructionPaths:
    @pytest.mark.parametrize("bulk", [True, False])
    def test_same_answers_both_builds(self, vectors, bulk):
        db = Database(
            vectors,
            access="mtree",
            block_size=2048,
            index_options={"bulk_load": bulk},
        )
        assert db.access_method.covering_radii_valid()
        query = vectors[7]
        answers = db.similarity_query(query, knn_query(9))
        dists = np.sqrt(((vectors - query) ** 2).sum(axis=1))
        assert np.allclose(
            sorted(a.distance for a in answers), np.sort(dists)[:9]
        )

    def test_bulk_load_much_cheaper_construction(self, vectors):
        import time

        t0 = time.perf_counter()
        Database(
            vectors, access="mtree", block_size=2048,
            index_options={"bulk_load": True},
        )
        bulk_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        Database(
            vectors, access="mtree", block_size=2048,
            index_options={"bulk_load": False},
        )
        insert_seconds = time.perf_counter() - t0
        assert bulk_seconds < insert_seconds

    def test_bulk_load_strings(self):
        rng = np.random.default_rng(6)
        words = [
            "".join(rng.choice(list("abcde"), size=rng.integers(2, 9)))
            for _ in range(300)
        ]
        db = Database(
            GenericDataset(words), metric="levenshtein", access="mtree",
            block_size=2048,
        )
        assert db.access_method.covering_radii_valid()
        lev = get_distance("levenshtein")
        answers = db.similarity_query("abcde", knn_query(5))
        expected = sorted(lev.one(w, "abcde") for w in words)[:5]
        assert sorted(a.distance for a in answers) == expected

    def test_bulk_load_duplicate_heavy_data(self):
        # Degenerate clustering fallback: many identical objects.
        data = np.zeros((200, 4))
        data[:10] = np.arange(40).reshape(10, 4) / 40.0
        db = Database(
            data, access="mtree", block_size=256,
            index_options={"bulk_load": True},
        )
        assert db.access_method.covering_radii_valid()
        answers = db.similarity_query(np.zeros(4), knn_query(5))
        assert all(a.distance == 0.0 for a in answers)
