"""Tests for the Database facade."""

import numpy as np
import pytest

from repro import Database, GenericDataset, knn_query


class TestConstruction:
    def test_accepts_raw_arrays(self, small_vectors):
        db = Database(small_vectors)
        assert len(db) == len(small_vectors)
        assert db.dataset.is_vector

    def test_accepts_generic_sequences(self):
        db = Database(
            GenericDataset(["aa", "ab", "ba"]), metric="levenshtein", access="mtree"
        )
        assert len(db) == 3
        assert db.engine == "reference"

    def test_unknown_access_method(self, small_vectors):
        with pytest.raises(ValueError, match="unknown access method"):
            Database(small_vectors, access="btree")

    def test_unknown_engine(self, small_vectors):
        with pytest.raises(ValueError, match="unknown engine"):
            Database(small_vectors, engine="gpu")

    def test_auto_engine_vectorized_for_vectors(self, small_vectors):
        assert Database(small_vectors).engine == "vectorized"

    def test_buffer_sized_from_disk(self, small_vectors):
        db = Database(small_vectors, buffer_fraction=0.5)
        assert db.disk.buffer.capacity_blocks == max(
            1, int(0.5 * db.disk.total_blocks)
        )

    def test_buffer_disabled(self, small_vectors):
        db = Database(small_vectors, buffer_fraction=0.0)
        assert db.disk.buffer.capacity_blocks == 0

    def test_cost_model_dimension(self, small_vectors):
        db = Database(small_vectors)
        assert db.cost_model.dimension == small_vectors.shape[1]

    def test_index_options_forwarded(self, small_vectors):
        db = Database(
            small_vectors, access="xtree", index_options={"leaf_capacity": 32}
        )
        assert db.access_method.leaf_capacity == 32


class TestMeasure:
    def test_measure_isolates_counters(self, small_vectors):
        db = Database(small_vectors, access="scan")
        db.similarity_query(small_vectors[0], knn_query(3))
        with db.measure() as run:
            db.similarity_query(small_vectors[1], knn_query(3))
        assert run.counters.queries_completed == 1
        assert run.counters.distance_calculations == len(small_vectors)

    def test_measure_costs_available_after_block(self, small_vectors):
        db = Database(small_vectors, access="scan")
        with db.measure() as run:
            db.similarity_query(small_vectors[0], knn_query(3))
        assert run.io_seconds > 0
        assert run.cpu_seconds > 0
        assert run.total_seconds == pytest.approx(run.io_seconds + run.cpu_seconds)

    def test_nested_queries_accumulate(self, small_vectors):
        db = Database(small_vectors, access="scan")
        with db.measure() as run:
            for i in range(3):
                db.similarity_query(small_vectors[i], knn_query(2))
        assert run.counters.queries_completed == 3

    def test_cold_clears_buffer(self, small_vectors):
        db = Database(small_vectors, access="scan")
        db.similarity_query(small_vectors[0], knn_query(3))
        db.cold()
        with db.measure() as run:
            db.similarity_query(small_vectors[0], knn_query(3))
        assert run.counters.buffer_hits == 0


class TestSummary:
    def test_summary_contents(self, small_vectors):
        db = Database(small_vectors, access="xtree")
        summary = db.summary()
        assert summary["objects"] == len(small_vectors)
        assert summary["metric"] == "euclidean"
        assert summary["name"] == "xtree"
        assert summary["disk_blocks"] > 0

    def test_doctest_style_usage(self):
        data = np.random.default_rng(0).random((300, 8))
        db = Database(data, access="xtree")
        with db.measure() as run:
            answers = db.similarity_query(data[0], knn_query(5))
        assert len(answers) == 5
        assert answers[0].distance == pytest.approx(0.0)
        assert run.counters.page_reads + run.counters.buffer_hits > 0
