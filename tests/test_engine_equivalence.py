"""Cross-engine equivalence: reference vs. vectorized vs. batched.

The three page-processing engines must produce *identical answer sets*
and *identical counters* on every page/batch for every vector metric
(DESIGN.md design decision 2, extended by the fused batched engine whose
avoidance is a post-hoc counter adjustment).  Seeded-random pages are
driven by hypothesis so shrinking yields a minimal failing seed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, knn_query, range_query
from repro.core.answers import AnswerList
from repro.core.engine import (
    PendingQuery,
    process_page_batched,
    process_page_reference,
    process_page_vectorized,
)
from repro.costmodel import Counters
from repro.data import VectorDataset
from repro.metric.distances import (
    ChebyshevDistance,
    CosineAngularDistance,
    EuclideanDistance,
    ManhattanDistance,
    MinkowskiDistance,
    QuadraticFormDistance,
    WeightedEuclideanDistance,
)
from repro.metric.space import MetricSpace
from repro.storage.page import Page

ENGINES = {
    "reference": process_page_reference,
    "vectorized": process_page_vectorized,
    "batched": process_page_batched,
}


def make_metric(name: str, dim: int, rng: np.random.Generator):
    if name == "euclidean":
        return EuclideanDistance()
    if name == "weighted_euclidean":
        return WeightedEuclideanDistance(rng.uniform(0.1, 2.0, dim))
    if name == "quadratic_form":
        return QuadraticFormDistance.color_histogram(dim)
    if name == "manhattan":
        return ManhattanDistance()
    if name == "chebyshev":
        return ChebyshevDistance()
    if name == "minkowski":
        return MinkowskiDistance(3.0)
    if name == "cosine_angular":
        return CosineAngularDistance()
    raise AssertionError(name)


VECTOR_METRICS = [
    "euclidean",
    "weighted_euclidean",
    "quadratic_form",
    "manhattan",
    "chebyshev",
    "minkowski",
    "cosine_angular",
]


def run_engine(process, metric, vectors, queries, qtypes, matrix, max_pivots):
    """Process two consecutive pages; return (answer sets, counters).

    The page split matters: the first page saturates the k-NN answer
    lists, so the second page exercises the avoidance lemmas with finite
    radii in every engine.
    """
    dataset = VectorDataset(vectors)
    half = len(vectors) // 2
    pages = [
        Page(page_id=0, indices=np.arange(half)),
        Page(page_id=1, indices=np.arange(half, len(vectors))),
    ]
    space = MetricSpace(metric)
    batch = [
        PendingQuery(
            key=i,
            obj=queries[i],
            qtype=qtypes[i],
            answers=AnswerList(qtypes[i]),
            slot=i,
        )
        for i in range(len(queries))
    ]
    for page in pages:
        process(
            page,
            batch,
            dataset,
            space,
            matrix,
            space.counters,
            max_pivots=max_pivots,
        )
    answer_sets = [
        frozenset(a.index for a in pending.answers.materialize())
        for pending in batch
    ]
    return answer_sets, space.counters.as_dict()


class TestThreeEngineEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        metric_name=st.sampled_from(VECTOR_METRICS),
        max_pivots=st.sampled_from([0, 2, 32]),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_pages_and_batches(self, seed, metric_name, max_pivots):
        rng = np.random.default_rng(seed)
        n_objects = int(rng.integers(2, 120))
        m = int(rng.integers(1, 10))
        dim = int(rng.integers(1, 8))
        vectors = rng.random((n_objects, dim))
        queries = rng.random((m, dim))
        metric = make_metric(metric_name, dim, rng)
        scale = metric.one(np.zeros(dim), np.ones(dim)) or 1.0
        qtypes = [
            knn_query(int(rng.integers(1, 6)))
            if i % 2 == 0
            else range_query(float(rng.uniform(0.05, 0.6)) * scale)
            for i in range(m)
        ]
        matrix = np.zeros((m, m))
        for i in range(m):
            for j in range(m):
                matrix[i, j] = metric.one(queries[i], queries[j])

        results = {
            name: run_engine(
                process, metric, vectors, queries, qtypes, matrix, max_pivots
            )
            for name, process in ENGINES.items()
        }
        reference = results["reference"]
        assert results["vectorized"][0] == reference[0]
        assert results["batched"][0] == reference[0]
        assert results["vectorized"][1] == reference[1]
        assert results["batched"][1] == reference[1]

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_no_avoidance_counts_every_pair(self, seed):
        rng = np.random.default_rng(seed)
        n_objects = int(rng.integers(1, 80))
        m = int(rng.integers(1, 8))
        vectors = rng.random((n_objects, 4))
        queries = rng.random((m, 4))
        matrix = np.zeros((m, m))
        for name, process in ENGINES.items():
            space = MetricSpace("euclidean")
            dataset = VectorDataset(vectors)
            batch = [
                PendingQuery(
                    key=i,
                    obj=queries[i],
                    qtype=knn_query(3),
                    answers=AnswerList(knn_query(3)),
                    slot=i,
                )
                for i in range(m)
            ]
            process(
                Page(page_id=0, indices=np.arange(n_objects)),
                batch,
                dataset,
                space,
                matrix,
                space.counters,
                use_avoidance=False,
            )
            assert space.counters.distance_calculations == n_objects * m, name
            assert space.counters.avoidance_tries == 0, name


class TestFullStackEquivalence:
    """End-to-end: whole multiple-query runs agree across engines."""

    @pytest.mark.parametrize("access", ["scan", "xtree"])
    def test_query_all_identical(self, access):
        rng = np.random.default_rng(23)
        vectors = rng.random((400, 6))
        query_indices = list(range(0, 24))
        queries = [vectors[i] for i in query_indices]
        outcomes = {}
        for engine in ("reference", "vectorized", "batched"):
            db = Database(
                vectors, access=access, block_size=2048, engine=engine
            )
            with db.measure() as run:
                results = db.run_in_blocks(
                    queries,
                    knn_query(5),
                    block_size=8,
                    db_indices=query_indices,
                )
            outcomes[engine] = (
                [frozenset(a.index for a in answers) for answers in results],
                run.counters.as_dict(),
            )
        assert outcomes["vectorized"] == outcomes["reference"]
        assert outcomes["batched"] == outcomes["reference"]


class TestCrossKernel:
    """The fused ``cross`` kernels agree with pairwise ``one``."""

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        metric_name=st.sampled_from(VECTOR_METRICS),
    )
    @settings(max_examples=40, deadline=None)
    def test_cross_matches_one(self, seed, metric_name):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 30))
        m = int(rng.integers(1, 8))
        dim = int(rng.integers(1, 10))
        xs = rng.standard_normal((n, dim))
        qs = rng.standard_normal((m, dim))
        metric = make_metric(metric_name, dim, rng)
        got = metric.cross(xs, qs)
        assert got.shape == (n, m)
        expected = np.array(
            [[metric.one(x, q) for q in qs] for x in xs], dtype=float
        )
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-9)

    def test_cross_generic_fallback_nonvector(self):
        from repro.metric.distances import LevenshteinDistance

        metric = LevenshteinDistance()
        xs = ["kitten", "sitting", "abc"]
        qs = ["kitten", "flag"]
        got = metric.cross(xs, qs)
        assert got.shape == (3, 2)
        assert got[0, 0] == 0.0
        assert got[1, 0] == metric.one("sitting", "kitten")

    def test_cross_empty(self):
        metric = EuclideanDistance()
        assert metric.cross(np.empty((0, 3)), np.ones((2, 3))).shape == (0, 2)
        assert metric.cross(np.ones((2, 3)), np.empty((0, 3))).shape == (2, 0)

    def test_cross_many_counts(self):
        space = MetricSpace("euclidean")
        xs = np.random.default_rng(0).random((7, 3))
        qs = np.random.default_rng(1).random((4, 3))
        space.cross_many(xs, qs)
        assert space.counters.distance_calculations == 28
