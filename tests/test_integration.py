"""Cross-module integration tests: full pipelines over real workloads."""

import numpy as np
import pytest

from repro import Database, knn_query, range_query
from repro.costmodel import CostModel
from repro.mining import dbscan, knn_classify, simulate_concurrent_exploration
from repro.parallel import ParallelDatabase
from repro.workloads import (
    make_astronomy,
    make_image_histograms,
    make_web_sessions,
)

from tests.helpers import brute_force_answers


@pytest.fixture(scope="module")
def astronomy():
    return make_astronomy(n=3000, seed=2)


@pytest.fixture(scope="module")
def images():
    return make_image_histograms(n=1500, seed=3)


class TestAstronomyPipeline:
    def test_classification_beats_chance(self, astronomy):
        database = Database(astronomy, access="xtree")
        indices = list(range(0, 300, 3))
        predictions = knn_classify(database, indices, k=10, exclude_self=True)
        truth = [astronomy.labels[i] for i in indices]
        accuracy = float(np.mean([p == t for p, t in zip(predictions, truth)]))
        n_classes = len(np.unique(astronomy.labels))
        assert accuracy > 2.0 / n_classes

    def test_multiple_query_cost_le_single(self, astronomy):
        database = Database(astronomy, access="xtree")
        indices = list(range(0, 120, 4))
        queries = [astronomy[i] for i in indices]
        with database.measure() as single:
            for query in queries:
                database.similarity_query(query, knn_query(10))
        database.cold()
        with database.measure() as multi:
            database.run_in_blocks(
                queries,
                knn_query(10),
                block_size=len(queries),
                db_indices=indices,
                warm_start=True,
            )
        assert multi.total_seconds < single.total_seconds

    def test_all_access_methods_agree(self, astronomy):
        queries = [astronomy[i] for i in (0, 777, 1500)]
        reference = None
        for access in ("scan", "xtree", "vafile", "mtree"):
            database = Database(astronomy, access=access)
            results = database.multiple_similarity_query(queries, knn_query(7))
            distances = [sorted(a.distance for a in r) for r in results]
            if reference is None:
                reference = distances
            else:
                for got, expected in zip(distances, reference):
                    assert got == pytest.approx(expected), access


class TestImagePipeline:
    def test_histograms_query_correct(self, images):
        database = Database(images, access="xtree")
        query = images[3]
        answers = database.similarity_query(query, knn_query(20))
        expected = brute_force_answers(images.vectors, query, knn_query(20))
        assert sorted(a.distance for a in answers) == pytest.approx(
            [d for _, d in expected]
        )

    def test_exploration_stays_in_clusters(self, images):
        # Highly clustered data: most exploration steps stay inside one
        # scene cluster (users starting in tiny clusters may jump once).
        database = Database(images, access="xtree")
        trace = simulate_concurrent_exploration(
            database, n_users=3, k=5, n_rounds=3, seed=1
        )
        same = total = 0
        for path in trace.user_paths:
            labels = [int(images.labels[i]) for i in path]
            for a, b in zip(labels, labels[1:]):
                total += 1
                same += a == b
        assert same >= total / 2

    def test_dbscan_on_histograms(self, images):
        database = Database(images, access="scan")
        result = dbscan(database, eps=0.05, min_pts=5, batch_size=16)
        assert result.n_clusters > 3
        # Discovered clusters align with generator clusters.
        pure = 0
        for cluster_id in range(result.n_clusters):
            members = result.cluster_members(cluster_id)
            if len(set(images.labels[members].tolist())) == 1:
                pure += 1
        assert pure >= result.n_clusters * 0.8


class TestWebSessionPipeline:
    def test_mtree_multi_query_on_strings(self):
        sessions = make_web_sessions(n=300, seed=5)
        database = Database(sessions, metric="levenshtein", access="mtree")
        queries = [sessions[i] for i in range(12)]
        results = database.multiple_similarity_query(queries, knn_query(5))
        from repro import get_distance

        lev = get_distance("levenshtein")
        for query, answers in zip(queries, results):
            expected = sorted(lev.one(s, query) for s in sessions)[:5]
            assert sorted(a.distance for a in answers) == expected

    def test_range_queries_batch(self):
        sessions = make_web_sessions(n=200, seed=6)
        database = Database(sessions, metric="levenshtein", access="mtree")
        queries = [sessions[i] for i in range(6)]
        results = database.multiple_similarity_query(queries, range_query(4.0))
        from repro import get_distance

        lev = get_distance("levenshtein")
        for query, answers in zip(queries, results):
            expected = {
                i for i, s in enumerate(sessions) if lev.one(s, query) <= 4.0
            }
            assert {a.index for a in answers} == expected


class TestParallelPipeline:
    def test_parallel_classification_matches_sequential(self, astronomy):
        indices = list(range(0, 100, 5))
        queries = [astronomy[i] for i in indices]
        sequential = Database(astronomy, access="scan")
        expected = sequential.multiple_similarity_query(queries, knn_query(10))
        cluster = ParallelDatabase(astronomy, n_servers=4, access="scan")
        run = cluster.multiple_similarity_query(
            queries, knn_query(10), db_indices=indices
        )
        for exp, got in zip(expected, run.answers):
            assert sorted(a.distance for a in got) == pytest.approx(
                sorted(a.distance for a in exp)
            )

    def test_parallel_elapsed_below_sequential(self, astronomy):
        indices = list(range(80))
        queries = [astronomy[i] for i in indices]
        sequential = Database(astronomy, access="scan")
        with sequential.measure() as seq:
            sequential.multiple_similarity_query(queries, knn_query(5))
        cluster = ParallelDatabase(astronomy, n_servers=8, access="scan")
        run = cluster.multiple_similarity_query(
            queries, knn_query(5), db_indices=indices
        )
        assert run.elapsed_seconds < seq.total_seconds


class TestCostAccountingConsistency:
    def test_io_seconds_match_counters(self, astronomy):
        database = Database(astronomy, access="scan", buffer_fraction=0.0)
        with database.measure() as run:
            database.similarity_query(astronomy[0], knn_query(3))
        model = CostModel(astronomy.dimension)
        expected = (
            run.counters.sequential_page_reads * model.sequential_block_seconds
            + run.counters.random_page_reads * model.random_block_seconds
        )
        assert run.io_seconds == pytest.approx(expected)

    def test_cpu_seconds_match_counters(self, astronomy):
        database = Database(astronomy, access="scan")
        queries = [astronomy[i] for i in range(10)]
        with database.measure() as run:
            database.multiple_similarity_query(queries, knn_query(5))
        model = CostModel(astronomy.dimension)
        counters = run.counters
        expected = (
            counters.total_distance_calculations * model.distance_seconds
            + counters.avoidance_tries * model.comparison_seconds
            + counters.mindist_evaluations * model.mindist_seconds
        )
        assert run.cpu_seconds == pytest.approx(expected)

    def test_distance_conservation_on_scan(self, astronomy):
        # Every (object, query) pair is either computed or avoided.
        database = Database(astronomy, access="scan")
        m = 15
        queries = [astronomy[i] for i in range(m)]
        with database.measure() as run:
            database.multiple_similarity_query(queries, knn_query(5))
        counters = run.counters
        assert (
            counters.distance_calculations + counters.avoided_calculations
            == m * len(astronomy)
        )
