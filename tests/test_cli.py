"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "ICDE 2000" in out
        assert "xtree" in out

    def test_info_engines_derived_from_registry(self, capsys):
        from repro.core.engine import engine_names

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert f"engines: {', '.join(engine_names())}" in out

    def test_demo_small(self, capsys):
        assert main(["demo", "--objects", "1500", "--queries", "8"]) == 0
        out = capsys.readouterr().out
        assert "multiple query" in out
        assert "modelled seconds" in out

    def test_demo_scan(self, capsys):
        assert main(
            ["demo", "--objects", "1000", "--queries", "5", "--access", "scan"]
        ) == 0
        assert "database" in capsys.readouterr().out

    def test_calibrate(self, capsys):
        assert main(["calibrate", "-d", "8"]) == 0
        out = capsys.readouterr().out
        assert "distance calculation" in out
        assert "ratio" in out

    def test_demo_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        assert main(
            [
                "demo",
                "--objects", "1200",
                "--queries", "6",
                "--trace", str(trace),
                "--metrics-out", str(metrics),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "trace entries" in out
        assert "metrics snapshot" in out
        # Trace is valid JSONL with the documented event names.
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        assert records
        names = {r["name"] for r in records}
        assert "query.admit" in names
        assert "page.process" in names
        # Metrics snapshot carries the Sec. 5.1/5.2 headline metrics.
        snapshot = json.load(open(metrics))
        assert "derived.sharing_factor" in snapshot["collected"]
        assert "derived.avoidance_hit_rate" in snapshot["collected"]
        assert any(
            name.startswith("phase.") for name in snapshot["histograms"]
        )

    def test_report_renders_summary(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        main(
            [
                "demo",
                "--objects", "1000",
                "--queries", "5",
                "--trace", str(trace),
                "--metrics-out", str(metrics),
            ]
        )
        capsys.readouterr()
        assert main(["report", str(metrics), "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "run summary" in out
        assert "sharing factor" in out
        assert "phase latencies" in out
        assert "slowest" in out

    def test_report_requires_input(self, capsys):
        assert main(["report"]) == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
