"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "ICDE 2000" in out
        assert "xtree" in out

    def test_demo_small(self, capsys):
        assert main(["demo", "--objects", "1500", "--queries", "8"]) == 0
        out = capsys.readouterr().out
        assert "multiple query" in out
        assert "modelled seconds" in out

    def test_demo_scan(self, capsys):
        assert main(
            ["demo", "--objects", "1000", "--queries", "5", "--access", "scan"]
        ) == 0
        assert "database" in capsys.readouterr().out

    def test_calibrate(self, capsys):
        assert main(["calibrate", "-d", "8"]) == 0
        out = capsys.readouterr().out
        assert "distance calculation" in out
        assert "ratio" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
