"""Direct tests of the page-processing engines."""

import math

import numpy as np
import pytest

from repro.core.answers import AnswerList
from repro.core.engine import (
    PendingQuery,
    get_engine,
    process_page_reference,
    process_page_vectorized,
)
from repro.core.types import knn_query, range_query
from repro.costmodel import Counters
from repro.data import VectorDataset
from repro.metric import MetricSpace
from repro.storage.page import Page


def make_pending(obj, qtype, slot):
    return PendingQuery(
        key=slot, obj=np.asarray(obj, dtype=float), qtype=qtype,
        answers=AnswerList(qtype), slot=slot,
    )


@pytest.fixture()
def setup():
    rng = np.random.default_rng(71)
    vectors = rng.random((40, 4))
    dataset = VectorDataset(vectors)
    page = Page(page_id=0, indices=np.arange(40))
    queries = rng.random((3, 4))
    matrix = np.zeros((3, 3))
    metric = MetricSpace("euclidean")
    for i in range(3):
        for j in range(3):
            matrix[i, j] = metric.uncounted(queries[i], queries[j])
    return dataset, page, queries, matrix


@pytest.mark.parametrize(
    "process", [process_page_reference, process_page_vectorized]
)
class TestEngines:
    def test_range_query_answers(self, setup, process):
        dataset, page, queries, matrix = setup
        space = MetricSpace("euclidean")
        pending = make_pending(queries[0], range_query(0.6), 0)
        process(page, [pending], dataset, space, matrix, space.counters)
        expected = {
            i
            for i in range(40)
            if np.sqrt(((dataset.vectors[i] - queries[0]) ** 2).sum()) <= 0.6
        }
        assert {a.index for a in pending.answers.materialize()} == expected
        assert page.page_id in pending.processed_pages

    def test_every_distance_counted_without_avoidance(self, setup, process):
        dataset, page, queries, matrix = setup
        space = MetricSpace("euclidean")
        batch = [
            make_pending(queries[i], knn_query(3), i) for i in range(3)
        ]
        process(
            page, batch, dataset, space, matrix, space.counters,
            use_avoidance=False,
        )
        assert space.counters.distance_calculations == 3 * 40
        assert space.counters.avoidance_tries == 0

    def test_avoidance_reduces_distances(self, setup, process):
        dataset, page, queries, matrix = setup
        space = MetricSpace("euclidean")
        batch = [
            make_pending(queries[i], range_query(0.2), i) for i in range(3)
        ]
        process(page, batch, dataset, space, matrix, space.counters)
        assert space.counters.distance_calculations < 3 * 40
        assert (
            space.counters.distance_calculations
            + space.counters.avoided_calculations
            == 3 * 40
        )

    def test_empty_page(self, setup, process):
        dataset, _, queries, matrix = setup
        space = MetricSpace("euclidean")
        page = Page(page_id=5, indices=np.empty(0, dtype=np.intp))
        pending = make_pending(queries[0], knn_query(2), 0)
        process(page, [pending], dataset, space, matrix, space.counters)
        assert len(pending.answers) == 0
        assert page.page_id in pending.processed_pages


class TestEngineEquivalenceDirect:
    def test_counters_and_answers_identical(self, setup):
        dataset, page, queries, matrix = setup
        results = {}
        for process in (process_page_reference, process_page_vectorized):
            space = MetricSpace("euclidean")
            batch = [
                make_pending(queries[i], range_query(0.45), i) for i in range(3)
            ]
            process(page, batch, dataset, space, matrix, space.counters)
            results[process.__name__] = (
                space.counters.as_dict(),
                [tuple(a.index for a in p.answers.materialize()) for p in batch],
            )
        ref = results["process_page_reference"]
        vec = results["process_page_vectorized"]
        assert ref == vec


class TestPendingQuery:
    def test_radius_uses_hint(self):
        pending = make_pending([0.0, 0.0, 0.0, 0.0], knn_query(2), 0)
        assert math.isinf(pending.radius)
        pending.radius_hint = 0.7
        assert pending.radius == 0.7
        pending.answers.offer(1, 0.2)
        pending.answers.offer(2, 0.3)
        assert pending.radius == pytest.approx(0.3)


class TestRegistry:
    def test_lookup(self):
        assert get_engine("reference") is process_page_reference
        assert get_engine("vectorized") is process_page_vectorized

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown engine"):
            get_engine("gpu")
