"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_vectors():
    """A small clustered vector dataset shared across tests."""
    generator = np.random.default_rng(7)
    centers = generator.random((5, 6))
    assign = generator.integers(0, 5, 800)
    points = centers[assign] + generator.standard_normal((800, 6)) * 0.05
    return np.clip(points, 0.0, 1.0)


@pytest.fixture(scope="session")
def small_db_scan(small_vectors):
    return Database(small_vectors, access="scan")


@pytest.fixture(scope="session")
def small_db_xtree(small_vectors):
    return Database(small_vectors, access="xtree")
