"""Property-based tests (hypothesis) for the core invariants."""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, knn_query, range_query
from repro.core.answers import AnswerList
from repro.core.avoidance import avoid_vectorized
from repro.core.types import bounded_knn_query
from repro.costmodel import Counters
from repro.index.rstar.mbr import MBR
from repro.index.rstar.str_load import kd_partition
from repro.metric.distances import EuclideanDistance, LevenshteinDistance
from repro.storage.buffer import LRUBufferPool

# Shared strategies -----------------------------------------------------

dims = st.integers(min_value=1, max_value=6)


def point_sets(min_points=3, max_points=60):
    return dims.flatmap(
        lambda d: st.lists(
            st.lists(
                st.floats(min_value=-10, max_value=10, allow_nan=False),
                min_size=d,
                max_size=d,
            ),
            min_size=min_points,
            max_size=max_points,
        )
    )


short_words = st.text(alphabet="abc", min_size=0, max_size=8)


class TestMetricProperties:
    @given(point_sets())
    @settings(max_examples=40, deadline=None)
    def test_euclidean_triangle_inequality(self, points):
        pts = np.asarray(points, dtype=float)
        metric = EuclideanDistance()
        a, b, c = pts[0], pts[len(pts) // 2], pts[-1]
        assert metric.one(a, c) <= metric.one(a, b) + metric.one(b, c) + 1e-9

    @given(short_words, short_words, short_words)
    @settings(max_examples=150, deadline=None)
    def test_levenshtein_is_a_metric(self, a, b, c):
        lev = LevenshteinDistance()
        assert lev.one(a, b) == lev.one(b, a)
        assert (lev.one(a, b) == 0) == (a == b)
        assert lev.one(a, c) <= lev.one(a, b) + lev.one(b, c)

    @given(point_sets(min_points=4))
    @settings(max_examples=40, deadline=None)
    def test_mbr_mindist_is_lower_bound(self, points):
        pts = np.asarray(points, dtype=float)
        box_points, queries = pts[: len(pts) // 2], pts[len(pts) // 2 :]
        if box_points.shape[0] == 0 or queries.shape[0] == 0:
            return
        box = MBR.from_points(box_points)
        metric = EuclideanDistance()
        for q in queries:
            bound = metric.mbr_mindist(box.lo, box.hi, q)
            for p in box_points:
                assert bound <= metric.one(p, q) + 1e-9


class TestAnswerListProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.floats(min_value=0, max_value=100, allow_nan=False),
            ),
            min_size=0,
            max_size=80,
        ),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=100, deadline=None)
    def test_knn_list_equals_sorted_prefix(self, offers, k):
        answers = AnswerList(knn_query(k))
        seen: dict[int, float] = {}
        for index, distance in offers:
            answers.offer(index, distance)
            previous = seen.get(index)
            if previous is None or distance < previous:
                seen[index] = distance
        got = [a.distance for a in answers.materialize()]
        # Dedup-free oracle: the k smallest offered distances.
        expected = sorted(d for _, d in offers)[:k]
        assert got == expected

    @given(
        st.lists(
            st.floats(min_value=0, max_value=10, allow_nan=False),
            min_size=0,
            max_size=50,
        ),
        st.floats(min_value=0, max_value=10, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_range_list_keeps_exactly_in_range(self, distances, eps):
        answers = AnswerList(range_query(eps))
        for i, d in enumerate(distances):
            answers.offer(i, d)
        got = {a.index for a in answers.materialize()}
        expected = {i for i, d in enumerate(distances) if d <= eps}
        assert got == expected

    @given(
        st.lists(
            st.floats(min_value=0, max_value=10, allow_nan=False),
            min_size=1,
            max_size=50,
        ),
        st.integers(min_value=1, max_value=5),
        st.floats(min_value=0, max_value=10, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_radius_is_monotone_nonincreasing(self, distances, k, eps):
        answers = AnswerList(bounded_knn_query(k, eps))
        last_radius = answers.radius
        for i, d in enumerate(distances):
            answers.offer(i, d)
            assert answers.radius <= last_radius
            last_radius = answers.radius


class TestAvoidanceProperties:
    @given(point_sets(min_points=6, max_points=40), st.floats(0.01, 5))
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.data_too_large],
    )
    def test_avoidance_never_discards_in_range_objects(self, points, radius):
        pts = np.asarray(points, dtype=float)
        queries, objects = pts[:3], pts[3:]
        metric = EuclideanDistance()
        known = np.array([metric.many(objects, q) for q in queries[:-1]])
        target = queries[-1]
        dqq = np.array([metric.one(target, q) for q in queries[:-1]])
        avoided = avoid_vectorized(known, dqq, radius, Counters())
        true = metric.many(objects, target)
        assert np.all(true[avoided] > radius)


class TestQueryEnginePropertyBased:
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=1, max_value=8),
        st.sampled_from(["scan", "xtree"]),
    )
    @settings(max_examples=15, deadline=None)
    def test_multi_query_matches_brute_force(self, seed, k, access):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(30, 200))
        d = int(rng.integers(2, 8))
        vectors = rng.random((n, d))
        database = Database(vectors, access=access, block_size=512)
        m = int(rng.integers(1, 8))
        indices = rng.integers(0, n, size=m)
        queries = [vectors[i] for i in indices]
        results = database.multiple_similarity_query(queries, knn_query(k))
        for query, answers in zip(queries, results):
            dists = np.sqrt(((vectors - query) ** 2).sum(axis=1))
            expected = np.sort(dists)[: min(k, n)]
            got = np.sort([a.distance for a in answers])
            assert np.allclose(got, expected, atol=1e-9)

    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_range_query_matches_brute_force(self, seed, eps):
        rng = np.random.default_rng(seed)
        vectors = rng.random((int(rng.integers(20, 150)), 4))
        database = Database(vectors, access="xtree", block_size=512)
        query = vectors[0]
        answers = database.similarity_query(query, range_query(eps))
        dists = np.sqrt(((vectors - query) ** 2).sum(axis=1))
        expected = set(np.flatnonzero(dists <= eps).tolist())
        assert {a.index for a in answers} == expected


class TestStorageProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=200),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_lru_matches_model(self, accesses, capacity):
        pool = LRUBufferPool(capacity)
        model: list[int] = []  # most recent last
        for page in accesses:
            hit = pool.access(page)
            assert hit == (page in model)
            if page in model:
                model.remove(page)
            model.append(page)
            del model[:-capacity]
        for page in model:
            assert page in pool

    @given(point_sets(min_points=1, max_points=120), st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_kd_partition_is_a_partition(self, points, capacity):
        pts = np.asarray(points, dtype=float)
        tiles = kd_partition(pts, capacity)
        seen = sorted(int(i) for tile in tiles for i in tile)
        assert seen == list(range(len(pts)))
        assert all(1 <= len(tile) <= capacity for tile in tiles)
