"""Tests for the query-service layer: sessions, streaming, run_in_blocks.

The load-bearing guarantees:

* the session API is the pre-refactor batch path *exactly* -- answers
  and every cost counter byte-identical to driving a bare
  ``MultiQueryProcessor``, per access method;
* ``stream()`` emits the driver's answers incrementally, in final
  order, with early (pre-completion) confirmations on distance-ranked
  access methods -- and the concatenation of the events equals the
  batch answer list;
* the mining drivers sitting on sessions produce results and counters
  identical to the same loops expressed directly on the processor.
"""

import numpy as np
import pytest

from repro import Database, knn_query, range_query
from repro.core.multi_query import MultiQueryProcessor
from repro.mining.dbscan import dbscan
from repro.mining.explore import ExplorationCallbacks, explore_neighborhoods_multiple
from repro.mining.trend import detect_trends
from repro.obs import Observer
from repro.service import AnswerEvent, QueryCompleted, QuerySession, run_in_blocks

ACCESS_METHODS = ["scan", "xtree", "rstar", "mtree", "vafile"]


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(23)
    centers = rng.random((6, 6))
    return np.clip(
        centers[rng.integers(0, 6, 800)] + rng.standard_normal((800, 6)) * 0.05,
        0,
        1,
    )


def make_db(vectors, access, **kwargs):
    return Database(vectors, access=access, block_size=2048, **kwargs)


def as_tuples(results):
    return [[(a.index, a.distance) for a in r] for r in results]


class TestSessionBatchIdentity:
    """ask/run must be the processor's process/query_all, byte for byte."""

    @pytest.mark.parametrize("access", ACCESS_METHODS)
    def test_ask_matches_process_with_counters(self, vectors, access):
        indices = [3, 41, 200, 555]
        queries = [vectors[i] for i in indices]
        qtypes = [knn_query(5)] * len(queries)

        db_a = make_db(vectors, access)
        session = db_a.session(seed_from_queries=True)
        got = session.ask(queries, qtypes, keys=indices, db_indices=indices)

        db_b = make_db(vectors, access)
        processor = MultiQueryProcessor(db_b, seed_from_queries=True)
        want = processor.process(queries, qtypes, keys=indices, db_indices=indices)

        assert as_tuples([got]) == as_tuples([want])
        assert db_a.counters.as_dict() == db_b.counters.as_dict()

    @pytest.mark.parametrize("access", ACCESS_METHODS)
    def test_run_matches_query_all_with_counters(self, vectors, access):
        indices = [7, 90, 311, 610, 702]
        queries = [vectors[i] for i in indices]

        db_a = make_db(vectors, access)
        got = db_a.session().run(queries, knn_query(4), db_indices=indices)

        db_b = make_db(vectors, access)
        want = MultiQueryProcessor(db_b).query_all(
            queries, knn_query(4), db_indices=indices
        )

        assert as_tuples(got) == as_tuples(want)
        assert db_a.counters.as_dict() == db_b.counters.as_dict()

    @pytest.mark.parametrize("access", ACCESS_METHODS)
    def test_run_in_blocks_matches_legacy_block_loop(self, vectors, access):
        indices = list(range(0, 36, 3))
        queries = [vectors[i] for i in indices]
        block = 4

        db_a = make_db(vectors, access)
        got = run_in_blocks(
            db_a, queries, knn_query(5), block, db_indices=indices
        )

        # The pre-refactor loop: one fresh processor per block.
        db_b = make_db(vectors, access)
        want = []
        for start in range(0, len(queries), block):
            processor = MultiQueryProcessor(db_b, seed_from_queries=True)
            want.extend(
                processor.query_all(
                    queries[start : start + block],
                    knn_query(5),
                    db_indices=indices[start : start + block],
                )
            )

        assert as_tuples(got) == as_tuples(want)
        assert db_a.counters.as_dict() == db_b.counters.as_dict()


class TestSessionBuffer:
    """The Def. 4 partial-answer buffer as a public API."""

    def test_submit_partial_answers_retire(self, vectors):
        db = make_db(vectors, "xtree")
        session = db.session()
        keys = [session.submit(vectors[i], knn_query(3), key=i) for i in (0, 5)]
        assert sorted(session.pending) == [0, 5]
        assert session.partial_answers(0) == []
        assert not session.is_complete(0)
        assert session.radius(0) == float("inf")

        answers = session.ask(
            [vectors[0], vectors[5]], knn_query(3), keys=keys
        )
        assert session.is_complete(0)
        assert session.partial_answers(0) == answers
        # The non-driver accumulated partial answers in the buffer.
        assert not session.is_complete(5)
        session.retire(0)
        assert session.pending == [5]
        session.close()
        assert session.pending == []

    def test_duplicate_submit_restores_existing_entry(self, vectors):
        db = make_db(vectors, "scan")
        session = db.session()
        session.submit(vectors[1], knn_query(3), key="q")
        before = db.counters.query_matrix_distance_calculations
        session.submit(vectors[1], knn_query(3), key="q")
        assert session.pending == ["q"]
        assert db.counters.query_matrix_distance_calculations == before

    def test_unknown_key_raises(self, vectors):
        session = make_db(vectors, "scan").session()
        with pytest.raises(KeyError):
            session.partial_answers("nope")
        with pytest.raises(KeyError):
            session.radius("nope")

    def test_bound_radius_tightens_only_downward(self, vectors):
        db = make_db(vectors, "xtree")
        session = db.session()
        session.submit(vectors[2], knn_query(3), key="q")
        session.bound_radius("q", 0.5)
        assert session.radius("q") == 0.5
        session.bound_radius("q", 0.9)
        assert session.radius("q") == 0.5
        # A sound bound never changes answers.
        answers = session.ask([vectors[2]], knn_query(3), keys=["q"])
        reference = make_db(vectors, "xtree").similarity_query(
            vectors[2], knn_query(3)
        )
        assert as_tuples([answers]) == as_tuples([reference])


class TestStreaming:
    """Incremental answer events: order, identity, early confirmation."""

    @pytest.mark.parametrize("access", ACCESS_METHODS)
    def test_stream_events_concatenate_to_batch_answers(self, vectors, access):
        indices = [10, 120, 400, 650]
        queries = [vectors[i] for i in indices]

        db_a = make_db(vectors, access)
        events = list(db_a.session().stream(queries, knn_query(6)))
        answer_events = [e for e in events if isinstance(e, AnswerEvent)]
        completions = [e for e in events if isinstance(e, QueryCompleted)]
        assert len(completions) == 1
        assert [e.rank for e in answer_events] == list(range(len(answer_events)))

        db_b = make_db(vectors, access)
        want = MultiQueryProcessor(db_b).process(queries, knn_query(6))

        streamed = [e.answer for e in answer_events]
        assert streamed == list(completions[0].answers) == want
        assert db_a.counters.as_dict() == db_b.counters.as_dict()

    def test_streamed_knn_yields_first_answer_before_completion(self):
        # Deeper traversal: enough pages that the driver's nearest
        # answers are provably final while pages remain.
        rng = np.random.default_rng(5)
        data = rng.random((5000, 8))
        db = Database(data, access="xtree")
        events = list(
            db.session().stream([data[i] for i in range(6)], knn_query(20))
        )
        completion = [e for e in events if isinstance(e, QueryCompleted)][0]
        early = [
            e for e in events if isinstance(e, AnswerEvent) and e.early
        ]
        assert early, "expected answers confirmed before the drive completed"
        for event in early:
            assert event.pages_processed < completion.pages_processed
        # Early events are a prefix of the final answer order.
        assert [e.answer for e in early] == list(
            completion.answers[: len(early)]
        )

    def test_sequential_access_streams_at_completion_only(self, vectors):
        db = make_db(vectors, "scan")
        events = list(db.session().stream([vectors[0]], knn_query(5)))
        assert all(
            not e.early for e in events if isinstance(e, AnswerEvent)
        )

    def test_stream_records_time_to_first_answer(self, vectors):
        observer = Observer(trace=True)
        db = make_db(vectors, "xtree", observer=observer)
        list(db.session().stream([vectors[0], vectors[9]], knn_query(5)))
        snapshot = observer.metrics.snapshot()
        hist = snapshot["histograms"]["service.time_to_first_answer.seconds"]
        assert hist["count"] == 1
        names = {r["name"] for r in observer.tracer.records()}
        assert "session.first_answer" in names
        assert "query.drive" in names

    def test_stream_of_completed_query_replays_buffered_answers(self, vectors):
        db = make_db(vectors, "xtree")
        session = db.session()
        first = session.ask([vectors[3], vectors[8]], knn_query(4), keys=[3, 8])
        before = db.counters.as_dict()
        events = list(session.stream([vectors[3]], knn_query(4), keys=[3]))
        assert [e.answer for e in events if isinstance(e, AnswerEvent)] == first
        assert db.counters.as_dict() == before  # no pages re-read


class TestDriversOnSessions:
    """Mining drivers must equal the same loops on a bare processor."""

    @pytest.mark.parametrize("access", ["scan", "xtree", "vafile"])
    def test_dbscan_matches_processor_loop(self, vectors, access):
        db_a = make_db(vectors, access)
        got = dbscan(db_a, eps=0.2, min_pts=4, batch_size=6)

        db_b = make_db(vectors, access)
        want = _legacy_dbscan(db_b, eps=0.2, min_pts=4, batch_size=6)

        assert np.array_equal(got.labels, want.labels)
        assert got.n_clusters == want.n_clusters
        assert got.queries_issued == want.queries_issued
        assert db_a.counters.as_dict() == db_b.counters.as_dict()

    @pytest.mark.parametrize("access", ["scan", "xtree", "mtree"])
    def test_explore_matches_processor_loop(self, vectors, access):
        db_a = make_db(vectors, access)
        visits_a: list[tuple[int, tuple]] = []
        callbacks = ExplorationCallbacks(
            proc_2=lambda i, answers: visits_a.append(
                (i, tuple((a.index, a.distance) for a in answers))
            )
        )
        stats_a = explore_neighborhoods_multiple(
            db_a, [0, 7], knn_query(4), callbacks, batch_size=4, max_iterations=12
        )

        db_b = make_db(vectors, access)
        visits_b: list[tuple[int, tuple]] = []
        stats_b = _legacy_explore(
            db_b, [0, 7], knn_query(4), visits_b, batch_size=4, max_iterations=12
        )

        assert stats_a.objects_visited == stats_b
        assert visits_a == visits_b
        assert db_a.counters.as_dict() == db_b.counters.as_dict()

    @pytest.mark.parametrize("access", ["scan", "xtree"])
    def test_trend_matches_processor_loop(self, vectors, access):
        attribute = np.linspace(0.0, 1.0, len(vectors))

        db_a = make_db(vectors, access)
        got = detect_trends(db_a, 17, attribute, n_paths=3, path_length=4, seed=2)

        db_b = make_db(vectors, access)
        want = _legacy_trend(db_b, 17, attribute, n_paths=3, path_length=4, seed=2)

        assert [p.objects for p in got.paths] == [p.objects for p in want.paths]
        assert [p.slope for p in got.paths] == [p.slope for p in want.paths]
        assert db_a.counters.as_dict() == db_b.counters.as_dict()

    def test_explore_accepts_injected_session(self, vectors):
        db = make_db(vectors, "xtree")
        session = db.session(seed_from_queries=True)
        stats = explore_neighborhoods_multiple(
            db, [0], knn_query(3), batch_size=4, max_iterations=5, session=session
        )
        assert stats.queries_issued == 5


class TestSessionObservability:
    @pytest.mark.parametrize("access", ACCESS_METHODS)
    def test_traced_session_identical_to_untraced(self, vectors, access):
        indices = [2, 55, 300, 480]
        queries = [vectors[i] for i in indices]

        plain = make_db(vectors, access)
        got_plain = plain.session().run(queries, knn_query(5))

        observer = Observer(trace=True)
        traced = make_db(vectors, access, observer=observer)
        got_traced = traced.session().run(queries, knn_query(5))

        assert as_tuples(got_plain) == as_tuples(got_traced)
        assert plain.counters.as_dict() == traced.counters.as_dict()
        names = {r["name"] for r in observer.tracer.records()}
        assert "query.drive" in names
        assert "query.admit" in names


# ----------------------------------------------------------------------
# Legacy replicas: the pre-refactor loops on a bare MultiQueryProcessor
# ----------------------------------------------------------------------


def _legacy_dbscan(database, eps, min_pts, batch_size):
    from repro.mining.dbscan import NOISE, _UNCLASSIFIED, DBSCANResult

    n = len(database.dataset)
    labels = np.full(n, _UNCLASSIFIED, dtype=int)
    qtype = range_query(eps)
    processor = MultiQueryProcessor(database, seed_from_queries=False)
    queries_issued = 0

    def neighborhood(seeds):
        nonlocal queries_issued
        queries_issued += 1
        window = seeds[:batch_size]
        answers = processor.process(
            [database.dataset[i] for i in window],
            [qtype] * len(window),
            keys=window,
        )
        processor.retire(seeds[0])
        return [a.index for a in answers]

    cluster_id = 0
    for start in range(n):
        if labels[start] != _UNCLASSIFIED:
            continue
        neighbors = neighborhood([start])
        if len(neighbors) < min_pts:
            labels[start] = NOISE
            continue
        labels[start] = cluster_id
        seeds = [i for i in neighbors if labels[i] in (_UNCLASSIFIED, NOISE)]
        for i in seeds:
            labels[i] = cluster_id
        while seeds:
            current_neighbors = neighborhood(seeds)
            seeds = seeds[1:]
            if len(current_neighbors) >= min_pts:
                for i in current_neighbors:
                    if labels[i] in (_UNCLASSIFIED, NOISE):
                        if labels[i] == _UNCLASSIFIED:
                            seeds.append(i)
                        labels[i] = cluster_id
        cluster_id += 1
    return DBSCANResult(labels, cluster_id, queries_issued)


def _legacy_explore(database, start_objects, sim_type, visits, batch_size, max_iterations):
    control = dict.fromkeys(int(i) for i in start_objects)
    ever_enqueued = set(control)
    visited = []
    processor = MultiQueryProcessor(database, seed_from_queries=True)
    while control and len(visited) < max_iterations:
        batch = list(control)[:batch_size]
        first = batch[0]
        answers = processor.process(
            [database.dataset[i] for i in batch],
            [sim_type] * len(batch),
            keys=batch,
            db_indices=batch,
        )
        visited.append(first)
        visits.append((first, tuple((a.index, a.distance) for a in answers)))
        fresh = [a.index for a in answers if a.index not in ever_enqueued]
        del control[first]
        processor.retire(first)
        for index in fresh:
            control[index] = None
            ever_enqueued.add(index)
    return visited


def _legacy_trend(database, start, attribute, n_paths, path_length, seed):
    from repro.mining.trend import TrendPath, TrendResult, _regress

    attribute = np.asarray(attribute, dtype=float)
    rng = np.random.default_rng(seed)
    processor = MultiQueryProcessor(database, seed_from_queries=False)
    result = TrendResult(start=int(start))
    start_obj = database.dataset[start]
    qtype = knn_query(8)
    for _ in range(n_paths):
        current = int(start)
        visited = {current}
        objects = [current]
        distances = [0.0]
        deltas = [0.0]
        for _ in range(path_length):
            answers = processor.process(
                [database.dataset[current]], [qtype], keys=[("trend", current)]
            )
            candidates = [a.index for a in answers if a.index not in visited]
            if not candidates:
                break
            nxt = int(candidates[int(rng.integers(0, len(candidates)))])
            visited.add(nxt)
            objects.append(nxt)
            distances.append(
                database.space.uncounted(start_obj, database.dataset[nxt])
            )
            deltas.append(float(attribute[nxt] - attribute[start]))
            current = nxt
        slope, r_squared = _regress(np.asarray(distances), np.asarray(deltas))
        result.paths.append(
            TrendPath(objects, distances, deltas, slope, r_squared)
        )
    return result
