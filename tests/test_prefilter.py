"""Tests for the sketch-based page pre-filter tier.

The load-bearing invariant: in its default exact mode the pre-filter
changes *nothing* observable -- answers AND every deterministic cost
counter stay byte-identical to the unfiltered run across all five
access methods and all three engines -- while provably empty pages are
replayed instead of evaluated.  The approximate fast mode is an
explicit ``recall_target`` opt-in whose recall is measured, never
assumed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, knn_query, range_query
from repro.core.planner import QueryPlanner
from repro.data import VectorDataset
from repro.prefilter import (
    KIND_PIVOT,
    KIND_QUANTIZED,
    PagePrefilter,
    PrefilterConfig,
    build_sketch,
    lower_bound_matrix,
    measure_recall,
    query_pivot_distances,
    select_pivots,
)
from repro.storage.sketch_store import load_sketch, save_sketch

# Small blocks spread the clustered data over enough pages for page
# pruning to have something to prune.
BLOCK_SIZE = 2048
ACCESS_METHODS = ["scan", "xtree", "rstar", "mtree", "vafile"]
ENGINES = ["reference", "vectorized", "batched"]


@pytest.fixture(scope="module")
def dataset():
    """Clustered vectors stored in cluster order (page-coherent)."""
    rng = np.random.default_rng(11)
    centers = rng.random((8, 6))
    assign = np.sort(rng.integers(0, 8, 720))
    points = np.clip(
        centers[assign] + rng.standard_normal((720, 6)) * 0.03, 0, 1
    )
    return VectorDataset(points, labels=assign)


@pytest.fixture(scope="module")
def query_indices(dataset):
    """Two cluster-local groups of four member queries each."""
    indices = []
    for cluster in (1, 5):
        members = np.flatnonzero(dataset.labels == cluster)
        indices.extend(int(i) for i in members[[3, 10, 20, 31]])
    return indices


@pytest.fixture(scope="module")
def queries(dataset, query_indices):
    return [dataset[i] for i in query_indices]


def _space(database):
    return database.space


# ----------------------------------------------------------------------
# Sketch soundness
# ----------------------------------------------------------------------


class TestSketch:
    @pytest.mark.parametrize("kind", [KIND_PIVOT, KIND_QUANTIZED])
    def test_lower_bounds_never_exceed_true_distances(self, dataset, kind):
        database = Database(dataset, access="scan", block_size=BLOCK_SIZE)
        pages = database.access_method.data_pages()
        sketch = build_sketch(
            dataset, _space(database), pages, n_pivots=4, kind=kind, bits=6
        )
        rng = np.random.default_rng(3)
        for query in rng.random((5, 6)):
            qd = query_pivot_distances(sketch, _space(database), query)
            bounds = lower_bound_matrix(sketch, qd)[0]
            for row, page in enumerate(pages):
                if page.indices.size == 0:
                    continue
                true_min = np.sqrt(
                    ((dataset.vectors[page.indices] - query) ** 2).sum(axis=1)
                ).min()
                assert bounds[row] <= true_min + 1e-9

    def test_quantized_intervals_contain_raw_intervals(self, dataset):
        database = Database(dataset, access="scan", block_size=BLOCK_SIZE)
        pages = database.access_method.data_pages()
        raw = build_sketch(
            dataset, _space(database), pages, n_pivots=4, kind=KIND_PIVOT
        )
        quantized = build_sketch(
            dataset,
            _space(database),
            pages,
            n_pivots=4,
            kind=KIND_QUANTIZED,
            bits=5,
        )
        assert np.all(quantized.page_lo <= raw.page_lo + 1e-12)
        assert np.all(quantized.page_hi >= raw.page_hi - 1e-12)

    def test_row_of_unknown_page_is_none(self, dataset):
        database = Database(dataset, access="scan", block_size=BLOCK_SIZE)
        sketch = build_sketch(
            dataset,
            _space(database),
            database.access_method.data_pages(),
            n_pivots=2,
        )
        assert sketch.row_of(10**9) is None

    def test_pivot_selection_is_seeded_and_spread(self, dataset):
        database = Database(dataset, access="scan", block_size=BLOCK_SIZE)
        first, dists_a = select_pivots(dataset, _space(database), 4, seed=7)
        second, dists_b = select_pivots(dataset, _space(database), 4, seed=7)
        assert np.array_equal(first, second)
        assert np.array_equal(dists_a, dists_b)
        assert len(set(first.tolist())) == 4

    def test_pivot_hints_are_taken_first(self, dataset):
        database = Database(dataset, access="scan", block_size=BLOCK_SIZE)
        chosen, _ = select_pivots(
            dataset, _space(database), 3, hints=[42, 42, 7, -1, 10**9]
        )
        assert chosen[0] == 42 and chosen[1] == 7


class TestProfiles:
    @pytest.mark.parametrize("access", ACCESS_METHODS)
    def test_every_access_method_offers_a_profile(self, dataset, access):
        database = Database(dataset, access=access, block_size=BLOCK_SIZE)
        profile = database.access_method.prefilter_profile()
        assert profile["kind"] in (KIND_PIVOT, KIND_QUANTIZED)
        assert set(profile) >= {"kind", "bits", "pivot_hints"}

    def test_vafile_reuses_its_grid_resolution(self, dataset):
        database = Database(dataset, access="vafile", block_size=BLOCK_SIZE)
        profile = database.access_method.prefilter_profile()
        assert profile["kind"] == KIND_QUANTIZED
        assert profile["bits"] == database.access_method.bits_per_dim

    def test_mtree_hints_are_its_routing_objects(self, dataset):
        database = Database(dataset, access="mtree", block_size=BLOCK_SIZE)
        profile = database.access_method.prefilter_profile()
        assert profile["kind"] == KIND_PIVOT
        hints = profile["pivot_hints"]
        assert hints and all(0 <= i < len(dataset) for i in hints)


# ----------------------------------------------------------------------
# Exact mode: byte-identical answers and counters, pages still pruned
# ----------------------------------------------------------------------


def _run_block(database, queries, query_indices, qtypes):
    with database.measure() as run:
        answers = database.run_in_blocks(
            queries, qtypes, block_size=len(queries), db_indices=query_indices
        )
    pairs = [[(a.index, a.distance) for a in per] for per in answers]
    return pairs, run.counters.as_dict()


class TestExactIdentity:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("access", ACCESS_METHODS)
    def test_answers_and_counters_identical(
        self, dataset, queries, query_indices, access, engine
    ):
        qtypes = [knn_query(8)] * 4 + [range_query(0.12)] * 4
        plain = Database(
            dataset, access=access, engine=engine, block_size=BLOCK_SIZE
        )
        filtered = Database(
            dataset,
            access=access,
            engine=engine,
            block_size=BLOCK_SIZE,
            prefilter=PrefilterConfig(n_pivots=6),
        )
        expected = _run_block(plain, queries, query_indices, qtypes)
        got = _run_block(filtered, queries, query_indices, qtypes)
        assert got[0] == expected[0]
        assert got[1] == expected[1]
        stats = filtered.prefilter.stats
        assert stats.pages_delivered > 0
        if access == "scan":
            # The scan has no pruning of its own; the cluster-local
            # block must actually drop pages or the identity assertion
            # above proves nothing.
            assert stats.pages_pruned > 0

    def test_single_queries_keep_identity(self, dataset, queries):
        plain = Database(dataset, access="scan", block_size=BLOCK_SIZE)
        filtered = Database(
            dataset,
            access="scan",
            block_size=BLOCK_SIZE,
            prefilter=PrefilterConfig(),
        )
        for query in queries[:3]:
            expected = plain.similarity_query(query, knn_query(5))
            got = filtered.similarity_query(query, knn_query(5))
            assert [(a.index, a.distance) for a in got] == [
                (a.index, a.distance) for a in expected
            ]
        assert plain.counters.as_dict() == filtered.counters.as_dict()

    def test_summary_reports_the_tier(self, dataset):
        database = Database(
            dataset,
            access="scan",
            block_size=BLOCK_SIZE,
            prefilter=PrefilterConfig(),
        )
        assert "pivot" in database.summary()["prefilter"]
        database.disable_prefilter()
        assert database.summary()["prefilter"] == "off"

    def test_enable_accepts_dict_config(self, dataset):
        database = Database(dataset, access="scan", block_size=BLOCK_SIZE)
        database.enable_prefilter({"n_pivots": 3, "kind": "quantized"})
        assert database.prefilter.sketch.kind == KIND_QUANTIZED
        assert database.prefilter.sketch.n_pivots == 3


# ----------------------------------------------------------------------
# Approximate mode: explicit opt-in, measured recall
# ----------------------------------------------------------------------


class TestApproximateMode:
    def test_recall_target_is_validated(self):
        with pytest.raises(ValueError):
            PrefilterConfig(recall_target=0.0)
        with pytest.raises(ValueError):
            PrefilterConfig(recall_target=1.5)
        assert not PrefilterConfig().approximate
        assert PrefilterConfig(recall_target=0.9).approximate

    def test_pages_are_skipped_before_read(
        self, dataset, queries, query_indices
    ):
        qtypes = [range_query(0.12)] * len(queries)
        plain = Database(dataset, access="scan", block_size=BLOCK_SIZE)
        approx = Database(
            dataset,
            access="scan",
            block_size=BLOCK_SIZE,
            prefilter=PrefilterConfig(recall_target=0.6),
        )
        exact = plain.run_in_blocks(
            queries, qtypes, block_size=len(queries), db_indices=query_indices
        )
        got = approx.run_in_blocks(
            queries, qtypes, block_size=len(queries), db_indices=query_indices
        )
        stats = approx.prefilter.stats
        assert stats.pages_skipped > 0
        # Skipped pages were never read: strictly fewer page reads.
        assert approx.counters.page_reads < plain.counters.page_reads
        recall = measure_recall(exact, got)
        assert 0.0 <= recall <= 1.0
        # The sketch bound is sound, so only answers between
        # target*radius and radius can be lost; on well-separated
        # clusters most survive.
        assert recall >= 0.5

    def test_skips_are_deterministic(self, dataset, queries, query_indices):
        qtypes = [range_query(0.12)] * len(queries)
        runs = []
        for _ in range(2):
            database = Database(
                dataset,
                access="scan",
                block_size=BLOCK_SIZE,
                prefilter=PrefilterConfig(recall_target=0.6),
            )
            answers = database.run_in_blocks(
                queries,
                qtypes,
                block_size=len(queries),
                db_indices=query_indices,
            )
            runs.append(
                (
                    [[(a.index, a.distance) for a in per] for per in answers],
                    database.counters.as_dict(),
                    database.prefilter.stats.snapshot(),
                )
            )
        assert runs[0] == runs[1]


class TestMeasureRecall:
    def test_macro_average_over_queries(self):
        class A:
            def __init__(self, index):
                self.index = index

        exact = [[A(1), A(2)], [A(3), A(4)], []]
        approx = [[A(1)], [A(3), A(4)], []]
        assert measure_recall(exact, approx) == pytest.approx((0.5 + 1 + 1) / 3)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            measure_recall([[]], [])


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------


class TestPersistence:
    @pytest.mark.parametrize("kind", [KIND_PIVOT, KIND_QUANTIZED])
    def test_round_trip(self, dataset, tmp_path, kind):
        database = Database(dataset, access="scan", block_size=BLOCK_SIZE)
        sketch = build_sketch(
            dataset,
            _space(database),
            database.access_method.data_pages(),
            n_pivots=4,
            kind=kind,
            bits=6,
        )
        path = save_sketch(sketch, tmp_path / "sketch.npz")
        loaded = load_sketch(path, dataset)
        assert loaded.kind == sketch.kind
        assert loaded.bits == sketch.bits
        assert np.array_equal(loaded.pivot_indices, sketch.pivot_indices)
        assert np.array_equal(loaded.page_ids, sketch.page_ids)
        assert np.array_equal(loaded.page_lo, sketch.page_lo)
        assert np.array_equal(loaded.page_hi, sketch.page_hi)
        for a, b in zip(loaded.pivot_objects, sketch.pivot_objects):
            assert np.array_equal(a, b)

    def test_loaded_sketch_filters_identically(self, dataset, tmp_path):
        database = Database(
            dataset,
            access="scan",
            block_size=BLOCK_SIZE,
            prefilter=PrefilterConfig(),
        )
        path = save_sketch(database.prefilter.sketch, tmp_path / "s.npz")
        restored = Database(dataset, access="scan", block_size=BLOCK_SIZE)
        restored.enable_prefilter(
            PagePrefilter(load_sketch(path, dataset), restored.space)
        )
        query = dataset[5]
        assert [
            (a.index, a.distance)
            for a in restored.similarity_query(query, knn_query(5))
        ] == [
            (a.index, a.distance)
            for a in database.similarity_query(query, knn_query(5))
        ]

    def test_wrong_dataset_fails_loudly(self, dataset, tmp_path):
        database = Database(dataset, access="scan", block_size=BLOCK_SIZE)
        sketch = build_sketch(
            dataset,
            _space(database),
            database.access_method.data_pages(),
            n_pivots=4,
        )
        path = save_sketch(sketch, tmp_path / "sketch.npz")
        tiny = VectorDataset(np.asarray(dataset.vectors[:3]))
        with pytest.raises(ValueError, match="different data"):
            load_sketch(path, tiny)

    def test_non_sketch_file_is_rejected(self, dataset, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, values=np.arange(3))
        with pytest.raises(ValueError, match="not a sketch archive"):
            load_sketch(path, dataset)


# ----------------------------------------------------------------------
# Planner and service integration
# ----------------------------------------------------------------------


class TestIntegration:
    def test_planner_forwards_and_prices_the_sketch_pass(self, dataset):
        planner = QueryPlanner(
            dataset,
            candidates=("scan",),
            probe_queries=4,
            prefilter=PrefilterConfig(),
        )
        database = planner.databases["scan"]
        assert database.prefilter is not None
        plan = planner.plan(16, knn_query(5))
        assert database.prefilter.stats.bound_evaluations > 0
        fit = plan.fits[0]
        assert np.isfinite(fit.shared_seconds)
        assert np.isfinite(fit.marginal_seconds)
        # The sketch pass has a modelled, positive price.
        before = planner._sketch_pass_state(database)
        database.prefilter.stats.bound_evaluations += 100
        assert planner._sketch_pass_seconds(database, before) > 0

    def test_session_exposes_prefilter_stats(self, dataset, queries):
        database = Database(
            dataset,
            access="scan",
            block_size=BLOCK_SIZE,
            prefilter=PrefilterConfig(),
        )
        session = database.session()
        session.run(queries[:4], knn_query(5))
        stats = session.prefilter_stats
        assert stats is not None and stats["drives"] > 0
        plain = Database(dataset, access="scan", block_size=BLOCK_SIZE)
        assert plain.session().prefilter_stats is None

    def test_prefilter_metrics_are_published(self, dataset, queries, query_indices):
        from repro.obs import Observer
        from repro.prefilter import (
            PAGES_PRUNED_METRIC,
            PRUNE_EFFECTIVENESS_METRIC,
        )

        observer = Observer(trace=True)
        database = Database(
            dataset,
            access="scan",
            block_size=BLOCK_SIZE,
            observer=observer,
            prefilter=PrefilterConfig(),
        )
        qtypes = [range_query(0.12)] * len(queries)
        database.run_in_blocks(
            queries, qtypes, block_size=len(queries), db_indices=query_indices
        )
        snapshot = observer.metrics.snapshot()
        assert snapshot["counters"][PAGES_PRUNED_METRIC] > 0
        assert PRUNE_EFFECTIVENESS_METRIC in snapshot["gauges"]
        names = {record["name"] for record in observer.tracer.records()}
        assert "prefilter.pass" in names


# ----------------------------------------------------------------------
# Faults: degraded completeness over the post-filter candidate set
# ----------------------------------------------------------------------


class TestDegradedWithPrefilter:
    def _crash_plan(self, at_op):
        from repro.faults import (
            KIND_SERVER_CRASH,
            FaultPlan,
            RetryPolicy,
            SiteSpec,
        )

        return FaultPlan(
            seed=5,
            sites=(
                SiteSpec(
                    pattern="server:0",
                    kinds=(KIND_SERVER_CRASH,),
                    at_ops=(at_op,),
                    max_faults=1,
                ),
            ),
            retry=RetryPolicy(max_retries=3),
        )

    def test_completeness_uses_post_filter_candidate_set(
        self, dataset, queries
    ):
        """Crash mid-stream while the approximate filter is skipping.

        Pages the filter dropped unread are not part of the candidate
        set the degraded session was working through, so the
        completeness bound must be computed net of them on both sides
        of the fraction -- otherwise a heavily-filtered session would
        report near-zero completeness it does not have.
        """
        from repro.service import DegradedAnswerEvent

        qtypes = [range_query(0.12)] * len(queries)

        def degraded_events(prefilter):
            database = Database(
                dataset,
                access="scan",
                block_size=BLOCK_SIZE,
                fault_plan=self._crash_plan(at_op=2),
                prefilter=prefilter,
            )
            session = database.session()
            events = [
                event
                for event in session.stream(queries, qtypes)
                if isinstance(event, DegradedAnswerEvent)
            ]
            assert events, "crash plan produced no degraded events"
            return database, events

        filtered_db, filtered = degraded_events(
            PrefilterConfig(recall_target=0.6)
        )
        assert filtered_db.prefilter.stats.pages_skipped > 0
        _, unfiltered = degraded_events(None)
        n_pages = len(filtered_db.access_method.data_pages())
        for event in filtered:
            assert 0.0 <= event.completeness <= 1.0
            assert event.pages_processed <= event.total_pages
            assert event.total_pages <= n_pages
        # The crashed driver had skipped pages unread; its event's
        # denominator excludes them (post-filter candidate set).
        assert any(event.total_pages < n_pages for event in filtered)
        for event in unfiltered:
            assert event.total_pages == n_pages

    def test_exact_prefilter_keeps_fault_completeness(self, dataset, queries):
        """Exact mode: replayed pages count as processed, so degraded
        completeness matches the unfiltered run's bound exactly."""
        from repro.service import DegradedAnswerEvent

        qtypes = [range_query(0.12)] * len(queries)
        bounds = []
        for prefilter in (None, PrefilterConfig()):
            database = Database(
                dataset,
                access="scan",
                block_size=BLOCK_SIZE,
                fault_plan=self._crash_plan(at_op=2),
                prefilter=prefilter,
            )
            events = [
                event
                for event in database.session().stream(queries, qtypes)
                if isinstance(event, DegradedAnswerEvent)
            ]
            assert events
            bounds.append(
                [
                    (e.pages_processed, e.total_pages, e.completeness)
                    for e in events
                ]
            )
        assert bounds[0] == bounds[1]
