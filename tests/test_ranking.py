"""Tests for the incremental neighbour ranking ([13])."""

import itertools

import numpy as np
import pytest

from repro import Database, knn_query
from repro.core.ranking import neighbor_ranking, neighbors_within_factor


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(81)
    centers = rng.random((5, 5))
    return np.clip(
        centers[rng.integers(0, 5, 500)] + rng.standard_normal((500, 5)) * 0.04,
        0,
        1,
    )


@pytest.mark.parametrize("access", ["scan", "xtree", "mtree", "vafile"])
class TestRankingOrder:
    def test_full_ranking_is_sorted_and_complete(self, vectors, access):
        db = Database(vectors, access=access, block_size=2048)
        ranked = list(neighbor_ranking(db, vectors[0]))
        assert len(ranked) == len(vectors)
        distances = [a.distance for a in ranked]
        assert distances == sorted(distances)
        true = np.sort(np.sqrt(((vectors - vectors[0]) ** 2).sum(axis=1)))
        assert np.allclose(distances, true)

    def test_prefix_matches_knn(self, vectors, access):
        db = Database(vectors, access=access, block_size=2048)
        q = vectors[123]
        prefix = list(itertools.islice(neighbor_ranking(db, q), 10))
        knn = db.similarity_query(q, knn_query(10))
        assert sorted(a.distance for a in prefix) == pytest.approx(
            sorted(a.distance for a in knn)
        )


class TestRankingLaziness:
    def test_short_prefix_reads_few_pages(self, vectors):
        db = Database(vectors, access="xtree", block_size=2048)
        db.cold()
        with db.measure() as run:
            list(itertools.islice(neighbor_ranking(db, vectors[0]), 3))
        n_pages = len(db.access_method.data_pages())
        touched = run.counters.page_reads + run.counters.buffer_hits
        assert touched < n_pages

    def test_generator_reads_nothing_until_consumed(self, vectors):
        db = Database(vectors, access="xtree", block_size=2048)
        db.cold()
        with db.measure() as run:
            neighbor_ranking(db, vectors[0])  # not consumed
        assert run.counters.page_reads == 0


class TestWithinFactor:
    def test_includes_all_within_factor(self, vectors):
        db = Database(vectors, access="xtree", block_size=2048)
        q = np.full(vectors.shape[1], 0.5)
        results = neighbors_within_factor(db, q, factor=1.5)
        dists = np.sqrt(((vectors - q) ** 2).sum(axis=1))
        cutoff = 1.5 * dists.min()
        expected = set(np.flatnonzero(dists <= cutoff).tolist())
        assert {a.index for a in results} == expected

    def test_max_results_bounds_output(self, vectors):
        db = Database(vectors, access="scan", block_size=2048)
        # A non-member query: the nearest distance is positive, so a huge
        # factor admits everything and only max_results limits the output.
        q = np.full(vectors.shape[1], 0.5)
        results = neighbors_within_factor(db, q, factor=1e6, max_results=7)
        assert len(results) == 7

    def test_member_query_zero_distance_cutoff(self, vectors):
        # For a database member the nearest distance is 0, so only
        # distance-0 objects qualify regardless of the factor.
        db = Database(vectors, access="scan", block_size=2048)
        results = neighbors_within_factor(db, vectors[0], factor=100.0)
        assert all(a.distance == 0.0 for a in results)

    def test_factor_validation(self, vectors):
        db = Database(vectors, access="scan", block_size=2048)
        with pytest.raises(ValueError):
            neighbors_within_factor(db, vectors[0], factor=0.5)
